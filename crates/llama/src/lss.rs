//! The log-structured store.

use crate::codec::Codec;
use crate::sync::{AtomicU64 as SyncAtomicU64, Mutex};
use dcs_bwtree::{PageId, PageImage, PageStore, StoreError};
use dcs_flashsim::{
    DeviceError, FlashAddress, FlashDevice, IoQueuePair, IoRequest, SegmentId, SubmitError,
};
use std::collections::HashMap;
// Stats stay on plain std atomics even in instrumented builds: monotonic
// counters admit no interleaving worth exploring (same convention as
// dcs-bwtree's stats). The `Ordering` type is shared — the check shims
// re-export std's.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Frame magic ("LLMA").
const FRAME_MAGIC: u32 = 0x4C4C_4D41;
/// Frame header: magic(4) lsn(8) pid(8) prev(8) len(4) crc(8).
const FRAME_HEADER: usize = 4 + 8 + 8 + 8 + 4 + 8;
/// `prev` encoding of "no previous part".
const NO_PREV: u64 = u64::MAX;

/// Shadow-heap tag for a part LSN. Tokens are logical, not pointers, so the
/// instrumented build tracks their retire lifecycle through the same shadow
/// heap the EBR hooks use, keyed by a synthetic "address" with bit 63 set —
/// user-space heap addresses never have it, so token slots can't collide
/// with real allocations tracked by `dcs-ebr`.
#[cfg(feature = "check")]
fn shadow_token(lsn: u64) -> *const u8 {
    (((1u64 << 63) | lsn) as usize) as *const u8
}

/// Shadow event: a part was created (written into the buffer or recovered).
fn token_alloc(lsn: u64) {
    #[cfg(feature = "check")]
    dcs_check::shadow::on_alloc(shadow_token(lsn));
    #[cfg(not(feature = "check"))]
    let _ = lsn;
}

/// Shadow event: a part was superseded (retired; readable until GC).
fn token_retire(lsn: u64) {
    #[cfg(feature = "check")]
    dcs_check::shadow::on_retire(shadow_token(lsn));
    #[cfg(not(feature = "check"))]
    let _ = lsn;
}

/// Shadow event: GC dropped a dead part from the offset table.
fn token_free(lsn: u64) {
    #[cfg(feature = "check")]
    dcs_check::shadow::on_free(shadow_token(lsn));
    #[cfg(not(feature = "check"))]
    let _ = lsn;
}

/// Shadow event: a part's payload was read through its token.
fn token_access(lsn: u64) {
    #[cfg(feature = "check")]
    dcs_check::shadow::on_access(shadow_token(lsn));
    #[cfg(not(feature = "check"))]
    let _ = lsn;
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Configuration of the log-structured store.
#[derive(Debug, Clone)]
pub struct LssConfig {
    /// Flush the write buffer once it holds this many bytes. Must not
    /// exceed the device segment size.
    pub flush_buffer_bytes: usize,
    /// GC-eligibility: collect a segment when its live fraction falls below
    /// this threshold.
    pub gc_live_fraction: f64,
    /// Payload compression (§7.2: trade CPU for storage on cold data).
    pub codec: Codec,
    /// Maximum incremental parts per page chain: a delta write that would
    /// exceed this is *rolled up* — the store folds the chain and writes a
    /// full image instead, superseding the history so GC can reclaim it.
    pub max_flush_chain: u32,
}

impl Default for LssConfig {
    fn default() -> Self {
        LssConfig {
            flush_buffer_bytes: 32 << 10,
            gc_live_fraction: 0.5,
            codec: Codec::None,
            max_flush_chain: 4,
        }
    }
}

/// Where a page part's bytes currently are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    /// Still in the write buffer, at this offset.
    Buffer(usize),
    /// On flash; `addr` points at the frame header.
    Flash(FlashAddress),
}

#[derive(Debug, Clone)]
struct PartMeta {
    pid: PageId,
    prev: Option<u64>,
    /// Serialized image length (payload only).
    len: u32,
    loc: Location,
    /// LSN of the write that superseded this part (a newer full image or a
    /// tombstone), if any. Superseded parts remain readable until their
    /// segment is collected — and remain *GC-live* until the superseder is
    /// durable, or a crash could erase the only durable copy.
    superseded_by: Option<u64>,
    /// Number of parts in this part's chain (1 for a base image).
    chain_len: u32,
}

impl PartMeta {
    /// Whether GC must preserve this part: not superseded, or superseded
    /// only by writes that have not reached a durability barrier yet.
    fn gc_live(&self, synced_watermark: u64) -> bool {
        match self.superseded_by {
            None => true,
            Some(s) => s >= synced_watermark,
        }
    }
}

#[derive(Default)]
struct SegmentInfo {
    live_bytes: usize,
    total_bytes: usize,
}

struct Inner {
    buffer: Vec<u8>,
    /// LSNs whose bytes are in the buffer, in buffer order.
    buffered: Vec<u64>,
    parts: HashMap<u64, PartMeta>,
    /// Live (not superseded) part LSNs per page, oldest first.
    per_pid: HashMap<PageId, Vec<u64>>,
    segments: HashMap<SegmentId, SegmentInfo>,
    /// All LSNs below this are durable (set by `sync`).
    synced_watermark: u64,
}

/// Counters for the store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LssStats {
    /// Page parts accepted.
    pub parts_written: u64,
    /// Payload bytes accepted (what a fixed-block store would round up).
    pub payload_bytes: u64,
    /// Payload bytes actually stored after compression.
    pub stored_bytes: u64,
    /// Flush buffers written to the device.
    pub buffers_flushed: u64,
    /// Parts served from the write buffer (no device read).
    pub buffer_hits: u64,
    /// Parts read from the device.
    pub flash_reads: u64,
    /// Segments garbage-collected.
    pub segments_collected: u64,
    /// Live parts relocated by GC.
    pub parts_relocated: u64,
    /// Incremental chains folded into full images by the chain-length cap.
    pub rollups: u64,
}

/// Summary returned by a successful [`LogStructuredStore::audit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LssAuditReport {
    /// Parts tracked in the offset table (live + superseded-but-retained).
    pub parts: usize,
    /// Parts not superseded by a newer write.
    pub live_parts: usize,
    /// Pages with at least one live part.
    pub pages: usize,
    /// Parts still in the write buffer (not yet flushed).
    pub buffered_parts: usize,
}

#[derive(Default)]
struct StatsInner {
    parts_written: AtomicU64,
    payload_bytes: AtomicU64,
    stored_bytes: AtomicU64,
    buffers_flushed: AtomicU64,
    buffer_hits: AtomicU64,
    flash_reads: AtomicU64,
    segments_collected: AtomicU64,
    parts_relocated: AtomicU64,
    rollups: AtomicU64,
}

/// Outcome of [`LogStructuredStore::fetch_submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum FetchSubmit {
    /// Every part of the chain was buffer-resident: the folded image is
    /// available immediately, no device read was needed.
    Ready(PageImage),
    /// At least one part needs a device read; it has been submitted on the
    /// store's I/O queue pair. The id keys the eventual
    /// [`LogStructuredStore::poll_fetches`] completion.
    Pending(u64),
}

/// One finished asynchronous fetch, reaped by
/// [`LogStructuredStore::poll_fetches`].
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedFetch {
    /// The id [`FetchSubmit::Pending`] carried.
    pub fetch_id: u64,
    /// The folded page image, or the error the blocking
    /// [`PageStore::fetch`] would have returned.
    pub result: Result<PageImage, StoreError>,
}

/// An asynchronous fetch between submit and completion: the chain walk
/// (newest → oldest part) paused at a flash-resident part whose read is in
/// flight on the queue pair.
struct AsyncFetch {
    /// The originally requested token (for error reporting).
    token: u64,
    /// Parts decoded so far, newest first.
    imgs: Vec<PageImage>,
    /// The part whose device read is in flight.
    awaiting: u64,
    /// Its `prev` link, captured at submit (the walk continues there once
    /// the read lands, unless the part turns out to be a base image).
    awaiting_prev: Option<u64>,
}

#[derive(Default)]
struct AsyncFetches {
    next_id: u64,
    pending: HashMap<u64, AsyncFetch>,
}

/// A step of the asynchronous chain walk.
enum WalkStep {
    /// Chain fully decoded; the folded image.
    Done(PageImage),
    /// A device read was submitted; the walk resumes on its completion.
    Submitted {
        awaiting: u64,
        awaiting_prev: Option<u64>,
    },
}

/// Log-structured page store over a flash device. See the crate docs.
pub struct LogStructuredStore {
    device: Arc<FlashDevice>,
    config: LssConfig,
    inner: Mutex<Inner>,
    next_lsn: SyncAtomicU64,
    stats: StatsInner,
    /// SPDK-style queue pair for asynchronous part fetches.
    qp: IoQueuePair,
    fetches: Mutex<AsyncFetches>,
}

impl LogStructuredStore {
    /// Create an empty store over `device`.
    pub fn new(device: Arc<FlashDevice>, config: LssConfig) -> Self {
        assert!(
            config.flush_buffer_bytes <= device.config().segment_bytes,
            "flush buffer must fit in one device segment"
        );
        LogStructuredStore {
            qp: IoQueuePair::new(device.clone()),
            device,
            config,
            inner: Mutex::new(Inner {
                buffer: Vec::new(),
                buffered: Vec::new(),
                parts: HashMap::new(),
                per_pid: HashMap::new(),
                segments: HashMap::new(),
                synced_watermark: 0,
            }),
            next_lsn: SyncAtomicU64::new(0),
            stats: StatsInner::default(),
            fetches: Mutex::new(AsyncFetches::default()),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &Arc<FlashDevice> {
        &self.device
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LssStats {
        LssStats {
            // ORDERING: statistics counters; each is individually exact
            // and the snapshot tolerates a torn cross-field view.
            parts_written: self.stats.parts_written.load(Ordering::Relaxed),
            payload_bytes: self.stats.payload_bytes.load(Ordering::Relaxed),
            stored_bytes: self.stats.stored_bytes.load(Ordering::Relaxed),
            buffers_flushed: self.stats.buffers_flushed.load(Ordering::Relaxed),
            buffer_hits: self.stats.buffer_hits.load(Ordering::Relaxed),
            flash_reads: self.stats.flash_reads.load(Ordering::Relaxed),
            segments_collected: self.stats.segments_collected.load(Ordering::Relaxed),
            parts_relocated: self.stats.parts_relocated.load(Ordering::Relaxed),
            rollups: self.stats.rollups.load(Ordering::Relaxed),
        }
    }

    /// Encode one frame into `out`, returning the frame's start offset.
    fn encode_frame(
        out: &mut Vec<u8>,
        lsn: u64,
        pid: PageId,
        prev: Option<u64>,
        payload: &[u8],
    ) -> usize {
        let offset = out.len();
        out.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        out.extend_from_slice(&lsn.to_le_bytes());
        out.extend_from_slice(&pid.to_le_bytes());
        out.extend_from_slice(&prev.unwrap_or(NO_PREV).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&fnv64(payload).to_le_bytes());
        out.extend_from_slice(payload);
        offset
    }

    /// Append one framed part into the buffer (caller holds the lock).
    fn buffer_part(
        inner: &mut Inner,
        lsn: u64,
        pid: PageId,
        prev: Option<u64>,
        payload: &[u8],
        chain_len: u32,
    ) {
        let offset = Self::encode_frame(&mut inner.buffer, lsn, pid, prev, payload);
        token_alloc(lsn);
        inner.buffered.push(lsn);
        inner.parts.insert(
            lsn,
            PartMeta {
                pid,
                prev,
                len: payload.len() as u32,
                loc: Location::Buffer(offset),
                superseded_by: None,
                chain_len,
            },
        );
    }

    /// Write the buffer to the device in one append (caller holds the lock).
    fn flush_buffer_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        if inner.buffer.is_empty() {
            return Ok(());
        }
        let _span = dcs_telemetry::span("llama.flush_buffer", dcs_telemetry::CostClass::SsWrite);
        let blob = std::mem::take(&mut inner.buffer);
        let addr = self.device.append(&blob).map_err(device_err)?;
        // ORDERING: statistics counter only; store state is guarded
        // by the inner mutex held here.
        self.stats.buffers_flushed.fetch_add(1, Ordering::Relaxed);
        let seg = inner.segments.entry(addr.segment).or_default();
        seg.total_bytes += blob.len();
        // Re-point every buffered part at its flash location.
        for lsn in std::mem::take(&mut inner.buffered) {
            let meta = inner.parts.get_mut(&lsn).expect("buffered part exists");
            let Location::Buffer(off) = meta.loc else {
                unreachable!("buffered part has buffer location")
            };
            meta.loc = Location::Flash(FlashAddress {
                segment: addr.segment,
                offset: addr.offset + off as u32,
            });
            let framed = FRAME_HEADER + meta.len as usize;
            let superseded = meta.superseded_by.is_some();
            let seg = inner.segments.entry(addr.segment).or_default();
            if !superseded {
                seg.live_bytes += framed;
            }
        }
        Ok(())
    }

    /// Point relocated parts at their new, already-durable home and account
    /// the new segment (caller holds the lock).
    fn install_relocated(
        inner: &mut Inner,
        addr: FlashAddress,
        blob: &[u8],
        placed: &[(u64, usize, u32)],
    ) {
        let seg = inner.segments.entry(addr.segment).or_default();
        seg.total_bytes += blob.len();
        seg.live_bytes += blob.len();
        for (lsn, off, _len) in placed {
            if let Some(meta) = inner.parts.get_mut(lsn) {
                meta.loc = Location::Flash(FlashAddress {
                    segment: addr.segment,
                    offset: addr.offset + *off as u32,
                });
            }
        }
    }

    /// Force any buffered parts onto the device.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        self.flush_buffer_locked(&mut inner)
    }

    /// Flush and issue a durability barrier on the device. After `sync`
    /// returns, every previously written part survives a crash.
    pub fn sync(&self) -> Result<(), StoreError> {
        self.flush()?;
        self.device.sync();
        let mut inner = self.inner.lock();
        inner.synced_watermark = self.next_lsn.load(Ordering::SeqCst);
        Ok(())
    }

    /// Mark all parts of `pid` older than `new_base_lsn` dead (a full image
    /// supersedes the page's entire history). Caller holds the lock.
    fn supersede_pid(inner: &mut Inner, pid: PageId, new_base_lsn: u64) {
        if let Some(lsns) = inner.per_pid.get_mut(&pid) {
            for lsn in lsns.drain(..) {
                if lsn == new_base_lsn {
                    continue;
                }
                if let Some(meta) = inner.parts.get_mut(&lsn) {
                    if meta.superseded_by.is_none() {
                        meta.superseded_by = Some(new_base_lsn);
                        token_retire(lsn);
                        if let Location::Flash(addr) = meta.loc {
                            if let Some(seg) = inner.segments.get_mut(&addr.segment) {
                                seg.live_bytes = seg
                                    .live_bytes
                                    .saturating_sub(FRAME_HEADER + meta.len as usize);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Read one part's payload (device or buffer).
    fn read_part(&self, inner: &Inner, lsn: u64) -> Result<(PartMeta, Vec<u8>), StoreError> {
        let meta = inner
            .parts
            .get(&lsn)
            .ok_or(StoreError::UnknownToken(lsn))?
            .clone();
        token_access(lsn);
        let payload = match meta.loc {
            Location::Buffer(off) => {
                // ORDERING: statistics counter only.
                self.stats.buffer_hits.fetch_add(1, Ordering::Relaxed);
                let start = off + FRAME_HEADER;
                inner.buffer[start..start + meta.len as usize].to_vec()
            }
            Location::Flash(addr) => {
                // ORDERING: statistics counter only.
                self.stats.flash_reads.fetch_add(1, Ordering::Relaxed);
                let payload_addr = FlashAddress {
                    segment: addr.segment,
                    offset: addr.offset + FRAME_HEADER as u32,
                };
                self.device
                    .read(payload_addr, meta.len as usize)
                    .map_err(device_err)?
            }
        };
        Ok((meta, payload))
    }

    /// Garbage-collect at most one segment: the flushed segment with the
    /// lowest live fraction below the configured threshold. Live parts are
    /// relocated to the log tail; the segment is trimmed. Returns the
    /// collected segment, if any.
    pub fn gc_once(&self) -> Result<Option<SegmentId>, StoreError> {
        let mut inner = self.inner.lock();
        // Segments holding any not-yet-durable part are off limits:
        // relocating such a part through the durable GC path would make an
        // unsynced write survive a crash, tearing checkpoint atomicity.
        let watermark = inner.synced_watermark;
        let mut has_unsynced: std::collections::HashSet<SegmentId> =
            std::collections::HashSet::new();
        for (&lsn, m) in inner.parts.iter() {
            if lsn >= watermark {
                if let Location::Flash(a) = m.loc {
                    has_unsynced.insert(a.segment);
                }
            }
        }
        let victim = inner
            .segments
            .iter()
            .filter(|(seg, info)| info.total_bytes > 0 && !has_unsynced.contains(seg))
            .map(|(&seg, info)| (seg, info.live_bytes as f64 / info.total_bytes as f64))
            .filter(|(_, frac)| *frac < self.config.gc_live_fraction)
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("fractions compare"));
        let Some((victim, _)) = victim else {
            return Ok(None);
        };
        let _span = dcs_telemetry::span("llama.gc_segment", dcs_telemetry::CostClass::Maintenance);
        dcs_telemetry::ledger().maintenance_op();
        // Relocate live parts under the same LSNs (tokens are logical, so
        // holders are unaffected). The relocated copies go to the device
        // through an immediately durable append of their own — a global
        // sync here would break checkpoint atomicity by making unrelated
        // buffered parts durable mid-checkpoint.
        let watermark = inner.synced_watermark;
        let live_lsns: Vec<u64> = inner
            .parts
            .iter()
            .filter(|(_, m)| {
                m.gc_live(watermark) && matches!(m.loc, Location::Flash(a) if a.segment == victim)
            })
            .map(|(&lsn, _)| lsn)
            .collect();
        let mut blob = Vec::new();
        let mut placed: Vec<(u64, usize, u32)> = Vec::new(); // (lsn, frame offset, len)
        for lsn in &live_lsns {
            let (meta, payload) = self.read_part(&inner, *lsn)?;
            if blob.len() + FRAME_HEADER + payload.len() > self.config.flush_buffer_bytes {
                let addr = self.device.append_durable(&blob).map_err(device_err)?;
                Self::install_relocated(&mut inner, addr, &blob, &placed);
                blob.clear();
                placed.clear();
            }
            let off = Self::encode_frame(&mut blob, *lsn, meta.pid, meta.prev, &payload);
            placed.push((*lsn, off, payload.len() as u32));
            // ORDERING: statistics counter only; relocation is guarded
            // by the inner mutex held here.
            self.stats.parts_relocated.fetch_add(1, Ordering::Relaxed);
        }
        if !blob.is_empty() {
            let addr = self.device.append_durable(&blob).map_err(device_err)?;
            Self::install_relocated(&mut inner, addr, &blob, &placed);
        }
        // Drop durably-dead parts that lived in the victim segment.
        let dead: Vec<u64> = inner
            .parts
            .iter()
            .filter(|(_, m)| {
                matches!(m.loc, Location::Flash(a) if a.segment == victim) && !m.gc_live(watermark)
            })
            .map(|(&lsn, _)| lsn)
            .collect();
        for lsn in dead {
            inner.parts.remove(&lsn);
            token_free(lsn);
        }
        inner.segments.remove(&victim);
        self.device.trim_segment(victim);
        // ORDERING: statistics counter only; GC state is guarded by
        // the inner mutex held here.
        self.stats
            .segments_collected
            .fetch_add(1, Ordering::Relaxed);
        Ok(Some(victim))
    }

    /// Run GC until no segment is below the threshold. Returns segments
    /// collected.
    pub fn gc_all(&self) -> Result<usize, StoreError> {
        let mut n = 0;
        while self.gc_once()?.is_some() {
            n += 1;
        }
        Ok(n)
    }

    /// Live (not superseded) bytes currently resident on flash — the
    /// occupancy the paper's flash-rent term integrates over.
    pub fn live_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner.segments.values().map(|s| s.live_bytes).sum()
    }

    /// Storage utilization: live bytes / total flash bytes in use.
    pub fn utilization(&self) -> f64 {
        let inner = self.inner.lock();
        let (live, total) = inner.segments.values().fold((0usize, 0usize), |(l, t), s| {
            (l + s.live_bytes, t + s.total_bytes)
        });
        if total == 0 {
            1.0
        } else {
            live as f64 / total as f64
        }
    }

    /// The newest durable state of every page, as recovery inputs: PID,
    /// token, and fence/sibling metadata read from the newest part (one
    /// part read per page; record contents stay on flash).
    pub fn newest_page_fences(&self) -> Result<Vec<dcs_bwtree::RecoveredPage>, StoreError> {
        let inner = self.inner.lock();
        let newest: Vec<(PageId, u64)> = inner
            .per_pid
            .iter()
            .filter_map(|(&pid, lsns)| lsns.last().map(|&l| (pid, l)))
            .collect();
        let mut out = Vec::with_capacity(newest.len());
        for (pid, token) in newest {
            let (_, payload) = self.read_part(&inner, token)?;
            let raw = self
                .config
                .codec
                .decode(&payload)
                .map_err(|e| StoreError::Io(format!("corrupt part {token}: {e}")))?;
            let img = PageImage::deserialize(&raw)
                .map_err(|e| StoreError::Io(format!("corrupt part {token}: {e}")))?;
            out.push(dcs_bwtree::RecoveredPage {
                pid,
                token,
                high_key: img.high_key,
                right: img.right,
            });
        }
        Ok(out)
    }

    /// The newest live part LSN for every page — the durable tree state.
    pub fn newest_parts(&self) -> HashMap<PageId, u64> {
        let inner = self.inner.lock();
        inner
            .per_pid
            .iter()
            .filter_map(|(&pid, lsns)| lsns.last().map(|&l| (pid, l)))
            .collect()
    }

    /// Structural audit of the offset tables: every part the store claims to
    /// hold must be backed by a coherent frame at its recorded location, and
    /// the page table / segment accounting must agree with the parts table.
    /// Returns a summary on success and the first violation otherwise.
    /// O(total live bytes) — a test/debug tool, not a production call.
    ///
    /// Checked invariants:
    /// * `synced_watermark ≤ next_lsn`, and every part's LSN is below
    ///   `next_lsn`;
    /// * frame coherence: at each part's recorded buffer offset or flash
    ///   address sits a frame whose magic, LSN, PID, prev pointer, length,
    ///   and payload CRC match the part's metadata (a stale offset table
    ///   here is how a page store silently serves the wrong page);
    /// * the `buffered` list and the set of buffer-located parts agree;
    /// * `per_pid` lists are strictly ascending, reference live
    ///   (non-superseded) parts of the right page, and each listed part's
    ///   `prev` chain resolves within the parts table with consistent
    ///   `chain_len` accounting;
    /// * segment accounting bounds: recounted live frame bytes ≤ recorded
    ///   `live_bytes` ≤ `total_bytes` for every segment (GC relocation keeps
    ///   superseded-but-GC-live parts, so recorded live bytes may exceed the
    ///   strict recount but must never undercount it).
    pub fn audit(&self) -> Result<LssAuditReport, String> {
        let inner = self.inner.lock();
        let next = self.next_lsn.load(Ordering::SeqCst);
        if inner.synced_watermark > next {
            return Err(format!(
                "synced watermark {} beyond next LSN {next}",
                inner.synced_watermark
            ));
        }
        let mut report = LssAuditReport {
            parts: inner.parts.len(),
            ..LssAuditReport::default()
        };
        let mut seg_live_recount: HashMap<SegmentId, usize> = HashMap::new();
        let mut buffer_located = 0usize;
        for (&lsn, meta) in &inner.parts {
            if lsn >= next {
                return Err(format!("part {lsn} at or beyond next LSN {next}"));
            }
            // Frame coherence at the recorded location.
            let (header, payload) = match meta.loc {
                Location::Buffer(off) => {
                    buffer_located += 1;
                    let end = off + FRAME_HEADER + meta.len as usize;
                    if end > inner.buffer.len() {
                        return Err(format!("part {lsn}: buffer offset out of range"));
                    }
                    (
                        inner.buffer[off..off + FRAME_HEADER].to_vec(),
                        inner.buffer[off + FRAME_HEADER..end].to_vec(),
                    )
                }
                Location::Flash(addr) => {
                    if !inner.segments.contains_key(&addr.segment) {
                        return Err(format!(
                            "part {lsn}: lives in untracked segment {}",
                            addr.segment
                        ));
                    }
                    let header = self
                        .device
                        .read(addr, FRAME_HEADER)
                        .map_err(|e| format!("part {lsn}: header read failed: {e}"))?;
                    let payload = self
                        .device
                        .read(
                            FlashAddress {
                                segment: addr.segment,
                                offset: addr.offset + FRAME_HEADER as u32,
                            },
                            meta.len as usize,
                        )
                        .map_err(|e| format!("part {lsn}: payload read failed: {e}"))?;
                    if meta.superseded_by.is_none() {
                        *seg_live_recount.entry(addr.segment).or_insert(0) +=
                            FRAME_HEADER + meta.len as usize;
                    }
                    (header, payload)
                }
            };
            let magic = u32::from_le_bytes(header[0..4].try_into().expect("4"));
            let h_lsn = u64::from_le_bytes(header[4..12].try_into().expect("8"));
            let h_pid = u64::from_le_bytes(header[12..20].try_into().expect("8"));
            let h_prev = u64::from_le_bytes(header[20..28].try_into().expect("8"));
            let h_len = u32::from_le_bytes(header[28..32].try_into().expect("4"));
            let h_crc = u64::from_le_bytes(header[32..40].try_into().expect("8"));
            if magic != FRAME_MAGIC {
                return Err(format!("part {lsn}: bad frame magic at recorded location"));
            }
            if h_lsn != lsn
                || h_pid != meta.pid
                || h_prev != meta.prev.unwrap_or(NO_PREV)
                || h_len != meta.len
            {
                return Err(format!(
                    "part {lsn}: frame header disagrees with offset table \
                     (lsn {h_lsn}, pid {h_pid}, prev {h_prev:#x}, len {h_len})"
                ));
            }
            if fnv64(&payload) != h_crc {
                return Err(format!("part {lsn}: payload CRC mismatch"));
            }
            if meta.superseded_by.is_none() {
                report.live_parts += 1;
            }
        }
        if buffer_located != inner.buffered.len() {
            return Err(format!(
                "{buffer_located} parts claim buffer locations but {} are listed as buffered",
                inner.buffered.len()
            ));
        }
        for &lsn in &inner.buffered {
            match inner.parts.get(&lsn) {
                Some(m) if matches!(m.loc, Location::Buffer(_)) => {}
                Some(_) => return Err(format!("buffered part {lsn} has a flash location")),
                None => return Err(format!("buffered part {lsn} missing from parts table")),
            }
        }
        report.buffered_parts = inner.buffered.len();
        // Page table coherence.
        report.pages = inner.per_pid.len();
        for (&pid, lsns) in &inner.per_pid {
            if lsns.is_empty() {
                return Err(format!("page {pid}: empty live-part list"));
            }
            for w in lsns.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("page {pid}: live parts not strictly ascending"));
                }
            }
            for &lsn in lsns {
                let Some(meta) = inner.parts.get(&lsn) else {
                    return Err(format!("page {pid}: listed part {lsn} missing"));
                };
                if meta.pid != pid {
                    return Err(format!(
                        "page {pid}: listed part {lsn} belongs to page {}",
                        meta.pid
                    ));
                }
                if meta.superseded_by.is_some() {
                    return Err(format!("page {pid}: listed part {lsn} is superseded"));
                }
                if let Some(prev) = meta.prev {
                    let Some(prev_meta) = inner.parts.get(&prev) else {
                        return Err(format!(
                            "page {pid}: part {lsn} chains to missing part {prev}"
                        ));
                    };
                    if prev_meta.pid != pid {
                        return Err(format!(
                            "page {pid}: part {lsn} chains into page {}",
                            prev_meta.pid
                        ));
                    }
                    if meta.chain_len != prev_meta.chain_len + 1 {
                        return Err(format!(
                            "page {pid}: part {lsn} chain length {} vs prev {}",
                            meta.chain_len, prev_meta.chain_len
                        ));
                    }
                }
            }
        }
        // Segment accounting bounds.
        for (&seg, info) in &inner.segments {
            let recount = seg_live_recount.get(&seg).copied().unwrap_or(0);
            if info.live_bytes > info.total_bytes {
                return Err(format!(
                    "segment {seg}: live bytes {} exceed total {}",
                    info.live_bytes, info.total_bytes
                ));
            }
            if recount > info.live_bytes {
                return Err(format!(
                    "segment {seg}: {recount} live frame bytes recounted, only {} recorded",
                    info.live_bytes
                ));
            }
        }
        Ok(report)
    }

    /// Order-independent digest of the store's *logical* state: parts table
    /// (without physical locations), page table, watermark, and next LSN.
    /// Two stores recovered from the same device bytes must produce equal
    /// fingerprints — recovery idempotence.
    pub fn fingerprint(&self) -> u64 {
        let inner = self.inner.lock();
        let mut buf = Vec::new();
        let mut lsns: Vec<u64> = inner.parts.keys().copied().collect();
        lsns.sort_unstable();
        for lsn in lsns {
            let m = &inner.parts[&lsn];
            buf.extend_from_slice(&lsn.to_le_bytes());
            buf.extend_from_slice(&m.pid.to_le_bytes());
            buf.extend_from_slice(&m.prev.unwrap_or(NO_PREV).to_le_bytes());
            buf.extend_from_slice(&m.len.to_le_bytes());
            buf.extend_from_slice(&m.superseded_by.unwrap_or(NO_PREV).to_le_bytes());
            buf.extend_from_slice(&m.chain_len.to_le_bytes());
        }
        let mut pids: Vec<PageId> = inner.per_pid.keys().copied().collect();
        pids.sort_unstable();
        for pid in pids {
            buf.extend_from_slice(&pid.to_le_bytes());
            for lsn in &inner.per_pid[&pid] {
                buf.extend_from_slice(&lsn.to_le_bytes());
            }
        }
        buf.extend_from_slice(&inner.synced_watermark.to_le_bytes());
        buf.extend_from_slice(&self.next_lsn.load(Ordering::SeqCst).to_le_bytes());
        fnv64(&buf)
    }

    /// Rebuild a store's tables by scanning a device (crash recovery).
    ///
    /// Stops scanning a segment at the first torn or corrupt frame. Parts
    /// are replayed in LSN order so supersession is reconstructed exactly.
    pub fn recover_from_device(
        device: Arc<FlashDevice>,
        config: LssConfig,
    ) -> Result<Self, StoreError> {
        #[derive(Clone)]
        struct Scanned {
            lsn: u64,
            pid: PageId,
            prev: Option<u64>,
            len: u32,
            addr: FlashAddress,
            is_delta: bool,
        }
        let mut found: Vec<Scanned> = Vec::new();
        let seg_count = device.config().segment_count;
        for seg in 0..seg_count as SegmentId {
            let written = device.segment_written(seg);
            let mut off = 0usize;
            while off + FRAME_HEADER <= written {
                let addr = FlashAddress {
                    segment: seg,
                    offset: off as u32,
                };
                let header = device.read(addr, FRAME_HEADER).map_err(device_err)?;
                let magic = u32::from_le_bytes(header[0..4].try_into().expect("4"));
                if magic != FRAME_MAGIC {
                    break; // torn tail or free space
                }
                let lsn = u64::from_le_bytes(header[4..12].try_into().expect("8"));
                let pid = u64::from_le_bytes(header[12..20].try_into().expect("8"));
                let prev_raw = u64::from_le_bytes(header[20..28].try_into().expect("8"));
                let len = u32::from_le_bytes(header[28..32].try_into().expect("4"));
                let crc = u64::from_le_bytes(header[32..40].try_into().expect("8"));
                if off + FRAME_HEADER + len as usize > written {
                    break; // torn payload
                }
                let payload_addr = FlashAddress {
                    segment: seg,
                    offset: (off + FRAME_HEADER) as u32,
                };
                let payload = device
                    .read(payload_addr, len as usize)
                    .map_err(device_err)?;
                if fnv64(&payload) != crc {
                    break; // corrupt frame: stop at torn tail
                }
                let is_tombstone = len == 0;
                let is_delta = if is_tombstone {
                    false
                } else {
                    let raw = config
                        .codec
                        .decode(&payload)
                        .map_err(|e| StoreError::Io(format!("corrupt part {lsn}: {e}")))?;
                    raw.first().copied() == Some(1)
                };
                found.push(Scanned {
                    lsn,
                    pid,
                    prev: if prev_raw == NO_PREV {
                        None
                    } else {
                        Some(prev_raw)
                    },
                    len,
                    addr,
                    is_delta,
                });
                off += FRAME_HEADER + len as usize;
            }
        }
        found.sort_by_key(|s| s.lsn);
        let next_lsn = found.last().map(|s| s.lsn + 1).unwrap_or(0);

        let store = LogStructuredStore::new(device, config);
        {
            let mut inner = store.inner.lock();
            for s in &found {
                if s.len == 0 {
                    // Tombstone: the page was retired at this LSN.
                    Self::supersede_pid(&mut inner, s.pid, s.lsn);
                    inner.per_pid.remove(&s.pid);
                    let framed = FRAME_HEADER;
                    let seg = inner.segments.entry(s.addr.segment).or_default();
                    seg.total_bytes += framed;
                    continue;
                }
                let chain_len = s
                    .prev
                    .and_then(|p| inner.parts.get(&p).map(|m| m.chain_len))
                    .unwrap_or(0)
                    + 1;
                token_alloc(s.lsn);
                inner.parts.insert(
                    s.lsn,
                    PartMeta {
                        pid: s.pid,
                        prev: s.prev,
                        len: s.len,
                        loc: Location::Flash(s.addr),
                        superseded_by: None,
                        chain_len,
                    },
                );
                let framed = FRAME_HEADER + s.len as usize;
                let seg = inner.segments.entry(s.addr.segment).or_default();
                seg.total_bytes += framed;
                seg.live_bytes += framed;
                if !s.is_delta {
                    Self::supersede_pid(&mut inner, s.pid, s.lsn);
                }
                inner.per_pid.entry(s.pid).or_default().push(s.lsn);
            }
        }
        store.next_lsn.store(next_lsn, Ordering::SeqCst);
        // Everything recovered from the device is, by construction, durable.
        store.inner.lock().synced_watermark = next_lsn;
        Ok(store)
    }
}

impl LogStructuredStore {
    /// Decode one part's payload into a page image.
    fn decode_part(&self, lsn: u64, payload: &[u8]) -> Result<PageImage, StoreError> {
        let raw = self
            .config
            .codec
            .decode(payload)
            .map_err(|e| StoreError::Io(format!("corrupt compressed part {lsn}: {e}")))?;
        PageImage::deserialize(&raw).map_err(|e| StoreError::Io(format!("corrupt part {lsn}: {e}")))
    }

    /// Fold a fully decoded chain (newest first) into one image.
    fn fold_parts(token: u64, mut imgs: Vec<PageImage>) -> Result<PageImage, StoreError> {
        let mut base = imgs.pop().ok_or(StoreError::UnknownToken(token))?;
        if base.is_delta {
            return Err(StoreError::Io(format!(
                "part chain for token {token} has no base"
            )));
        }
        for delta in imgs.into_iter().rev() {
            base.apply_delta(&delta);
        }
        Ok(base)
    }

    /// Materialize the full image for `token` (caller holds the lock).
    fn fetch_locked(&self, inner: &Inner, token: u64) -> Result<PageImage, StoreError> {
        // Walk the part chain newest → oldest, then fold oldest-up.
        let _span = dcs_telemetry::span("llama.fetch", dcs_telemetry::CostClass::SsRead);
        let mut imgs: Vec<PageImage> = Vec::new();
        let mut cur = Some(token);
        while let Some(lsn) = cur {
            let (meta, payload) = self.read_part(inner, lsn)?;
            let img = self.decode_part(lsn, &payload)?;
            let is_base = !img.is_delta;
            imgs.push(img);
            cur = if is_base { None } else { meta.prev };
        }
        Self::fold_parts(token, imgs)
    }

    // ------------------------------------------------------------------
    // Asynchronous fetch: submit / poll over the store's queue pair
    // ------------------------------------------------------------------

    /// Begin fetching the full image for `token` without blocking on the
    /// device: buffer-resident parts decode inline, the first flash-resident
    /// part's read is submitted on the store's [`IoQueuePair`] and the chain
    /// walk resumes per completion in [`LogStructuredStore::poll_fetches`].
    ///
    /// Errors detectable at submit (unknown token, corrupt buffered part)
    /// surface immediately; I/O errors arrive with the completion. When the
    /// submission queue is momentarily full the read degrades to a blocking
    /// one — correctness never depends on a free slot.
    pub fn fetch_submit(&self, token: u64) -> Result<FetchSubmit, StoreError> {
        let fetch_id = {
            let mut f = self.fetches.lock();
            let id = f.next_id;
            f.next_id += 1;
            id
        };
        let mut imgs = Vec::new();
        match self.walk_fetch(fetch_id, token, Some(token), &mut imgs)? {
            WalkStep::Done(img) => Ok(FetchSubmit::Ready(img)),
            WalkStep::Submitted {
                awaiting,
                awaiting_prev,
            } => {
                self.fetches.lock().pending.insert(
                    fetch_id,
                    AsyncFetch {
                        token,
                        imgs,
                        awaiting,
                        awaiting_prev,
                    },
                );
                Ok(FetchSubmit::Pending(fetch_id))
            }
        }
    }

    /// Advance the chain walk from `cur`, decoding buffer parts inline and
    /// stopping at the first part that needs a device read.
    fn walk_fetch(
        &self,
        fetch_id: u64,
        token: u64,
        mut cur: Option<u64>,
        imgs: &mut Vec<PageImage>,
    ) -> Result<WalkStep, StoreError> {
        while let Some(lsn) = cur {
            // Copy meta (and a buffered payload) out under the table lock;
            // device I/O happens outside it.
            let (meta, buffered_payload) = {
                let inner = self.inner.lock();
                let meta = inner
                    .parts
                    .get(&lsn)
                    .ok_or(StoreError::UnknownToken(lsn))?
                    .clone();
                token_access(lsn);
                let payload = match meta.loc {
                    Location::Buffer(off) => {
                        // ORDERING: statistics counter only.
                        self.stats.buffer_hits.fetch_add(1, Ordering::Relaxed);
                        let start = off + FRAME_HEADER;
                        Some(inner.buffer[start..start + meta.len as usize].to_vec())
                    }
                    Location::Flash(_) => None,
                };
                (meta, payload)
            };
            let payload = match buffered_payload {
                Some(p) => p,
                None => {
                    let Location::Flash(addr) = meta.loc else {
                        unreachable!("non-buffer part is on flash")
                    };
                    let payload_addr = FlashAddress {
                        segment: addr.segment,
                        offset: addr.offset + FRAME_HEADER as u32,
                    };
                    // ORDERING: statistics counter only.
                    self.stats.flash_reads.fetch_add(1, Ordering::Relaxed);
                    match self.qp.submit(IoRequest {
                        addr: payload_addr,
                        len: meta.len as usize,
                        tag: fetch_id,
                    }) {
                        Ok(_) => {
                            return Ok(WalkStep::Submitted {
                                awaiting: lsn,
                                awaiting_prev: meta.prev,
                            })
                        }
                        Err(SubmitError::QueueFull { .. }) => {
                            // Bounded-queue degradation: read synchronously.
                            self.device
                                .read(payload_addr, meta.len as usize)
                                .map_err(device_err)?
                        }
                    }
                }
            };
            let img = self.decode_part(lsn, &payload)?;
            let is_base = !img.is_delta;
            imgs.push(img);
            cur = if is_base { None } else { meta.prev };
        }
        Ok(WalkStep::Done(Self::fold_parts(
            token,
            std::mem::take(imgs),
        )?))
    }

    /// Reap completed device reads and advance their chain walks. Fetches
    /// whose final part landed are pushed into `out`; multi-part chains may
    /// submit their next read instead and stay pending. Returns how many
    /// fetches finished. Non-blocking.
    pub fn poll_fetches(&self, out: &mut Vec<CompletedFetch>) -> usize {
        let mut comps = Vec::new();
        self.qp.poll_completions(&mut comps);
        let mut finished = 0;
        for c in comps {
            let fetch_id = c.tag;
            let Some(mut st) = self.fetches.lock().pending.remove(&fetch_id) else {
                debug_assert!(false, "completion for unknown fetch {fetch_id}");
                continue;
            };
            let step = c.result.map_err(device_err).and_then(|payload| {
                let img = self.decode_part(st.awaiting, &payload)?;
                let is_base = !img.is_delta;
                st.imgs.push(img);
                let cur = if is_base { None } else { st.awaiting_prev };
                self.walk_fetch(fetch_id, st.token, cur, &mut st.imgs)
            });
            match step {
                Ok(WalkStep::Done(img)) => {
                    finished += 1;
                    out.push(CompletedFetch {
                        fetch_id,
                        result: Ok(img),
                    });
                }
                Ok(WalkStep::Submitted {
                    awaiting,
                    awaiting_prev,
                }) => {
                    st.awaiting = awaiting;
                    st.awaiting_prev = awaiting_prev;
                    self.fetches.lock().pending.insert(fetch_id, st);
                }
                Err(e) => {
                    finished += 1;
                    out.push(CompletedFetch {
                        fetch_id,
                        result: Err(e),
                    });
                }
            }
        }
        finished
    }

    /// Fetches submitted but not yet completed.
    pub fn fetches_inflight(&self) -> usize {
        self.fetches.lock().pending.len()
    }

    /// Block (sleeping out any wall-clock device latency) until every
    /// in-flight fetch has completed, reaping them into `out`. Shutdown
    /// paths use this so no parked request is ever abandoned.
    pub fn drain_fetches(&self, out: &mut Vec<CompletedFetch>) {
        while self.fetches_inflight() > 0 {
            if self.poll_fetches(out) > 0 {
                continue;
            }
            // Nothing wall-ready yet: yield rather than spin hot.
            std::thread::yield_now();
        }
    }

    /// The store's I/O queue pair (diagnostics and tests).
    pub fn io_queue(&self) -> &IoQueuePair {
        &self.qp
    }
}

impl PageStore for LogStructuredStore {
    fn write(&self, pid: PageId, image: &PageImage, prev: Option<u64>) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        // Roll up over-long incremental chains: fold the durable chain with
        // this delta and write a full image, so the history becomes dead
        // (collectable) and fetch cost stays bounded.
        let mut rolled: Option<PageImage> = None;
        if image.is_delta {
            if let Some(prev_lsn) = prev {
                let chain_len = inner.parts.get(&prev_lsn).map(|m| m.chain_len).unwrap_or(0);
                if chain_len >= self.config.max_flush_chain {
                    let mut full = self.fetch_locked(&inner, prev_lsn)?;
                    full.apply_delta(image);
                    // ORDERING: statistics counter only.
                    self.stats.rollups.fetch_add(1, Ordering::Relaxed);
                    rolled = Some(full);
                }
            }
        }
        let (image, prev) = match &rolled {
            Some(full) => (full, None),
            None => (image, prev),
        };
        let raw = image.serialize();
        let payload = self.config.codec.encode(&raw);
        let lsn = self.next_lsn.fetch_add(1, Ordering::SeqCst);
        // ORDERING: statistics counters only; part visibility is
        // carried by the inner mutex held here, lsn uniqueness by the
        // SeqCst fetch_add above.
        self.stats.parts_written.fetch_add(1, Ordering::Relaxed);
        // ORDERING: as above.
        self.stats
            .payload_bytes
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        // ORDERING: as above.
        self.stats
            .stored_bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        if inner.buffer.len() + FRAME_HEADER + payload.len() > self.config.flush_buffer_bytes {
            self.flush_buffer_locked(&mut inner)?;
        }
        let chain_len = match prev {
            Some(p) => inner.parts.get(&p).map(|m| m.chain_len).unwrap_or(0) + 1,
            None => 1,
        };
        Self::buffer_part(&mut inner, lsn, pid, prev, &payload, chain_len);
        if !image.is_delta {
            Self::supersede_pid(&mut inner, pid, lsn);
        }
        inner.per_pid.entry(pid).or_default().push(lsn);
        Ok(lsn)
    }

    fn fetch(&self, _pid: PageId, token: u64) -> Result<PageImage, StoreError> {
        let inner = self.inner.lock();
        self.fetch_locked(&inner, token)
    }

    fn retire_page(&self, pid: PageId) -> Result<(), StoreError> {
        let lsn = self.next_lsn.fetch_add(1, Ordering::SeqCst);
        let mut inner = self.inner.lock();
        // Durable tombstone: a zero-length part. Recovery treats it as
        // "this page ceased to exist at this LSN".
        if inner.buffer.len() + FRAME_HEADER > self.config.flush_buffer_bytes {
            self.flush_buffer_locked(&mut inner)?;
        }
        Self::buffer_part(&mut inner, lsn, pid, None, &[], 1);
        // Everything the page ever wrote — including the tombstone part
        // itself — is dead.
        Self::supersede_pid(&mut inner, pid, lsn);
        if let Some(meta) = inner.parts.get_mut(&lsn) {
            meta.superseded_by = Some(lsn);
            token_retire(lsn);
        }
        inner.per_pid.remove(&pid);
        Ok(())
    }
}

fn device_err(e: DeviceError) -> StoreError {
    match e {
        DeviceError::Full => StoreError::Full,
        other => StoreError::Io(other.to_string()),
    }
}

impl std::fmt::Debug for LogStructuredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogStructuredStore")
            .field("stats", &self.stats())
            .field("utilization", &self.utilization())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dcs_bwtree::DeltaOp;
    use dcs_flashsim::DeviceConfig;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    fn test_store() -> LogStructuredStore {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        LogStructuredStore::new(device, LssConfig::default())
    }

    fn base_img(pairs: &[(&str, &str)]) -> PageImage {
        PageImage::base(
            pairs.iter().map(|(k, v)| (b(k), b(v))).collect(),
            None,
            None,
        )
    }

    #[test]
    fn write_fetch_roundtrip_via_buffer() {
        let s = test_store();
        let img = base_img(&[("a", "1"), ("b", "2")]);
        let t = s.write(1, &img, None).unwrap();
        assert_eq!(s.fetch(1, t).unwrap(), img);
        // Served from the buffer: no device read yet.
        assert_eq!(s.stats().buffer_hits, 1);
        assert_eq!(s.stats().flash_reads, 0);
    }

    #[test]
    fn write_fetch_roundtrip_via_flash() {
        let s = test_store();
        let img = base_img(&[("k", "v")]);
        let t = s.write(1, &img, None).unwrap();
        s.flush().unwrap();
        assert_eq!(s.fetch(1, t).unwrap(), img);
        assert_eq!(s.stats().flash_reads, 1);
        assert_eq!(s.stats().buffers_flushed, 1);
    }

    #[test]
    fn many_parts_one_device_write() {
        let s = test_store();
        for pid in 0..50u64 {
            s.write(pid, &base_img(&[("key", "value")]), None).unwrap();
        }
        s.flush().unwrap();
        // Log-structuring: 50 page writes became one device append.
        assert_eq!(s.device().stats().writes, 1);
        assert_eq!(s.stats().parts_written, 50);
    }

    #[test]
    fn incremental_chain_folds_on_fetch() {
        let s = test_store();
        let t0 = s
            .write(1, &base_img(&[("a", "1"), ("b", "2")]), None)
            .unwrap();
        let d = PageImage::delta(vec![DeltaOp::Put(b("c"), b("3"))], None, None);
        let t1 = s.write(1, &d, Some(t0)).unwrap();
        s.flush().unwrap();
        let img = s.fetch(1, t1).unwrap();
        assert_eq!(img.entries.len(), 3);
        // Two parts ⇒ two flash reads (the I/O cost of delta chains).
        assert_eq!(s.stats().flash_reads, 2);
    }

    #[test]
    fn fetch_submit_ready_from_buffer() {
        let s = test_store();
        let img = base_img(&[("a", "1")]);
        let t = s.write(1, &img, None).unwrap();
        // Not yet flushed: the async path resolves without any device read.
        match s.fetch_submit(t).unwrap() {
            FetchSubmit::Ready(got) => assert_eq!(got, img),
            FetchSubmit::Pending(_) => panic!("buffered part must be ready"),
        }
        assert_eq!(s.device().stats().reads, 0);
        assert_eq!(s.fetches_inflight(), 0);
    }

    #[test]
    fn fetch_submit_poll_multi_part_chain() {
        let s = test_store();
        let t0 = s
            .write(1, &base_img(&[("a", "1"), ("b", "2")]), None)
            .unwrap();
        let d = PageImage::delta(vec![DeltaOp::Put(b("c"), b("3"))], None, None);
        let t1 = s.write(1, &d, Some(t0)).unwrap();
        s.flush().unwrap();
        let FetchSubmit::Pending(id) = s.fetch_submit(t1).unwrap() else {
            panic!("flash-resident chain must go async");
        };
        assert_eq!(s.fetches_inflight(), 1);
        let mut out = Vec::new();
        // Two parts ⇒ the first completion resubmits for the base; drain
        // until the fold lands.
        s.drain_fetches(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].fetch_id, id);
        let img = out[0].result.as_ref().unwrap();
        assert_eq!(img.entries.len(), 3);
        // Same I/O accounting as the blocking path.
        assert_eq!(s.stats().flash_reads, 2);
        assert_eq!(s.device().stats().reads, 2);
        // And the folded image matches the blocking fetch.
        assert_eq!(*img, s.fetch(1, t1).unwrap());
    }

    #[test]
    fn concurrent_fetches_share_the_queue_pair() {
        let s = test_store();
        let mut tokens = Vec::new();
        for pid in 0..4u64 {
            let img = base_img(&[("k", &format!("value-{pid}"))]);
            tokens.push((pid, s.write(pid, &img, None).unwrap()));
        }
        s.flush().unwrap();
        let mut ids = Vec::new();
        for (_, t) in &tokens {
            match s.fetch_submit(*t).unwrap() {
                FetchSubmit::Pending(id) => ids.push(id),
                FetchSubmit::Ready(_) => panic!("flushed parts must go async"),
            }
        }
        assert_eq!(s.fetches_inflight(), 4);
        // All four reads were concurrently in flight on the device.
        assert_eq!(s.device().stats().io_depth.max, 4);
        let mut out = Vec::new();
        s.drain_fetches(&mut out);
        assert_eq!(out.len(), 4);
        for c in &out {
            assert!(c.result.is_ok());
        }
    }

    #[test]
    fn base_write_supersedes_history() {
        let s = test_store();
        let t0 = s.write(1, &base_img(&[("a", "old")]), None).unwrap();
        s.flush().unwrap();
        let _t1 = s.write(1, &base_img(&[("a", "new")]), None).unwrap();
        s.flush().unwrap();
        // Old part is dead but still readable until GC trims its segment.
        assert!(s.fetch(1, t0).is_ok());
        let newest = s.newest_parts();
        assert_ne!(newest[&1], t0);
    }

    #[test]
    fn gc_relocates_live_parts_and_preserves_tokens() {
        let device = Arc::new(FlashDevice::new(DeviceConfig {
            segment_bytes: 4 << 10,
            segment_count: 16,
            ..DeviceConfig::small_test()
        }));
        let s = LogStructuredStore::new(
            device,
            LssConfig {
                flush_buffer_bytes: 4 << 10,
                gc_live_fraction: 0.9,
                codec: Codec::None,
                max_flush_chain: 4,
            },
        );
        // Interleave two pids so segments end up partly dead.
        let live_img = base_img(&[("live-key", "live-value-xxxxxxxxxxxxxxxxxxx")]);
        let live_token = s.write(1, &live_img, None).unwrap();
        for i in 0..200u64 {
            // Repeated full rewrites of pid 2 leave dead parts everywhere.
            let img = base_img(&[("churn", &format!("v{i}-{}", "y".repeat(64)))]);
            s.write(2, &img, None).unwrap();
        }
        // GC only touches durable segments (unsynced parts must not be
        // durably relocated), so establish a barrier first.
        s.sync().unwrap();
        let collected = s.gc_all().unwrap();
        assert!(collected > 0, "GC should collect churned segments");
        // The live token survives relocation.
        assert_eq!(s.fetch(1, live_token).unwrap(), live_img);
        assert!(s.stats().parts_relocated > 0);
        // Utilization improves after GC.
        assert!(s.utilization() > 0.5, "utilization {}", s.utilization());
    }

    #[test]
    fn recovery_rebuilds_tables() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let tokens: Vec<u64>;
        {
            let s = LogStructuredStore::new(device.clone(), LssConfig::default());
            let t0 = s.write(1, &base_img(&[("a", "1")]), None).unwrap();
            let t1 = s
                .write(
                    1,
                    &PageImage::delta(vec![DeltaOp::Put(b("b"), b("2"))], None, None),
                    Some(t0),
                )
                .unwrap();
            let t2 = s.write(7, &base_img(&[("x", "y")]), None).unwrap();
            s.sync().unwrap();
            tokens = vec![t0, t1, t2];
        }
        let s2 = LogStructuredStore::recover_from_device(device, LssConfig::default()).unwrap();
        let img = s2.fetch(1, tokens[1]).unwrap();
        assert_eq!(img.entries, vec![(b("a"), b("1")), (b("b"), b("2"))]);
        assert_eq!(
            s2.fetch(7, tokens[2]).unwrap().entries,
            vec![(b("x"), b("y"))]
        );
        let newest = s2.newest_parts();
        assert_eq!(newest[&1], tokens[1]);
        // New writes continue with fresh LSNs.
        let t3 = s2.write(9, &base_img(&[("z", "9")]), None).unwrap();
        assert!(t3 > tokens[2]);
    }

    #[test]
    fn crash_discards_unsynced_parts() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        {
            let s = LogStructuredStore::new(device.clone(), LssConfig::default());
            s.write(1, &base_img(&[("durable", "1")]), None).unwrap();
            s.sync().unwrap();
            s.write(2, &base_img(&[("volatile", "2")]), None).unwrap();
            s.flush().unwrap(); // written but not synced
        }
        device.crash();
        let s2 = LogStructuredStore::recover_from_device(device, LssConfig::default()).unwrap();
        let newest = s2.newest_parts();
        assert!(newest.contains_key(&1), "synced page must survive");
        assert!(!newest.contains_key(&2), "unsynced page must be lost");
    }

    #[test]
    fn unknown_token_is_reported() {
        let s = test_store();
        assert_eq!(s.fetch(1, 999), Err(StoreError::UnknownToken(999)));
    }

    #[test]
    fn oversized_buffer_config_rejected() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let seg = device.config().segment_bytes;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            LogStructuredStore::new(
                device,
                LssConfig {
                    flush_buffer_bytes: seg + 1,
                    gc_live_fraction: 0.5,
                    codec: Codec::None,
                    max_flush_chain: 4,
                },
            )
        }));
        assert!(result.is_err());
    }

    #[test]
    fn payload_accounting_tracks_variable_sizes() {
        let s = test_store();
        let small = base_img(&[("k", "v")]);
        let big = base_img(&[("key-large", &"x".repeat(500))]);
        s.write(1, &small, None).unwrap();
        s.write(2, &big, None).unwrap();
        let stats = s.stats();
        assert_eq!(
            stats.payload_bytes,
            (small.serialize().len() + big.serialize().len()) as u64
        );
    }

    #[test]
    fn audit_passes_through_write_flush_gc_and_recovery() {
        let device = Arc::new(FlashDevice::new(DeviceConfig {
            segment_bytes: 4 << 10,
            segment_count: 16,
            ..DeviceConfig::small_test()
        }));
        let s = LogStructuredStore::new(
            device.clone(),
            LssConfig {
                flush_buffer_bytes: 4 << 10,
                gc_live_fraction: 0.9,
                codec: Codec::None,
                max_flush_chain: 4,
            },
        );
        let t0 = s
            .write(1, &base_img(&[("stable", "payload")]), None)
            .unwrap();
        for i in 0..200u64 {
            let img = base_img(&[("churn", &format!("v{i}-{}", "y".repeat(64)))]);
            s.write(2, &img, None).unwrap();
        }
        // While parts still sit in the write buffer.
        let buffered = s.audit().unwrap();
        assert!(buffered.buffered_parts > 0);
        s.sync().unwrap();
        let synced = s.audit().unwrap();
        assert_eq!(synced.buffered_parts, 0);
        assert_eq!(synced.pages, 2);
        assert!(s.gc_all().unwrap() > 0);
        let after_gc = s.audit().unwrap();
        assert_eq!(after_gc.live_parts, 2);
        assert_eq!(s.fetch(1, t0).unwrap(), base_img(&[("stable", "payload")]));
        drop(s);
        let s2 = LogStructuredStore::recover_from_device(
            device,
            LssConfig {
                flush_buffer_bytes: 4 << 10,
                gc_live_fraction: 0.9,
                codec: Codec::None,
                max_flush_chain: 4,
            },
        )
        .unwrap();
        let recovered = s2.audit().unwrap();
        assert_eq!(recovered.pages, 2);
    }

    #[test]
    fn recovery_is_idempotent_by_fingerprint() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        {
            let s = LogStructuredStore::new(device.clone(), LssConfig::default());
            let t0 = s.write(1, &base_img(&[("a", "1")]), None).unwrap();
            s.write(
                1,
                &PageImage::delta(vec![DeltaOp::Put(b("b"), b("2"))], None, None),
                Some(t0),
            )
            .unwrap();
            s.write(7, &base_img(&[("x", "y")]), None).unwrap();
            s.sync().unwrap();
        }
        let r1 =
            LogStructuredStore::recover_from_device(device.clone(), LssConfig::default()).unwrap();
        let r2 = LogStructuredStore::recover_from_device(device, LssConfig::default()).unwrap();
        assert_eq!(r1.fingerprint(), r2.fingerprint());
        assert_eq!(r1.newest_parts(), r2.newest_parts());
        r1.audit().unwrap();
        r2.audit().unwrap();
    }
}
