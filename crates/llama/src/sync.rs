//! Synchronization facade: `parking_lot` / `std::sync::atomic` in normal
//! builds, the `dcs-check` instrumented shims when the `check` feature is
//! on. The shims turn the store's lock acquisitions and the LSN allocator
//! into schedule points of the deterministic interleaving checker; see
//! `crates/check`.
//!
//! Stats counters deliberately stay on plain `std` atomics (see `lss.rs`) —
//! instrumenting monotonic counters would only inflate the schedule space
//! without adding any interleaving of interest.

#[cfg(feature = "check")]
pub use dcs_check::sync::pl::Mutex;
#[cfg(feature = "check")]
pub use dcs_check::sync::AtomicU64;

#[cfg(not(feature = "check"))]
pub use parking_lot::Mutex;
#[cfg(not(feature = "check"))]
pub use std::sync::atomic::AtomicU64;
