//! Synchronization facade, re-exported from the workspace-shared
//! `dcs-syncshim`: `parking_lot` / `std::sync::atomic` in normal builds,
//! the `dcs-check` instrumented shims when the `check` feature is on (the
//! feature forwards to `dcs-syncshim/check`). The shims turn the store's
//! lock acquisitions and the LSN allocator into schedule points of the
//! deterministic interleaving checker; see `crates/check`.
//!
//! Stats counters deliberately stay on plain `std` atomics (see `lss.rs`) —
//! instrumenting monotonic counters would only inflate the schedule space
//! without adding any interleaving of interest.

pub use dcs_syncshim::atomic::AtomicU64;
pub use dcs_syncshim::pl::Mutex;
