//! Crash recovery: device → store tables → reconstructed tree.

use crate::lss::{LogStructuredStore, LssConfig};
use dcs_bwtree::{BwTree, BwTreeConfig, StoreError};
use dcs_flashsim::FlashDevice;
use std::sync::Arc;

/// Result of a recovery pass.
pub struct RecoveredState {
    /// The rebuilt store (tokens from before the crash remain valid).
    pub store: Arc<LogStructuredStore>,
    /// The reconstructed tree: every durable leaf re-installed at its
    /// pre-crash PID as a flash stub, the index rebuilt from fence keys.
    pub tree: BwTree,
    /// Number of durable pages found.
    pub pages_recovered: usize,
}

/// Recover from a crashed device.
///
/// The store's part tables are rebuilt by scanning the log (stopping at
/// torn frames). The tree's mapping table is then reconstructed *at the
/// original PIDs* — as LLAMA recovers its mapping table — so that the next
/// incarnation's flushes supersede the same logical pages and garbage
/// collection keeps working across restarts. Only one part per page is
/// read (for its fence keys); record data faults in lazily afterwards.
///
/// With the checkpoint discipline of [`crate::CacheManager::checkpoint`] +
/// [`LogStructuredStore::sync`], the recovered state is exactly the last
/// completed checkpoint: `FlashDevice::crash` discards all unsynced writes,
/// so either a checkpoint's pages are all present or none of its partial
/// writes survive.
pub fn recover(
    device: Arc<FlashDevice>,
    lss_config: LssConfig,
    tree_config: BwTreeConfig,
) -> Result<RecoveredState, StoreError> {
    let store = Arc::new(LogStructuredStore::recover_from_device(device, lss_config)?);
    let pages = store.newest_page_fences()?;
    let pages_recovered = pages.len();
    let tree = BwTree::from_recovered(tree_config, store.clone(), pages)
        .map_err(|e| StoreError::Io(e.to_string()))?;
    Ok(RecoveredState {
        store,
        tree,
        pages_recovered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheManager, CacheManagerConfig};
    use bytes::Bytes;
    use dcs_flashsim::{DeviceConfig, VirtualClock};

    fn kv(i: u32) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:06}")),
            Bytes::from(format!("value-{i}")),
        )
    }

    #[test]
    fn full_crash_recovery_roundtrip() {
        let clock = VirtualClock::new();
        let device = Arc::new(FlashDevice::with_clock(
            DeviceConfig {
                segment_count: 256,
                ..DeviceConfig::small_test()
            },
            clock.clone(),
        ));
        {
            let store = Arc::new(LogStructuredStore::new(
                device.clone(),
                LssConfig::default(),
            ));
            let tree = BwTree::with_store(BwTreeConfig::small_pages(), store.clone());
            for i in 0..1000u32 {
                let (k, v) = kv(i);
                tree.put(k, v);
            }
            tree.delete(kv(13).0);
            let mgr = CacheManager::new(CacheManagerConfig::default(), clock);
            mgr.checkpoint(&tree).unwrap();
            store.sync().unwrap();
            // Post-checkpoint writes are lost by the crash.
            tree.put(kv(2000).0, kv(2000).1);
            mgr.checkpoint(&tree).unwrap(); // flushed but NOT synced
        }
        device.crash();
        let recovered = recover(device, LssConfig::default(), BwTreeConfig::small_pages()).unwrap();
        assert!(recovered.pages_recovered > 1);
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            if i == 13 {
                assert_eq!(recovered.tree.get(&k), None, "deleted key resurrected");
            } else {
                assert_eq!(recovered.tree.get(&k), Some(v), "key {i} lost");
            }
        }
        assert_eq!(
            recovered.tree.get(&kv(2000).0),
            None,
            "unsynced write survived crash"
        );
        assert_eq!(recovered.tree.count_entries(), 999);
    }

    #[test]
    fn empty_device_recovers_empty() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let r = recover(device, LssConfig::default(), BwTreeConfig::default()).unwrap();
        assert_eq!(r.pages_recovered, 0);
        assert_eq!(r.tree.count_entries(), 0);
        assert_eq!(r.tree.get(b"anything"), None);
    }
}
