//! The cache manager: which pages stay in DRAM.
//!
//! This is where the paper's economics become policy. A data caching system
//! can move data between DRAM and flash (§3), and the cost model says
//! exactly when it should: once the interval between accesses to a page
//! exceeds the breakeven `Ti` (§4.2 — ≈45 s on the paper's hardware), the
//! page is cheaper to serve from flash with SS operations than to keep
//! renting DRAM for. The [`EvictionPolicy::CostModel`] policy implements
//! that rule directly; [`EvictionPolicy::Lru`] is the classic comparator.

use dcs_bwtree::{BwTree, FlushKind, ResidencyState, TreeError};
use dcs_flashsim::VirtualClock;
use std::sync::atomic::{AtomicU64, Ordering};

/// Eviction policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EvictionPolicy {
    /// Evict least-recently-used leaves until under the memory budget.
    Lru,
    /// Evict any leaf whose access interval exceeds `ti` (the cost-model
    /// breakeven), *and* fall back to LRU if still over budget.
    CostModel {
        /// Breakeven access interval in virtual nanoseconds.
        ti_nanos: u64,
    },
}

/// Cache-manager configuration.
#[derive(Debug, Clone)]
pub struct CacheManagerConfig {
    /// Target in-memory footprint in bytes (tree pages + mapping table).
    pub memory_budget: usize,
    /// Eviction policy.
    pub policy: EvictionPolicy,
    /// Keep record deltas in memory when evicting (record caching, §6.3).
    pub keep_record_cache: bool,
}

impl Default for CacheManagerConfig {
    fn default() -> Self {
        CacheManagerConfig {
            memory_budget: 64 << 20,
            policy: EvictionPolicy::Lru,
            keep_record_cache: false,
        }
    }
}

/// Counters for cache management activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Eviction sweeps run.
    pub sweeps: u64,
    /// Pages evicted.
    pub pages_evicted: u64,
    /// Approximate bytes released.
    pub bytes_released: u64,
    /// Pages flushed (made durable) without eviction, by checkpoints.
    pub pages_checkpointed: u64,
}

/// Drives [`BwTree::flush_page`] according to a policy. See module docs.
pub struct CacheManager {
    config: CacheManagerConfig,
    clock: VirtualClock,
    sweeps: AtomicU64,
    pages_evicted: AtomicU64,
    bytes_released: AtomicU64,
    pages_checkpointed: AtomicU64,
}

impl CacheManager {
    /// A manager reading access times from `clock`.
    pub fn new(config: CacheManagerConfig, clock: VirtualClock) -> Self {
        CacheManager {
            config,
            clock,
            sweeps: AtomicU64::new(0),
            pages_evicted: AtomicU64::new(0),
            bytes_released: AtomicU64::new(0),
            pages_checkpointed: AtomicU64::new(0),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheManagerConfig {
        &self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ORDERING: statistics counters; each is individually exact
            // and the snapshot tolerates a torn cross-field view.
            sweeps: self.sweeps.load(Ordering::Relaxed),
            pages_evicted: self.pages_evicted.load(Ordering::Relaxed),
            bytes_released: self.bytes_released.load(Ordering::Relaxed),
            pages_checkpointed: self.pages_checkpointed.load(Ordering::Relaxed),
        }
    }

    fn flush_kind(&self) -> FlushKind {
        if self.config.keep_record_cache {
            FlushKind::EvictBaseKeepDeltas
        } else {
            FlushKind::EvictAll
        }
    }

    /// One policy sweep over the tree. Returns pages evicted.
    ///
    /// Propagates the tree's virtual time from the clock, applies the
    /// cost-model interval rule (if configured), then enforces the memory
    /// budget by LRU.
    pub fn sweep(&self, tree: &BwTree) -> Result<usize, TreeError> {
        // ORDERING: statistics counter only.
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        let _span = dcs_telemetry::span("llama.cache_sweep", dcs_telemetry::CostClass::Maintenance);
        dcs_telemetry::ledger().maintenance_op();
        let now = self.clock.now();
        tree.set_vtime(now);
        let mut evicted = 0usize;

        // Phase 1 — cost-model rule: any leaf colder than Ti goes to flash,
        // regardless of memory pressure (it is cheaper there).
        if let EvictionPolicy::CostModel { ti_nanos } = self.config.policy {
            for page in tree.pages() {
                if !page.is_leaf || page.residency != ResidencyState::Resident {
                    continue;
                }
                if now.saturating_sub(page.last_access) > ti_nanos
                    && self.evict_one(tree, page.pid, page.mem_bytes)?.is_some()
                {
                    evicted += 1;
                }
            }
        }

        // Phase 2 — budget enforcement, coldest first.
        let mut footprint = tree.footprint_bytes();
        if footprint > self.config.memory_budget {
            let mut candidates: Vec<_> = tree
                .pages()
                .into_iter()
                .filter(|p| p.is_leaf && p.residency == ResidencyState::Resident)
                .collect();
            candidates.sort_by_key(|p| p.last_access);
            for page in candidates {
                if footprint <= self.config.memory_budget {
                    break;
                }
                if let Some(released) = self.evict_one(tree, page.pid, page.mem_bytes)? {
                    evicted += 1;
                    footprint = footprint.saturating_sub(released);
                }
            }
        }
        Ok(evicted)
    }

    /// Evict one page; returns the bytes actually released (the page's
    /// in-memory stub remains, so this is less than its resident size).
    fn evict_one(
        &self,
        tree: &BwTree,
        pid: dcs_bwtree::PageId,
        bytes_before: usize,
    ) -> Result<Option<usize>, TreeError> {
        match tree.flush_page(pid, self.flush_kind()) {
            Ok(_) => {
                let bytes_after = tree.page_info(pid).map(|p| p.mem_bytes).unwrap_or(0);
                let released = bytes_before.saturating_sub(bytes_after);
                // ORDERING: statistics counters; eviction correctness
                // is carried by the tree's own page-state atomics.
                self.pages_evicted.fetch_add(1, Ordering::Relaxed);
                // ORDERING: as above.
                self.bytes_released
                    .fetch_add(released as u64, Ordering::Relaxed);
                Ok(Some(released))
            }
            // A page can disappear or change level under a racing SMO.
            Err(TreeError::InnerPageNotEvictable(_)) | Err(TreeError::PageNotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Flush every dirty leaf (without evicting), making the whole tree
    /// durable. Pair with [`crate::LogStructuredStore::sync`] to establish a
    /// crash-consistent checkpoint.
    pub fn checkpoint(&self, tree: &BwTree) -> Result<usize, TreeError> {
        let mut flushed = 0usize;
        for page in tree.pages() {
            if page.is_leaf && page.dirty {
                match tree.flush_page(page.pid, FlushKind::FlushOnly) {
                    Ok(_) => {
                        flushed += 1;
                        // ORDERING: statistics counter only.
                        self.pages_checkpointed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(TreeError::InnerPageNotEvictable(_)) | Err(TreeError::PageNotFound(_)) => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(flushed)
    }
}

impl std::fmt::Debug for CacheManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheManager")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lss::{LogStructuredStore, LssConfig};
    use bytes::Bytes;
    use dcs_bwtree::BwTreeConfig;
    use dcs_flashsim::{DeviceConfig, FlashDevice};
    use std::sync::Arc;

    fn setup() -> (Arc<BwTree>, Arc<LogStructuredStore>, VirtualClock) {
        let clock = VirtualClock::new();
        let device = Arc::new(FlashDevice::with_clock(
            DeviceConfig {
                segment_count: 512,
                advance_clock_on_io: false,
                ..DeviceConfig::small_test()
            },
            clock.clone(),
        ));
        let store = Arc::new(LogStructuredStore::new(device, LssConfig::default()));
        let tree = Arc::new(BwTree::with_store(
            BwTreeConfig::small_pages(),
            store.clone(),
        ));
        (tree, store, clock)
    }

    fn kv(i: u32) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:06}")),
            Bytes::from(format!("value-{i}-padding-padding")),
        )
    }

    #[test]
    fn lru_sweep_enforces_budget() {
        let (tree, _store, clock) = setup();
        for i in 0..2000u32 {
            let (k, v) = kv(i);
            tree.put(k, v);
        }
        let before = tree.footprint_bytes();
        let budget = before / 4;
        let mgr = CacheManager::new(
            CacheManagerConfig {
                memory_budget: budget,
                policy: EvictionPolicy::Lru,
                keep_record_cache: false,
            },
            clock,
        );
        let evicted = mgr.sweep(&tree).unwrap();
        assert!(evicted > 0);
        let after = tree.footprint_bytes();
        assert!(
            after < before,
            "footprint should shrink: {before} -> {after}"
        );
        // Either the budget is met, or every leaf the policy can evict is
        // already gone (inner pages and stubs are the irreducible floor).
        let resident_leaves = tree
            .pages()
            .iter()
            .filter(|p| p.is_leaf && p.residency == ResidencyState::Resident)
            .count();
        assert!(
            after <= budget + 4096 || resident_leaves == 0,
            "footprint {after} exceeds budget {budget} with {resident_leaves} resident leaves"
        );
        // Data still correct.
        for i in (0..2000u32).step_by(97) {
            let (k, v) = kv(i);
            assert_eq!(tree.get(&k), Some(v));
        }
    }

    #[test]
    fn cost_model_evicts_cold_pages_only() {
        let (tree, _store, clock) = setup();
        for i in 0..800u32 {
            let (k, v) = kv(i);
            tree.put(k, v);
        }
        // Stamp all pages as accessed now...
        tree.set_vtime(clock.now());
        for i in 0..800u32 {
            tree.get(&kv(i).0);
        }
        // ...then advance past Ti and re-touch only the first keys (hot set).
        let ti = dcs_flashsim::secs(45.0);
        clock.advance(ti * 2);
        tree.set_vtime(clock.now());
        for i in 0..50u32 {
            tree.get(&kv(i).0);
        }
        let mgr = CacheManager::new(
            CacheManagerConfig {
                memory_budget: usize::MAX,
                policy: EvictionPolicy::CostModel { ti_nanos: ti },
                keep_record_cache: false,
            },
            clock,
        );
        let evicted = mgr.sweep(&tree).unwrap();
        assert!(evicted > 0, "cold pages should be evicted");
        // The hot leaf (first keys) must remain resident.
        let hot_hits_before = tree.stats().fetches;
        tree.get(&kv(0).0);
        assert_eq!(tree.stats().fetches, hot_hits_before, "hot page evicted");
    }

    #[test]
    fn record_cache_mode_keeps_deltas() {
        let (tree, _store, clock) = setup();
        for i in 0..200u32 {
            let (k, v) = kv(i);
            tree.put(k, v);
        }
        // Flush everything clean first, then lay down fresh deltas.
        let mgr = CacheManager::new(
            CacheManagerConfig {
                memory_budget: 0,
                policy: EvictionPolicy::Lru,
                keep_record_cache: true,
            },
            clock,
        );
        mgr.checkpoint(&tree).unwrap();
        tree.put(kv(0).0, Bytes::from("fresh"));
        mgr.sweep(&tree).unwrap();
        // The fresh delta survives as a record cache.
        let fetches = tree.stats().fetches;
        assert_eq!(tree.get(&kv(0).0), Some(Bytes::from("fresh")));
        assert_eq!(tree.stats().fetches, fetches, "record cache should hit");
    }

    #[test]
    fn checkpoint_flushes_all_dirty() {
        let (tree, store, clock) = setup();
        for i in 0..500u32 {
            let (k, v) = kv(i);
            tree.put(k, v);
        }
        let mgr = CacheManager::new(CacheManagerConfig::default(), clock);
        let flushed = mgr.checkpoint(&tree).unwrap();
        assert!(flushed > 0);
        store.sync().unwrap();
        // No leaf remains dirty.
        assert!(
            tree.pages().iter().all(|p| !p.is_leaf || !p.dirty),
            "dirty leaves remain after checkpoint"
        );
        // Second checkpoint is a no-op.
        assert_eq!(mgr.checkpoint(&tree).unwrap(), 0);
    }

    #[test]
    fn sweep_counts_stats() {
        let (tree, _store, clock) = setup();
        for i in 0..300u32 {
            let (k, v) = kv(i);
            tree.put(k, v);
        }
        let mgr = CacheManager::new(
            CacheManagerConfig {
                memory_budget: 0,
                policy: EvictionPolicy::Lru,
                keep_record_cache: false,
            },
            clock,
        );
        mgr.sweep(&tree).unwrap();
        let s = mgr.stats();
        assert_eq!(s.sweeps, 1);
        assert!(s.pages_evicted > 0);
        assert!(s.bytes_released > 0);
    }
}
