//! LLAMA: a cache/storage subsystem for the Bw-tree
//! (Levandoski, Lomet, Sengupta — PVLDB 2013).
//!
//! Deuteronomy's data component layers the Bw-tree (`dcs-bwtree`) on LLAMA,
//! which owns everything below the logical-page interface:
//!
//! * **Log-structured store** ([`LogStructuredStore`]) — implements the
//!   tree's [`dcs_bwtree::PageStore`] trait over the simulated flash device.
//!   Page images are accumulated into large flush buffers and written with a
//!   *single* device I/O per buffer (§6.1 of the cost/performance paper:
//!   "LLAMA writes very large buffers containing a large number of pages to
//!   secondary storage in a single write"). Pages are variable-size — only
//!   the bytes a page actually uses are written — and a page whose base is
//!   already stored flushes only its delta updates (Figure 5).
//! * **Stable tokens, relocatable bytes** — the store hands out logical
//!   tokens (LSNs); the physical location of each page part lives in a
//!   private table, so garbage collection can relocate parts and trim flash
//!   segments without invalidating tokens held by the tree.
//! * **Garbage collection** ([`LogStructuredStore::gc_once`]) — picks the
//!   segment with the lowest live fraction, relocates its live parts to the
//!   log tail, and trims it. The live-fraction threshold is the
//!   load-dependent trade-off §6.1 discusses.
//! * **Cache manager** ([`CacheManager`]) — the policy engine that decides
//!   *which* pages stay in DRAM. It supports plain LRU and the paper's
//!   cost-model policy: evict a page once its access interval exceeds the
//!   breakeven `Ti` (§4.2, ≈45 s for the paper's hardware), optionally
//!   keeping recent deltas in memory as a record cache (§6.3).
//! * **Recovery** ([`recover`]) — rescans the log, rebuilds the part tables,
//!   and reconstructs a tree from the newest durable state of every page.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use dcs_bwtree::{BwTree, BwTreeConfig};
//! use dcs_flashsim::{DeviceConfig, FlashDevice};
//! use dcs_llama::{LogStructuredStore, LssConfig};
//!
//! let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
//! let store = Arc::new(LogStructuredStore::new(device, LssConfig::default()));
//! let tree = BwTree::with_store(BwTreeConfig::default(), store.clone());
//! tree.put(bytes::Bytes::from("k"), bytes::Bytes::from("v"));
//! let leaf = tree.pages().into_iter().find(|p| p.is_leaf).unwrap();
//! tree.evict_page(leaf.pid).unwrap();
//! assert_eq!(tree.get(b"k"), Some(bytes::Bytes::from("v")));
//! ```

mod cache;
mod codec;
mod lss;
mod recover;
mod sync;

pub use cache::{CacheManager, CacheManagerConfig, CacheStats, EvictionPolicy};
pub use codec::{compress, decompress, Codec, CodecError};
pub use lss::{
    CompletedFetch, FetchSubmit, LogStructuredStore, LssAuditReport, LssConfig, LssStats,
};
pub use recover::{recover, RecoveredState};
