//! Page-payload compression (§7.2 of the cost/performance paper).
//!
//! Facebook's RocksDB deployment compresses cold data, trading processor
//! execution cost for storage cost. To exercise the same trade-off on this
//! substrate, the log-structured store can run every page payload through
//! this from-scratch LZSS codec: the compression/decompression CPU cost is
//! *really incurred* (measurable in the Figure 8 harness) and the storage
//! savings are really realized on the simulated device.

/// Compression choices for stored page payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Codec {
    /// Store payloads verbatim.
    #[default]
    None,
    /// LZSS with a 4 KiB window: byte-oriented, dependency-free, and fast
    /// enough to model the paper's "CSS operation" CPU overhead.
    Lzss,
}

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 4;
// Length travels in 4 bits as `len - MIN_MATCH`.
const MAX_MATCH: usize = 15 + MIN_MATCH;

/// Compress `input`. Output framing: a `u32` raw length, then token groups
/// (flag byte + 8 items; literal = 1 byte, match = 2 bytes of
/// offset/length).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    // Chained hash table over 3-byte prefixes for match finding.
    let mut head = vec![usize::MAX; 1 << 12];
    let mut prev = vec![usize::MAX; input.len().max(1)];
    let hash = |b: &[u8]| -> usize {
        ((b[0] as usize) << 4 ^ (b[1] as usize) << 2 ^ b[2] as usize) & 0xFFF
    };

    let mut i = 0usize;
    let mut flags_pos = out.len();
    let mut flags = 0u8;
    let mut nitems = 0u8;
    out.push(0); // placeholder flag byte

    macro_rules! finish_group {
        () => {
            out[flags_pos] = flags;
            flags = 0;
            nitems = 0;
            flags_pos = out.len();
            out.push(0);
        };
    }

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash(&input[i..]);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < 16 {
                let max = (input.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                }
                cand = prev[cand];
                chain += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            // Match item: 12-bit offset, 4+ length.
            flags |= 1 << nitems;
            let encoded = ((best_off as u16 - 1) << 4) | (best_len - MIN_MATCH) as u16;
            out.extend_from_slice(&encoded.to_le_bytes());
            // Insert hash entries for skipped positions (cheap variant:
            // skip them; compression ratio suffers slightly).
            i += best_len;
        } else {
            out.push(input[i]);
            i += 1;
        }
        nitems += 1;
        if nitems == 8 {
            finish_group!();
        }
    }
    out[flags_pos] = flags;
    if nitems == 0 {
        // Trailing placeholder byte is unused; drop it.
        out.truncate(out.len() - 1);
    }
    out
}

/// Errors from [`decompress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Input too short or otherwise malformed.
    Corrupt,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt compressed payload")
    }
}

impl std::error::Error for CodecError {}

/// Decompress the output of [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, CodecError> {
    if input.len() < 4 {
        return Err(CodecError::Corrupt);
    }
    let raw_len = u32::from_le_bytes(input[..4].try_into().expect("4 bytes")) as usize;
    let mut out = Vec::with_capacity(raw_len);
    let mut i = 4usize;
    while out.len() < raw_len {
        if i >= input.len() {
            return Err(CodecError::Corrupt);
        }
        let flags = input[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= raw_len {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 2 > input.len() {
                    return Err(CodecError::Corrupt);
                }
                let encoded = u16::from_le_bytes(input[i..i + 2].try_into().expect("2 bytes"));
                i += 2;
                let off = (encoded >> 4) as usize + 1;
                let len = (encoded & 0xF) as usize + MIN_MATCH;
                if off > out.len() {
                    return Err(CodecError::Corrupt);
                }
                let start = out.len() - off;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            } else {
                if i >= input.len() {
                    return Err(CodecError::Corrupt);
                }
                out.push(input[i]);
                i += 1;
            }
        }
    }
    out.truncate(raw_len);
    Ok(out)
}

impl Codec {
    /// Encode a payload under this codec.
    pub fn encode(&self, raw: &[u8]) -> Vec<u8> {
        match self {
            Codec::None => raw.to_vec(),
            Codec::Lzss => compress(raw),
        }
    }

    /// Decode a stored payload.
    pub fn decode(&self, stored: &[u8]) -> Result<Vec<u8>, CodecError> {
        match self {
            Codec::None => Ok(stored.to_vec()),
            Codec::Lzss => decompress(stored),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        for input in [
            &b""[..],
            b"a",
            b"hello world",
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
            b"abcabcabcabcabcabcabcabcabcabc",
        ] {
            let c = compress(input);
            assert_eq!(decompress(&c).unwrap(), input, "roundtrip {input:?}");
        }
    }

    #[test]
    fn roundtrip_structured_page_like_data() {
        // Page images are full of repeated key prefixes: the codec should
        // both roundtrip and actually shrink them.
        let mut data = Vec::new();
        for i in 0..200u32 {
            data.extend_from_slice(format!("user:{i:08}=profile-record-{i};").as_bytes());
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
        assert!(
            c.len() < data.len() / 2,
            "ratio {} / {}",
            c.len(),
            data.len()
        );
    }

    #[test]
    fn roundtrip_random_data() {
        // Incompressible input must still roundtrip (may expand slightly).
        let mut x = 0x12345u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_input_detected() {
        assert_eq!(decompress(b""), Err(CodecError::Corrupt));
        assert_eq!(decompress(&[10, 0, 0, 0, 0xFF]), Err(CodecError::Corrupt));
        let good = compress(b"some reasonable input data here");
        assert!(decompress(&good[..good.len() - 3]).is_err());
    }

    #[test]
    fn codec_none_is_identity() {
        let c = Codec::None;
        assert_eq!(c.encode(b"xyz"), b"xyz");
        assert_eq!(c.decode(b"xyz").unwrap(), b"xyz");
    }

    #[test]
    fn long_runs_compress_well() {
        let data = vec![7u8; 100_000];
        let c = compress(&data);
        // Max match length is 19 bytes, so ~2.1 bytes per 19 ≈ 9:1 ceiling.
        assert!(c.len() < data.len() / 8, "{} bytes", c.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }
}
