//! Workload specifications and the operation generator.

use crate::dist::{KeyDist, KeySampler};
use crate::keys;
use crate::mix::{OpKind, OpMix, Operation};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A complete, declarative description of a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of records loaded before the run.
    pub record_count: u64,
    /// Key-access distribution.
    pub key_dist: KeyDist,
    /// Operation mix.
    pub mix: OpMix,
    /// Value payload size in bytes.
    pub value_len: usize,
    /// Seed for all randomness in the run.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A read-only uniform spec, the baseline configuration of the paper's
    /// ROPS measurement.
    pub fn read_only_uniform(record_count: u64, value_len: usize, seed: u64) -> Self {
        WorkloadSpec {
            record_count,
            key_dist: KeyDist::Uniform,
            mix: OpMix::read_only(),
            value_len,
            seed,
        }
    }

    /// The YCSB core workloads over a zipfian(0.99) key distribution.
    ///
    /// A: 50/50 read/update · B: 95/5 read/update · C: read-only ·
    /// D: 95/5 read/insert over the *latest* distribution ·
    /// E: 95/5 scan(100)/insert · F: 50/50 read/read-modify-write.
    pub fn ycsb(workload: char, record_count: u64, value_len: usize, seed: u64) -> Self {
        use crate::mix::OpKind;
        let (key_dist, mix) = match workload.to_ascii_lowercase() {
            'a' => (KeyDist::zipfian(0.99), OpMix::ycsb_a()),
            'b' => (KeyDist::zipfian(0.99), OpMix::ycsb_b()),
            'c' => (KeyDist::zipfian(0.99), OpMix::read_only()),
            'd' => (
                KeyDist::Latest { theta: 0.99 },
                OpMix::new(vec![(OpKind::Read, 0.95), (OpKind::Insert, 0.05)]),
            ),
            'e' => (
                KeyDist::zipfian(0.99),
                OpMix::new(vec![
                    (OpKind::Scan { limit: 100 }, 0.95),
                    (OpKind::Insert, 0.05),
                ]),
            ),
            'f' => (
                KeyDist::zipfian(0.99),
                OpMix::new(vec![(OpKind::Read, 0.5), (OpKind::ReadModifyWrite, 0.5)]),
            ),
            other => panic!("unknown YCSB workload '{other}' (a-f)"),
        };
        WorkloadSpec {
            record_count,
            key_dist,
            mix,
            value_len,
            seed,
        }
    }

    /// Create the stateful generator.
    pub fn generator(&self) -> OpGenerator {
        OpGenerator {
            sampler: self.key_dist.sampler(self.record_count, self.seed),
            mix: self.mix.clone(),
            value_len: self.value_len,
            rng: SmallRng::seed_from_u64(self.seed ^ 0x5DEE_CE66),
            next_insert_id: self.record_count,
            versions_issued: 0,
        }
    }

    /// Iterate over the initial load set: `(key, value)` pairs for ids
    /// `0..record_count` at version 0.
    pub fn load_set(&self) -> impl Iterator<Item = (Vec<u8>, Vec<u8>)> + '_ {
        let len = self.value_len;
        (0..self.record_count)
            .map(move |id| (keys::encode(id).to_vec(), keys::value_for(id, 0, len)))
    }
}

/// Stateful operation stream for a [`WorkloadSpec`].
#[derive(Debug, Clone)]
pub struct OpGenerator {
    sampler: KeySampler,
    mix: OpMix,
    value_len: usize,
    rng: SmallRng,
    next_insert_id: u64,
    versions_issued: u32,
}

impl OpGenerator {
    /// Produce the next operation.
    pub fn next_op(&mut self) -> Operation {
        let kind = self.mix.pick(self.rng.gen());
        match kind {
            OpKind::Insert => {
                let id = self.next_insert_id;
                self.next_insert_id += 1;
                self.sampler.grow(self.next_insert_id);
                self.versions_issued += 1;
                Operation {
                    kind,
                    key_id: id,
                    value: keys::value_for(id, 0, self.value_len),
                }
            }
            OpKind::Update | OpKind::BlindUpdate | OpKind::ReadModifyWrite => {
                let id = self.sampler.next_key();
                self.versions_issued += 1;
                Operation {
                    kind,
                    key_id: id,
                    value: keys::value_for(id, self.versions_issued, self.value_len),
                }
            }
            OpKind::Read | OpKind::Scan { .. } => Operation {
                kind,
                key_id: self.sampler.next_key(),
                value: Vec::new(),
            },
        }
    }

    /// The current key-space size (grows with inserts).
    pub fn key_space(&self) -> u64 {
        self.sampler.key_space()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_set_is_complete_and_versioned() {
        let spec = WorkloadSpec::read_only_uniform(100, 64, 1);
        let pairs: Vec<_> = spec.load_set().collect();
        assert_eq!(pairs.len(), 100);
        for (i, (k, v)) in pairs.iter().enumerate() {
            assert_eq!(keys::decode(k), Some(i as u64));
            assert_eq!(keys::parse_value(v), Some((i as u64, 0)));
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let spec = WorkloadSpec {
            record_count: 1000,
            key_dist: KeyDist::zipfian(0.9),
            mix: OpMix::ycsb_a(),
            value_len: 32,
            seed: 77,
        };
        let mut a = spec.generator();
        let mut b = spec.generator();
        for _ in 0..500 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn inserts_extend_key_space() {
        let spec = WorkloadSpec {
            record_count: 10,
            key_dist: KeyDist::Uniform,
            mix: OpMix::new(vec![(OpKind::Insert, 1.0)]),
            value_len: 16,
            seed: 3,
        };
        let mut g = spec.generator();
        for expect in 10..20 {
            let op = g.next_op();
            assert_eq!(op.key_id, expect);
        }
        assert_eq!(g.key_space(), 20);
    }

    #[test]
    fn reads_have_empty_values() {
        let spec = WorkloadSpec::read_only_uniform(10, 64, 1);
        let mut g = spec.generator();
        for _ in 0..100 {
            let op = g.next_op();
            assert_eq!(op.kind, OpKind::Read);
            assert!(op.value.is_empty());
        }
    }

    #[test]
    fn updates_carry_fresh_versions() {
        let spec = WorkloadSpec {
            record_count: 5,
            key_dist: KeyDist::Uniform,
            mix: OpMix::new(vec![(OpKind::Update, 1.0)]),
            value_len: 20,
            seed: 8,
        };
        let mut g = spec.generator();
        let mut versions = std::collections::HashSet::new();
        for _ in 0..50 {
            let op = g.next_op();
            let (_, ver) = keys::parse_value(&op.value).unwrap();
            assert!(versions.insert(ver), "version {ver} reused");
        }
    }
}
