//! Key-access distributions.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit hash, used to scramble Zipfian ranks across the key space.
pub(crate) fn fnv1a(mut x: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for _ in 0..8 {
        h ^= x & 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
        x >>= 8;
    }
    h
}

/// Declarative description of a key-access distribution.
///
/// Turn into a stateful sampler with [`KeyDist::sampler`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian over key *ranks*: key 0 is the hottest, key 1 next, …
    /// `theta` is the YCSB skew constant (0.99 is the YCSB default).
    Zipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// Zipfian ranks scrambled over the key space by a hash, so hot keys are
    /// spread across pages — the YCSB "scrambled zipfian".
    ScrambledZipfian {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// Skewed toward the most recently inserted keys (YCSB "latest").
    Latest {
        /// Skew parameter in (0, 1).
        theta: f64,
    },
    /// A fraction of accesses goes to a fraction of keys:
    /// `hot_fraction` of operations target the first
    /// `hot_keys_fraction` of the key space.
    HotSpot {
        /// Fraction of the key space that is hot (0, 1].
        hot_keys_fraction: f64,
        /// Fraction of operations that touch the hot set [0, 1].
        hot_ops_fraction: f64,
    },
}

impl KeyDist {
    /// Zipfian with the given skew.
    pub fn zipfian(theta: f64) -> Self {
        KeyDist::Zipfian { theta }
    }

    /// Scrambled Zipfian with the given skew.
    pub fn scrambled_zipfian(theta: f64) -> Self {
        KeyDist::ScrambledZipfian { theta }
    }

    /// Build a stateful sampler over `n` keys.
    ///
    /// # Panics
    /// Panics if `n == 0` or a skew/fraction parameter is out of range.
    pub fn sampler(self, n: u64, seed: u64) -> KeySampler {
        assert!(n > 0, "key space must be non-empty");
        let rng = SmallRng::seed_from_u64(seed);
        let inner = match self {
            KeyDist::Uniform => SamplerKind::Uniform,
            KeyDist::Zipfian { theta } => SamplerKind::Zipf {
                z: ZipfState::new(n, theta),
                scrambled: false,
            },
            KeyDist::ScrambledZipfian { theta } => SamplerKind::Zipf {
                z: ZipfState::new(n, theta),
                scrambled: true,
            },
            KeyDist::Latest { theta } => SamplerKind::Latest {
                z: ZipfState::new(n, theta),
            },
            KeyDist::HotSpot {
                hot_keys_fraction,
                hot_ops_fraction,
            } => {
                assert!(
                    hot_keys_fraction > 0.0 && hot_keys_fraction <= 1.0,
                    "hot_keys_fraction out of range"
                );
                assert!(
                    (0.0..=1.0).contains(&hot_ops_fraction),
                    "hot_ops_fraction out of range"
                );
                SamplerKind::HotSpot {
                    hot_keys: ((n as f64 * hot_keys_fraction) as u64).max(1),
                    hot_ops: hot_ops_fraction,
                }
            }
        };
        KeySampler { n, rng, inner }
    }
}

/// State for the YCSB constant-time Zipfian generator
/// (Gray et al., "Quickly Generating Billion-Record Synthetic Databases").
#[derive(Debug, Clone)]
struct ZipfState {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfState {
    fn new(n: u64, theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian theta must be in (0,1), got {theta}"
        );
        let zetan = Self::zeta(n, theta);
        Self::from_zetan(n, theta, zetan)
    }

    fn from_zetan(n: u64, theta: f64, zetan: f64) -> Self {
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfState {
            n,
            theta,
            alpha,
            zetan,
            eta,
        }
    }

    /// Grow the key space incrementally: extends the zeta sum with only the
    /// new terms (YCSB's incremental-zeta trick — recomputing from scratch
    /// would make every insert O(n)).
    fn grow_to(&mut self, new_n: u64) {
        debug_assert!(new_n > self.n);
        let mut zetan = self.zetan;
        for i in self.n + 1..=new_n {
            zetan += 1.0 / (i as f64).powf(self.theta);
        }
        *self = Self::from_zetan(new_n, self.theta, zetan);
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct summation. For very large n this is the slow part of
        // construction; sampling itself is O(1). For the key-space sizes in
        // this workspace (≤ 10^8) construction finishes in well under a
        // second, so we keep it simple rather than caching partial zetas.
        let mut sum = 0.0;
        for i in 1..=n {
            sum += 1.0 / (i as f64).powf(theta);
        }
        sum
    }

    /// Sample a rank in `[0, n)`; rank 0 is the most popular.
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Uniform,
    Zipf { z: ZipfState, scrambled: bool },
    Latest { z: ZipfState },
    HotSpot { hot_keys: u64, hot_ops: f64 },
}

/// A stateful, seeded sampler of key ids in `[0, n)`.
#[derive(Debug, Clone)]
pub struct KeySampler {
    n: u64,
    rng: SmallRng,
    inner: SamplerKind,
}

impl KeySampler {
    /// Sample the next key id.
    pub fn next_key(&mut self) -> u64 {
        match &self.inner {
            SamplerKind::Uniform => self.rng.gen_range(0..self.n),
            SamplerKind::Zipf { z, scrambled } => {
                let rank = z.sample(&mut self.rng);
                if *scrambled {
                    fnv1a(rank) % self.n
                } else {
                    rank
                }
            }
            SamplerKind::Latest { z } => {
                // Rank 0 = newest key = id n-1.
                let rank = z.sample(&mut self.rng);
                self.n - 1 - rank
            }
            SamplerKind::HotSpot { hot_keys, hot_ops } => {
                if self.rng.gen::<f64>() < *hot_ops {
                    self.rng.gen_range(0..*hot_keys)
                } else if *hot_keys < self.n {
                    self.rng.gen_range(*hot_keys..self.n)
                } else {
                    self.rng.gen_range(0..self.n)
                }
            }
        }
    }

    /// The key-space size.
    pub fn key_space(&self) -> u64 {
        self.n
    }

    /// Grow the key space (after inserts). For `Latest`, newly inserted keys
    /// immediately become the hottest.
    pub fn grow(&mut self, new_n: u64) {
        if new_n <= self.n {
            return;
        }
        self.n = new_n;
        match &mut self.inner {
            SamplerKind::Zipf { z, .. } | SamplerKind::Latest { z } => {
                z.grow_to(new_n);
            }
            SamplerKind::HotSpot { .. } | SamplerKind::Uniform => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(dist: KeyDist, n: u64, samples: usize) -> Vec<u64> {
        let mut s = dist.sampler(n, 7);
        let mut h = vec![0u64; n as usize];
        for _ in 0..samples {
            h[s.next_key() as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_covers_space_evenly() {
        let h = histogram(KeyDist::Uniform, 16, 160_000);
        for &count in &h {
            let dev = (count as f64 - 10_000.0).abs() / 10_000.0;
            assert!(dev < 0.1, "uniform bucket off by {dev}");
        }
    }

    #[test]
    fn zipfian_is_skewed_and_ordered() {
        let h = histogram(KeyDist::zipfian(0.99), 100, 200_000);
        assert!(h[0] > h[10], "rank 0 should beat rank 10");
        assert!(h[0] > h[50]);
        // YCSB zipf 0.99 over 100 keys: rank 0 gets roughly 1/zeta ≈ 19%.
        let frac0 = h[0] as f64 / 200_000.0;
        assert!((0.10..0.35).contains(&frac0), "rank-0 share {frac0}");
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_key() {
        let h = histogram(KeyDist::scrambled_zipfian(0.99), 100, 200_000);
        // The hottest key exists but is not necessarily key 0.
        let max = h.iter().copied().max().unwrap();
        let frac = max as f64 / 200_000.0;
        assert!(frac > 0.05, "some key should be hot, max share {frac}");
    }

    #[test]
    fn latest_prefers_high_ids() {
        let h = histogram(KeyDist::Latest { theta: 0.99 }, 100, 100_000);
        assert!(h[99] > h[0], "latest should prefer newest key");
    }

    #[test]
    fn hotspot_respects_fractions() {
        let dist = KeyDist::HotSpot {
            hot_keys_fraction: 0.1,
            hot_ops_fraction: 0.9,
        };
        let h = histogram(dist, 100, 100_000);
        let hot: u64 = h[..10].iter().sum();
        let frac = hot as f64 / 100_000.0;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn samplers_are_deterministic() {
        let mut a = KeyDist::zipfian(0.9).sampler(1000, 5);
        let mut b = KeyDist::zipfian(0.9).sampler(1000, 5);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
    }

    #[test]
    fn keys_stay_in_range() {
        for dist in [
            KeyDist::Uniform,
            KeyDist::zipfian(0.5),
            KeyDist::scrambled_zipfian(0.99),
            KeyDist::Latest { theta: 0.8 },
            KeyDist::HotSpot {
                hot_keys_fraction: 0.2,
                hot_ops_fraction: 0.8,
            },
        ] {
            let mut s = dist.sampler(37, 11);
            for _ in 0..10_000 {
                assert!(s.next_key() < 37);
            }
        }
    }

    #[test]
    fn grow_expands_range() {
        let mut s = KeyDist::Latest { theta: 0.99 }.sampler(10, 3);
        s.grow(20);
        assert_eq!(s.key_space(), 20);
        let mut saw_high = false;
        for _ in 0..1000 {
            if s.next_key() >= 10 {
                saw_high = true;
            }
        }
        assert!(saw_high, "grown space never sampled");
    }

    #[test]
    #[should_panic(expected = "key space")]
    fn empty_key_space_panics() {
        let _ = KeyDist::Uniform.sampler(0, 1);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_panics() {
        let _ = KeyDist::zipfian(1.5).sampler(10, 1);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(0), fnv1a(0));
        assert_ne!(fnv1a(1), fnv1a(2));
    }
}
