//! Workload generation for data-store experiments.
//!
//! The paper's experiments are read/update mixes over keyed records where
//! the *skew* of the key-access distribution determines how hot each page
//! is — and therefore, via the cost model, whether the page belongs in DRAM
//! or on flash. This crate supplies:
//!
//! * **Key distributions** ([`KeyDist`]): uniform, Zipfian (the YCSB
//!   constant-time generator of Gray et al.), scrambled Zipfian, latest, and
//!   hotspot.
//! * **Operation mixes** ([`OpMix`]): weighted blends of reads, updates,
//!   inserts, blind updates, read-modify-writes and scans, matching the
//!   YCSB workload vocabulary the systems community uses.
//! * **Arrival processes** ([`Arrivals`]): fixed-rate and Poisson
//!   inter-arrival streams in virtual nanoseconds, used to drive the
//!   access-interval (`Ti`) experiments of the 5-minute-rule analysis.
//! * **Key codecs** ([`keys`]): order-preserving fixed-width encodings of
//!   `u64` key ids.
//!
//! All generators are deterministic given a seed.
//!
//! ```
//! use dcs_workload::{KeyDist, OpMix, WorkloadSpec, OpKind};
//!
//! let spec = WorkloadSpec {
//!     record_count: 10_000,
//!     key_dist: KeyDist::zipfian(0.99),
//!     mix: OpMix::ycsb_b(), // 95% reads, 5% updates
//!     value_len: 100,
//!     seed: 42,
//! };
//! let mut gen = spec.generator();
//! let op = gen.next_op();
//! assert!(matches!(op.kind, OpKind::Read | OpKind::Update));
//! assert!(op.key_id < 10_000);
//! ```

mod arrivals;
mod dist;
pub mod keys;
mod mix;
mod runner;
mod spec;

pub use arrivals::Arrivals;
pub use dist::{KeyDist, KeySampler};
pub use mix::{OpKind, OpMix, Operation};
pub use runner::{AsyncGet, AsyncKvStore, CompletedGet, KvStore, RunCounts, Runner, StoreFailure};
pub use spec::{OpGenerator, WorkloadSpec};
