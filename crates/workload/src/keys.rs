//! Order-preserving key encodings.
//!
//! Experiments address records by dense `u64` ids; the stores index byte
//! strings. The codec here is big-endian with a constant prefix, so encoded
//! order equals numeric order and keys have the fixed width typical of YCSB
//! runs.

/// Length of an encoded key in bytes.
pub const KEY_LEN: usize = 12;

const PREFIX: &[u8; 4] = b"usr:";

/// Encode a key id as a fixed-width, order-preserving byte key.
pub fn encode(id: u64) -> [u8; KEY_LEN] {
    let mut out = [0u8; KEY_LEN];
    out[..4].copy_from_slice(PREFIX);
    out[4..].copy_from_slice(&id.to_be_bytes());
    out
}

/// Decode a key produced by [`encode`]. Returns `None` for foreign keys.
pub fn decode(key: &[u8]) -> Option<u64> {
    if key.len() != KEY_LEN || &key[..4] != PREFIX {
        return None;
    }
    let mut be = [0u8; 8];
    be.copy_from_slice(&key[4..]);
    Some(u64::from_be_bytes(be))
}

/// Generate a deterministic value payload of `len` bytes for a key id.
/// The first bytes identify the key and a version, so tests can verify that
/// reads return the write they expect.
pub fn value_for(id: u64, version: u32, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    v.extend_from_slice(&id.to_le_bytes());
    v.extend_from_slice(&version.to_le_bytes());
    while v.len() < len {
        let b = (v.len() as u64).wrapping_mul(id ^ 0xA5A5).to_le_bytes()[0];
        v.push(b);
    }
    v.truncate(len.max(12));
    v
}

/// Evenly-spaced split keys partitioning `record_count` encoded ids into
/// `shards` contiguous ranges (`shards - 1` splits, for a serving layer's
/// range partitioner). Inserts beyond `record_count` land in the last
/// shard, matching YCSB's append-at-the-top insert pattern.
pub fn range_splits(record_count: u64, shards: usize) -> Vec<Vec<u8>> {
    assert!(shards > 0, "need at least one shard");
    (1..shards as u64)
        .map(|i| encode(record_count * i / shards as u64).to_vec())
        .collect()
}

/// Extract `(id, version)` from a payload made by [`value_for`].
pub fn parse_value(v: &[u8]) -> Option<(u64, u32)> {
    if v.len() < 12 {
        return None;
    }
    let mut id = [0u8; 8];
    id.copy_from_slice(&v[..8]);
    let mut ver = [0u8; 4];
    ver.copy_from_slice(&v[8..12]);
    Some((u64::from_le_bytes(id), u32::from_le_bytes(ver)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for id in [0u64, 1, 42, u64::MAX] {
            assert_eq!(decode(&encode(id)), Some(id));
        }
    }

    #[test]
    fn encoding_preserves_order() {
        let ids = [0u64, 1, 255, 256, 65_535, 1 << 32, u64::MAX];
        for w in ids.windows(2) {
            assert!(encode(w[0]) < encode(w[1]), "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn foreign_keys_rejected() {
        assert_eq!(decode(b"short"), None);
        assert_eq!(decode(b"xxxx12345678"), None);
    }

    #[test]
    fn value_roundtrip() {
        let v = value_for(99, 7, 100);
        assert_eq!(v.len(), 100);
        assert_eq!(parse_value(&v), Some((99, 7)));
    }

    #[test]
    fn value_min_length() {
        let v = value_for(5, 1, 4);
        assert!(v.len() >= 12);
        assert_eq!(parse_value(&v), Some((5, 1)));
    }

    #[test]
    fn values_differ_by_version() {
        assert_ne!(value_for(1, 0, 50), value_for(1, 1, 50));
    }

    #[test]
    fn range_splits_partition_evenly() {
        let splits = range_splits(1000, 4);
        assert_eq!(splits.len(), 3);
        assert_eq!(
            splits,
            vec![
                encode(250).to_vec(),
                encode(500).to_vec(),
                encode(750).to_vec()
            ]
        );
        assert!(splits.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(range_splits(1000, 1), Vec::<Vec<u8>>::new());
    }
}
