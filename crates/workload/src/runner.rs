//! Driving any key-value store through a workload.
//!
//! [`KvStore`] is the minimal surface the drivers need; every store in
//! this workspace implements it (see `dcs-core::backends`). [`Runner`]
//! loads and executes a [`WorkloadSpec`] against it, returning per-kind
//! counts so harnesses can report throughput and mix compliance.

use crate::keys;
use crate::mix::OpKind;
use crate::spec::WorkloadSpec;

/// Errors surfaced by a store under workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreFailure(pub String);

impl std::fmt::Display for StoreFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "store failure: {}", self.0)
    }
}

impl std::error::Error for StoreFailure {}

/// The operations a workload can drive.
pub trait KvStore {
    /// Point read.
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure>;
    /// Upsert.
    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure>;
    /// Delete.
    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure>;
    /// Range scan: up to `limit` records from `start`; returns how many
    /// were produced.
    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure>;
    /// A blind update, if the store distinguishes one (default: plain put).
    fn kv_blind_update(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.kv_put(key, value)
    }
    /// Enumerate up to `limit` records of `[start, end)` in ascending key
    /// order (`end = None` means unbounded), invoking `visit` per record
    /// and returning how many were visited. Unlike [`KvStore::kv_scan`]
    /// this hands back the data, which range migration needs to copy a
    /// key range between shards. Stores that cannot enumerate (e.g. a
    /// remote client) keep the default refusal.
    fn kv_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<usize, StoreFailure> {
        let _ = (start, end, limit, visit);
        Err(StoreFailure("range enumeration not supported".to_string()))
    }
}

/// Outcome of a non-blocking point read submitted to an [`AsyncKvStore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncGet {
    /// Served from memory (a cache hit, or a definitive miss that needed no
    /// I/O): the result is available immediately.
    Ready(Option<Vec<u8>>),
    /// A secondary-storage fetch is in flight; the token identifies this
    /// miss in later [`AsyncKvStore::kv_poll`] completions.
    Pending(u64),
}

/// A completed miss, reaped by [`AsyncKvStore::kv_poll`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedGet {
    /// The token [`AsyncKvStore::kv_get_submit`] returned.
    pub token: u64,
    /// The read's final outcome.
    pub result: Result<Option<Vec<u8>>, StoreFailure>,
}

/// Non-blocking point reads over a [`KvStore`]: misses are *submitted* and
/// later *polled*, SPDK-style, so a caller (e.g. a server shard) keeps
/// serving hits while the device works on the misses.
pub trait AsyncKvStore: KvStore {
    /// Begin a point read. Hits (and I/O-free misses) resolve immediately as
    /// [`AsyncGet::Ready`]; cache misses return [`AsyncGet::Pending`] with a
    /// token and proceed in the background.
    fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure>;
    /// Reap every completed miss into `out`, returning how many were reaped.
    /// Non-blocking.
    fn kv_poll(&self, out: &mut Vec<CompletedGet>) -> usize;
    /// Misses currently in flight.
    fn kv_inflight(&self) -> usize;
}

/// Per-kind operation counts from a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunCounts {
    /// Reads issued.
    pub reads: u64,
    /// Reads that found a value.
    pub read_hits: u64,
    /// Updates issued.
    pub updates: u64,
    /// Inserts issued.
    pub inserts: u64,
    /// Blind updates issued.
    pub blind_updates: u64,
    /// Read-modify-writes issued.
    pub rmws: u64,
    /// Scans issued.
    pub scans: u64,
    /// Records produced by scans.
    pub scanned_records: u64,
}

impl RunCounts {
    /// Total operations.
    pub fn total(&self) -> u64 {
        self.reads + self.updates + self.inserts + self.blind_updates + self.rmws + self.scans
    }
}

/// Executes a [`WorkloadSpec`] against a [`KvStore`].
pub struct Runner {
    spec: WorkloadSpec,
}

impl Runner {
    /// A runner for `spec`.
    pub fn new(spec: WorkloadSpec) -> Self {
        Runner { spec }
    }

    /// The spec being driven.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Load the initial records. Returns records loaded.
    pub fn load<S: KvStore>(&self, store: &S) -> Result<u64, StoreFailure> {
        let mut n = 0;
        for (k, v) in self.spec.load_set() {
            store.kv_put(k, v)?;
            n += 1;
        }
        Ok(n)
    }

    /// Execute `ops` operations.
    pub fn run<S: KvStore>(&self, store: &S, ops: u64) -> Result<RunCounts, StoreFailure> {
        let mut gen = self.spec.generator();
        let mut counts = RunCounts::default();
        for _ in 0..ops {
            let op = gen.next_op();
            let key = keys::encode(op.key_id).to_vec();
            match op.kind {
                OpKind::Read => {
                    counts.reads += 1;
                    if store.kv_get(&key)?.is_some() {
                        counts.read_hits += 1;
                    }
                }
                OpKind::Update => {
                    counts.updates += 1;
                    store.kv_put(key, op.value)?;
                }
                OpKind::Insert => {
                    counts.inserts += 1;
                    store.kv_put(key, op.value)?;
                }
                OpKind::BlindUpdate => {
                    counts.blind_updates += 1;
                    store.kv_blind_update(key, op.value)?;
                }
                OpKind::ReadModifyWrite => {
                    counts.rmws += 1;
                    let mut v = store.kv_get(&key)?.unwrap_or_default();
                    v.extend_from_slice(&op.value);
                    v.truncate(self.spec.value_len.max(12));
                    store.kv_put(key, v)?;
                }
                OpKind::Scan { limit } => {
                    counts.scans += 1;
                    counts.scanned_records += store.kv_scan(&key, limit as usize)? as u64;
                }
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::KeyDist;
    use crate::mix::OpMix;
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// A BTreeMap reference store.
    #[derive(Default)]
    struct MapStore(Mutex<BTreeMap<Vec<u8>, Vec<u8>>>);

    impl KvStore for MapStore {
        fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
            Ok(self.0.lock().unwrap().get(key).cloned())
        }
        fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().insert(key, value);
            Ok(())
        }
        fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
            self.0.lock().unwrap().remove(&key);
            Ok(())
        }
        fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
            Ok(self
                .0
                .lock()
                .unwrap()
                .range(start.to_vec()..)
                .take(limit)
                .count())
        }
    }

    #[test]
    fn load_then_read_only_run_hits_everything() {
        let spec = WorkloadSpec::read_only_uniform(500, 40, 9);
        let runner = Runner::new(spec);
        let store = MapStore::default();
        assert_eq!(runner.load(&store).unwrap(), 500);
        let counts = runner.run(&store, 2_000).unwrap();
        assert_eq!(counts.reads, 2_000);
        assert_eq!(counts.read_hits, 2_000, "loaded keys must all hit");
    }

    #[test]
    fn mixed_run_respects_mix() {
        let spec = WorkloadSpec {
            record_count: 200,
            key_dist: KeyDist::zipfian(0.9),
            mix: OpMix::ycsb_a(),
            value_len: 32,
            seed: 4,
        };
        let runner = Runner::new(spec);
        let store = MapStore::default();
        runner.load(&store).unwrap();
        let counts = runner.run(&store, 10_000).unwrap();
        assert_eq!(counts.total(), 10_000);
        let update_frac = counts.updates as f64 / 10_000.0;
        assert!((update_frac - 0.5).abs() < 0.03, "mix drift: {update_frac}");
    }

    #[test]
    fn scans_and_rmws_execute() {
        let spec = WorkloadSpec {
            record_count: 300,
            key_dist: KeyDist::Uniform,
            mix: OpMix::new(vec![
                (OpKind::Scan { limit: 10 }, 0.5),
                (OpKind::ReadModifyWrite, 0.5),
            ]),
            value_len: 24,
            seed: 5,
        };
        let runner = Runner::new(spec);
        let store = MapStore::default();
        runner.load(&store).unwrap();
        let counts = runner.run(&store, 1_000).unwrap();
        assert!(counts.scans > 300);
        assert!(counts.scanned_records >= counts.scans * 5);
        assert!(counts.rmws > 300);
    }
}
