//! Operation mixes.

use serde::{Deserialize, Serialize};

/// The kinds of operation a workload can issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Point read of an existing key.
    Read,
    /// Full-record overwrite of an existing key (read-free at the store if
    /// the store supports blind updates).
    Update,
    /// Insert of a new key at the top of the id space.
    Insert,
    /// An explicitly blind update: the caller asserts it does not depend on
    /// the prior record state (§6.2 of the paper).
    BlindUpdate,
    /// Read, modify, write back.
    ReadModifyWrite,
    /// Short range scan starting at the key.
    Scan {
        /// Maximum records returned.
        limit: u16,
    },
}

/// A weighted blend of operation kinds.
///
/// Weights are relative; they need not sum to 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    weights: Vec<(OpKind, f64)>,
}

impl OpMix {
    /// Build from `(kind, weight)` pairs.
    ///
    /// # Panics
    /// Panics if all weights are zero/negative or the list is empty.
    pub fn new(weights: Vec<(OpKind, f64)>) -> Self {
        let total: f64 = weights.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "op mix needs positive total weight");
        OpMix { weights }
    }

    /// 100 % reads (YCSB C).
    pub fn read_only() -> Self {
        OpMix::new(vec![(OpKind::Read, 1.0)])
    }

    /// 50 % reads / 50 % updates (YCSB A).
    pub fn ycsb_a() -> Self {
        OpMix::new(vec![(OpKind::Read, 0.5), (OpKind::Update, 0.5)])
    }

    /// 95 % reads / 5 % updates (YCSB B).
    pub fn ycsb_b() -> Self {
        OpMix::new(vec![(OpKind::Read, 0.95), (OpKind::Update, 0.05)])
    }

    /// 100 % updates — the blind-update stress of §6.2.
    pub fn blind_update_only() -> Self {
        OpMix::new(vec![(OpKind::BlindUpdate, 1.0)])
    }

    /// Pick a kind given a uniform sample in [0,1).
    pub fn pick(&self, u: f64) -> OpKind {
        let total: f64 = self.weights.iter().map(|(_, w)| w.max(0.0)).sum();
        let mut target = u.clamp(0.0, 1.0) * total;
        for &(kind, w) in &self.weights {
            let w = w.max(0.0);
            if target < w {
                return kind;
            }
            target -= w;
        }
        self.weights.last().expect("non-empty").0
    }

    /// The fraction of operations that are updates of any flavour.
    pub fn update_fraction(&self) -> f64 {
        let total: f64 = self.weights.iter().map(|(_, w)| w.max(0.0)).sum();
        let upd: f64 = self
            .weights
            .iter()
            .filter(|(k, _)| {
                matches!(
                    k,
                    OpKind::Update | OpKind::Insert | OpKind::BlindUpdate | OpKind::ReadModifyWrite
                )
            })
            .map(|(_, w)| w.max(0.0))
            .sum();
        upd / total
    }
}

/// One generated operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// What to do.
    pub kind: OpKind,
    /// Target key id (for `Insert`, the id of the new record).
    pub key_id: u64,
    /// Value payload for writes (empty for reads/scans).
    pub value: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_is_proportional() {
        let mix = OpMix::ycsb_b();
        let mut reads = 0;
        let n = 100_000;
        for i in 0..n {
            if mix.pick(i as f64 / n as f64) == OpKind::Read {
                reads += 1;
            }
        }
        let frac = reads as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn pick_edges() {
        let mix = OpMix::ycsb_a();
        assert_eq!(mix.pick(0.0), OpKind::Read);
        assert_eq!(mix.pick(0.999_999), OpKind::Update);
        // Out-of-range inputs are clamped, not panicking.
        let _ = mix.pick(-1.0);
        let _ = mix.pick(2.0);
    }

    #[test]
    fn update_fraction_counts_all_writes() {
        let mix = OpMix::new(vec![
            (OpKind::Read, 0.4),
            (OpKind::Update, 0.2),
            (OpKind::BlindUpdate, 0.2),
            (OpKind::Insert, 0.2),
        ]);
        assert!((mix.update_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive total weight")]
    fn zero_weights_panic() {
        let _ = OpMix::new(vec![(OpKind::Read, 0.0)]);
    }

    #[test]
    fn unnormalized_weights_ok() {
        let mix = OpMix::new(vec![(OpKind::Read, 3.0), (OpKind::Update, 1.0)]);
        let reads = (0..1000)
            .filter(|i| mix.pick(*i as f64 / 1000.0) == OpKind::Read)
            .count();
        assert!((reads as f64 / 1000.0 - 0.75).abs() < 0.01);
    }
}
