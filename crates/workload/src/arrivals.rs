//! Arrival processes for access-interval experiments.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates inter-arrival gaps (virtual nanoseconds) at a target rate.
///
/// The 5-minute-rule analysis (§4.2) is about the *interval between
/// accesses* to a page, `Ti = 1/N`. These processes drive the virtual clock
/// between operations so cache managers see realistic access intervals
/// without real waiting.
#[derive(Debug, Clone)]
pub enum Arrivals {
    /// Constant gap of `1/rate` seconds.
    Fixed {
        /// Operations per (virtual) second.
        rate: f64,
    },
    /// Exponential gaps (Poisson process) with mean `1/rate`.
    Poisson {
        /// Operations per (virtual) second.
        rate: f64,
        /// RNG for the exponential draws.
        rng: SmallRng,
    },
}

impl Arrivals {
    /// Fixed-rate arrivals.
    pub fn fixed(rate: f64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        Arrivals::Fixed { rate }
    }

    /// Poisson arrivals.
    pub fn poisson(rate: f64, seed: u64) -> Self {
        assert!(rate > 0.0, "arrival rate must be positive");
        Arrivals::Poisson {
            rate,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next inter-arrival gap in nanoseconds (≥ 1).
    pub fn next_gap(&mut self) -> u64 {
        match self {
            Arrivals::Fixed { rate } => ((1e9 / *rate) as u64).max(1),
            Arrivals::Poisson { rate, rng } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                ((-u.ln() / *rate) * 1e9).max(1.0) as u64
            }
        }
    }

    /// The configured mean rate (ops/sec).
    pub fn rate(&self) -> f64 {
        match self {
            Arrivals::Fixed { rate } => *rate,
            Arrivals::Poisson { rate, .. } => *rate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_gap_is_inverse_rate() {
        let mut a = Arrivals::fixed(1000.0);
        assert_eq!(a.next_gap(), 1_000_000);
        assert_eq!(a.next_gap(), 1_000_000);
    }

    #[test]
    fn poisson_mean_approaches_inverse_rate() {
        let mut a = Arrivals::poisson(100.0, 9);
        let n = 50_000;
        let total: u64 = (0..n).map(|_| a.next_gap()).sum();
        let mean_secs = total as f64 / n as f64 / 1e9;
        assert!((mean_secs - 0.01).abs() < 0.001, "mean {mean_secs}");
    }

    #[test]
    fn gaps_never_zero() {
        let mut a = Arrivals::poisson(1e12, 1);
        for _ in 0..1000 {
            assert!(a.next_gap() >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_panics() {
        let _ = Arrivals::fixed(0.0);
    }
}
