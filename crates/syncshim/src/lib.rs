//! The workspace's **shared** synchronization facade.
//!
//! Several crates (`dcs-llama`, `dcs-lsm`, `dcs-server`, `dcs-flashsim`)
//! route their interleaving-sensitive primitives through a `sync` module so
//! the deterministic checker (`dcs-check`) can replace them under a `check`
//! feature. Those facades used to be copy-pasted per crate, which let
//! instrumentation drift: a primitive added to one shim but not another
//! silently escaped the scheduler. This crate is the single source of truth;
//! the per-crate `sync.rs` modules are now thin re-exports of it.
//!
//! Two lock dialects are exported because the workspace uses both:
//!
//! * [`pl`] — `parking_lot`-shaped (`lock()` returns the guard directly,
//!   never poisons). Used by the storage layers.
//! * [`stdlike`] — `std::sync`-shaped (`lock() -> LockResult<..>`). Used by
//!   the serving layer's mailbox.
//!
//! Atomics come from [`atomic`]; deliberately *monotonic-counter* atomics
//! (stats) should stay on plain `std::sync::atomic` in the owning crate —
//! instrumenting them only inflates the schedule space.
//!
//! Blocking differs across builds: the check build must never park the only
//! runnable OS thread, so wait loops spin cooperatively through
//! [`yield_thread`], each iteration a schedule point.

/// `parking_lot`-shaped locks: `lock()`/`read()`/`write()` return guards
/// directly and never poison.
pub mod pl {
    #[cfg(feature = "check")]
    pub use dcs_check::sync::pl::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

    #[cfg(not(feature = "check"))]
    pub use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
}

/// `std::sync`-shaped mutex: `lock() -> LockResult<..>`. The check flavour
/// never actually poisons, so `.unwrap()` call sites behave identically.
pub mod stdlike {
    #[cfg(feature = "check")]
    pub use dcs_check::sync::{Mutex, MutexGuard};

    #[cfg(not(feature = "check"))]
    pub use std::sync::{Mutex, MutexGuard};
}

/// Atomics with the `std::sync::atomic` API (`Ordering` is always the real
/// `std` enum; the check build upgrades every access to `SeqCst` and
/// inserts a schedule point).
pub mod atomic {
    #[cfg(feature = "check")]
    pub use dcs_check::sync::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

    #[cfg(not(feature = "check"))]
    pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
}

/// Cooperative yield for wait loops.
///
/// In the check build this is a schedule point (the scheduler may run any
/// other virtual thread); in the normal build it is a plain OS yield. Wait
/// loops that would park on a condvar in production code use this so the
/// same source compiles under the single-OS-thread scheduler.
pub fn yield_thread() {
    #[cfg(feature = "check")]
    dcs_check::thread::yield_now();
    #[cfg(not(feature = "check"))]
    std::thread::yield_now();
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};

    #[test]
    fn facade_exports_are_usable() {
        let m = super::pl::Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = super::pl::RwLock::new(5u32);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);

        let s = super::stdlike::Mutex::new(7u32);
        *s.lock().unwrap() += 1;
        assert_eq!(*s.lock().unwrap(), 8);

        let a = AtomicU64::new(0);
        a.fetch_add(3, Ordering::SeqCst);
        assert_eq!(a.load(Ordering::SeqCst), 3);

        super::yield_thread();
    }
}
