//! MassTree: a main-memory key-value store for multicore machines
//! (Mao, Kohler, Morris — EuroSys 2012).
//!
//! MassTree is the paper's main-memory comparator (§5): faster per
//! operation than the Bw-tree (the paper measures `Px ≈ 2.6`) but with a
//! larger memory footprint (`Mx ≈ 2.1`), because it trades space for time —
//! fixed-width fanout-15 nodes, an 8-byte-slice trie that replaces byte-wise
//! key comparison with single integer compares, and everything permanently
//! in DRAM.
//!
//! # Structure (faithful to the paper)
//!
//! * A **trie of B+-trees**: layer *d* indexes bytes `8d..8d+8` of the key
//!   as a big-endian `u64` slice. Keys that agree on a full 8-byte slice
//!   and continue further share a *next-layer* subtree.
//! * **Fanout-15 nodes** with `u64` slice keys in interior nodes; border
//!   (leaf) nodes store per-entry key lengths, an inline suffix for a single
//!   longer key, or a link to the next layer once two keys share a slice.
//! * **Lock-free reads**: readers never block and never take locks.
//!
//! # Substitution note
//!
//! The original uses per-node version counters and permutation words so
//! writers can update nodes in place while readers validate versions. That
//! protocol relies on benign data races that Rust's memory model does not
//! allow. This implementation keeps the read path lock-free with the same
//! asymptotics by making nodes **immutable**: writers clone the ~15-entry
//! node, apply the change, and atomically swap the parent's child slot
//! (epoch-based reclamation frees the old node). Writers to the same parent
//! serialize on a per-node lock; readers are untouched. The fixed-width
//! node arrays are preserved, so the *memory expansion* (`Mx`) behaviour the
//! paper measures is exercised by the same mechanism as the original.
//!
//! ```
//! use dcs_masstree::MassTree;
//! use bytes::Bytes;
//!
//! let t = MassTree::new();
//! t.insert(Bytes::from("hello/world"), Bytes::from("v1"));
//! assert_eq!(t.get(b"hello/world"), Some(Bytes::from("v1")));
//! t.remove(b"hello/world");
//! assert_eq!(t.get(b"hello/world"), None);
//! ```

mod node;
mod scan;
pub(crate) mod sync;
mod tree;

pub use tree::{MassTree, MassTreeStats};
