//! Facade over the synchronization primitives this crate uses.
//!
//! Default build: `std::sync` re-exports, zero cost. With the `check`
//! feature: the instrumented shims from `dcs-check`, so the optimistic
//! version protocol and permuter updates run under the deterministic
//! interleaving checker.

#[cfg(feature = "check")]
pub use dcs_check::sync::{
    AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering,
};

#[cfg(not(feature = "check"))]
pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(feature = "check"))]
pub use std::sync::{Mutex, MutexGuard};
