//! Range scans across trie layers.
//!
//! Border entries sort by `(slice, klen)`, which coincides with
//! lexicographic key order (equal slices imply equal prefixes including
//! zero padding; a shorter key is a prefix of — and sorts before — a
//! longer one with the same slice, and `HAS_MORE` continuations sort after
//! every in-slice terminal). An in-order walk of each layer's B+-tree,
//! recursing into next-layer subtrees, therefore yields keys in order.
//!
//! Consistency matches the Bw-tree scan (and B-link trees generally): the
//! scan is not a point-in-time snapshot of the whole tree, but every
//! record returned was live when its node was visited, keys ascend, and
//! there are no duplicates.

use crate::node::{slice_at, EntryValue, Layer, Node};
use crate::sync::Ordering;
use crate::tree::MassTree;
use bytes::Bytes;
use dcs_ebr::Guard;

/// Exclusive scan bounds relative to the current layer (suffix view).
struct Bounds<'a> {
    start: &'a [u8],
    end: Option<&'a [u8]>,
}

impl MassTree {
    /// Collect records with `start ≤ key < end` (or to the end of the key
    /// space when `end` is `None`), in ascending key order.
    pub fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Bytes, Bytes)> {
        self.scan_limited(start, end, usize::MAX)
    }

    /// Like [`MassTree::scan`], but stops after `limit` records — the walk
    /// terminates early instead of materializing the whole range.
    pub fn scan_limited(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Vec<(Bytes, Bytes)> {
        let guard = dcs_ebr::pin();
        let mut out = Vec::new();
        scan_layer(
            self.root_layer(),
            &mut Vec::new(),
            &Bounds { start, end },
            limit,
            &mut out,
            &guard,
        );
        out
    }

    /// Number of records in `[start, end)`.
    pub fn count_range(&self, start: &[u8], end: Option<&[u8]>) -> usize {
        self.scan(start, end).len()
    }
}

/// Whether a reconstructed full key is inside the bounds.
fn in_bounds(key: &[u8], b: &Bounds<'_>) -> bool {
    key >= b.start && b.end.map(|e| key < e).unwrap_or(true)
}

/// Walk one layer's subtree in order.
fn scan_layer(
    layer: &Layer,
    prefix: &mut Vec<u8>,
    bounds: &Bounds<'_>,
    limit: usize,
    out: &mut Vec<(Bytes, Bytes)>,
    guard: &Guard,
) {
    let root = layer.root.load(Ordering::SeqCst);
    scan_node(root, prefix, bounds, limit, out, guard);
}

fn scan_node(
    node: *const Node,
    prefix: &mut Vec<u8>,
    bounds: &Bounds<'_>,
    limit: usize,
    out: &mut Vec<(Bytes, Bytes)>,
    guard: &Guard,
) {
    if out.len() >= limit {
        return;
    }
    // SAFETY: guard pinned since before the pointer load; nodes are
    // immutable and freed only through EBR.
    match unsafe { &*node } {
        Node::Interior(i) => {
            // Prune: child c covers slices in [keys[c-1], keys[c]). The
            // relevant slice range at this layer comes from the bounds'
            // bytes at the current depth.
            let lo_slice = bound_slice(bounds.start, prefix.len());
            let hi_slice = bounds.end.map(|e| bound_slice(e, prefix.len()));
            for c in 0..i.children.len() {
                let child_lo = if c == 0 { None } else { Some(i.keys[c - 1]) };
                let child_hi = i.keys.get(c).copied();
                // Skip children entirely below the range start...
                if let (Some(h), Some(lo)) = (child_hi, lo_slice) {
                    if h < lo {
                        continue;
                    }
                }
                // ...or at/above the range end.
                if let (Some(l), Some(Some(hi))) = (child_lo, hi_slice.as_ref().map(|h| *h)) {
                    if l > hi {
                        break;
                    }
                }
                if out.len() >= limit {
                    return;
                }
                let ptr = i.children[c].load(Ordering::SeqCst);
                scan_node(ptr, prefix, bounds, limit, out, guard);
            }
        }
        Node::Border(b) => {
            for e in &b.entries {
                if out.len() >= limit {
                    return;
                }
                let slice_bytes = e.slice.to_be_bytes();
                match (&e.value, e.klen) {
                    (EntryValue::Inline { suffix, value }, klen) if klen <= 8 => {
                        let mut key = prefix.clone();
                        key.extend_from_slice(&slice_bytes[..klen as usize]);
                        debug_assert!(suffix.is_empty());
                        if in_bounds(&key, bounds) {
                            out.push((Bytes::from(key), value.clone()));
                        }
                    }
                    (EntryValue::Inline { suffix, value }, _) => {
                        // HAS_MORE with an inline suffix.
                        let mut key = prefix.clone();
                        key.extend_from_slice(&slice_bytes);
                        key.extend_from_slice(suffix);
                        if in_bounds(&key, bounds) {
                            out.push((Bytes::from(key), value.clone()));
                        }
                    }
                    (EntryValue::NextLayer(next), _) => {
                        // Prune whole sub-layers outside the bounds: every
                        // key below shares `prefix + slice`.
                        let mut sub_prefix = prefix.clone();
                        sub_prefix.extend_from_slice(&slice_bytes);
                        if subtree_may_intersect(&sub_prefix, bounds) {
                            scan_layer(next, &mut sub_prefix, bounds, limit, out, guard);
                        }
                    }
                }
            }
        }
    }
}

/// The slice value the bound key has at `offset` (None = unbounded in that
/// direction for pruning purposes once the prefix has passed the bound).
fn bound_slice(bound: &[u8], offset: usize) -> Option<u64> {
    if offset >= bound.len() {
        None
    } else {
        Some(slice_at(bound, offset))
    }
}

/// Whether any key beginning with `sub_prefix` can fall inside the bounds.
fn subtree_may_intersect(sub_prefix: &[u8], b: &Bounds<'_>) -> bool {
    // Max key with this prefix is prefix+0xFF...; min is the prefix itself.
    if let Some(end) = b.end {
        if sub_prefix >= end {
            return false;
        }
    }
    // If the prefix is lexicographically below start, keys under it can
    // still exceed start only when start begins with the prefix.
    if sub_prefix < b.start {
        let n = sub_prefix.len().min(b.start.len());
        return sub_prefix[..n] == b.start[..n];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn scan_short_keys_in_order() {
        let t = MassTree::new();
        for i in (0..500u32).rev() {
            t.insert(
                Bytes::from(format!("k{i:04}")),
                Bytes::from(format!("v{i}")),
            );
        }
        let all = t.scan(b"", None);
        assert_eq!(all.len(), 500);
        for (i, (k, v)) in all.iter().enumerate() {
            assert_eq!(k, &Bytes::from(format!("k{i:04}")));
            assert_eq!(v, &Bytes::from(format!("v{i}")));
        }
    }

    #[test]
    fn bounded_scan() {
        let t = MassTree::new();
        for i in 0..200u32 {
            t.insert(Bytes::from(format!("k{i:04}")), b("v"));
        }
        let got = t.scan(b"k0050", Some(b"k0060"));
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, b("k0050"));
        assert_eq!(got[9].0, b("k0059"));
        assert_eq!(t.count_range(b"k0199", None), 1);
        assert_eq!(t.count_range(b"zzz", None), 0);
    }

    #[test]
    fn scan_across_layers_in_order() {
        // Long keys with shared prefixes force multi-layer descent; scan
        // order must still be lexicographic.
        let t = MassTree::new();
        let mut expect = Vec::new();
        for i in 0..50u32 {
            for suffix in ["", "-a", "-bb", "-ccc"] {
                let key = format!("shared-prefix-{i:03}{suffix}");
                t.insert(
                    Bytes::from(key.clone()),
                    Bytes::from(format!("{i}{suffix}")),
                );
                expect.push(key);
            }
        }
        expect.sort();
        let got: Vec<String> = t
            .scan(b"", None)
            .into_iter()
            .map(|(k, _)| String::from_utf8(k.to_vec()).unwrap())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn scan_mixed_lengths_and_padding() {
        let t = MassTree::new();
        let keys: Vec<&[u8]> = vec![
            b"a",
            b"ab",
            b"ab\x00",
            b"abcdefgh",
            b"abcdefghi",
            b"abcdefgh\x00",
            b"b",
        ];
        for k in &keys {
            t.insert(Bytes::copy_from_slice(k), b("v"));
        }
        let got: Vec<Vec<u8>> = t
            .scan(b"", None)
            .into_iter()
            .map(|(k, _)| k.to_vec())
            .collect();
        let mut expect: Vec<Vec<u8>> = keys.iter().map(|k| k.to_vec()).collect();
        expect.sort();
        assert_eq!(got, expect);
    }

    #[test]
    fn bounded_scan_across_layers() {
        let t = MassTree::new();
        for i in 0..100u32 {
            t.insert(
                Bytes::from(format!("deep-shared-prefix-{i:04}-tail")),
                Bytes::from(format!("{i}")),
            );
        }
        let got = t.scan(b"deep-shared-prefix-0040", Some(b"deep-shared-prefix-0045"));
        assert_eq!(got.len(), 5);
        assert!(got
            .iter()
            .zip(40..45)
            .all(|((_, v), i)| v == &Bytes::from(format!("{i}"))));
    }

    #[test]
    fn scan_limited_stops_early() {
        let t = MassTree::new();
        for i in 0..5000u32 {
            t.insert(Bytes::from(format!("k{i:06}")), b("v"));
        }
        let got = t.scan_limited(b"k001000", None, 25);
        assert_eq!(got.len(), 25);
        assert_eq!(got[0].0, b("k001000"));
        assert_eq!(got[24].0, b("k001024"));
        // And the full scan agrees on the same prefix.
        let full = t.scan(b"k001000", Some(b"k001025"));
        assert_eq!(full, got);
    }

    #[test]
    fn empty_tree_scans_empty() {
        let t = MassTree::new();
        assert!(t.scan(b"", None).is_empty());
    }

    #[test]
    fn scan_sees_deletes() {
        let t = MassTree::new();
        for i in 0..20u32 {
            t.insert(Bytes::from(format!("k{i:02}")), b("v"));
        }
        t.remove(b"k05");
        t.remove(b"k06");
        let got = t.scan(b"k00", Some(b"k10"));
        assert_eq!(got.len(), 8);
        assert!(!got.iter().any(|(k, _)| k == &b("k05") || k == &b("k06")));
    }
}
