//! Node representations: interior, border, layers, slices.

use crate::sync::{AtomicBool, AtomicPtr, AtomicUsize, Mutex, Ordering};
use bytes::Bytes;
use std::sync::Arc;

/// Node fanout, as in the MassTree paper.
pub(crate) const WIDTH: usize = 15;

/// Big-endian 8-byte slice of a key starting at `offset`, zero-padded.
pub(crate) fn slice_at(key: &[u8], offset: usize) -> u64 {
    let mut buf = [0u8; 8];
    if offset < key.len() {
        let end = (offset + 8).min(key.len());
        buf[..end - offset].copy_from_slice(&key[offset..end]);
    }
    u64::from_be_bytes(buf)
}

/// Key-length class of a border entry: `0..=8` is a key that ends within
/// this slice (with that many bytes); `HAS_MORE` means the key continues
/// past the slice (suffix inline or next layer).
pub(crate) const HAS_MORE: u8 = 9;

/// What a border entry holds.
#[derive(Clone)]
pub(crate) enum EntryValue {
    /// A record whose key ends in this slice (`klen ≤ 8`), or a single
    /// longer key with its suffix stored inline.
    Inline {
        /// Remaining key bytes past this slice (empty if `klen ≤ 8`).
        suffix: Bytes,
        /// Record payload.
        value: Bytes,
    },
    /// Two or more keys share this slice and continue: descend a layer.
    NextLayer(Arc<Layer>),
}

/// One border-node entry.
#[derive(Clone)]
pub(crate) struct Entry {
    pub slice: u64,
    /// `0..=8`, or [`HAS_MORE`].
    pub klen: u8,
    pub value: EntryValue,
}

impl Entry {
    /// Sort key within a border node.
    pub fn rank(&self) -> (u64, u8) {
        (self.slice, self.klen)
    }
}

/// An immutable border (leaf) node. Entries are sorted by `(slice, klen)`.
pub(crate) struct Border {
    pub entries: Vec<Entry>,
}

impl Border {
    pub fn empty() -> Self {
        Border {
            entries: Vec::new(),
        }
    }

    /// Find the entry index matching `(slice, klen)`.
    pub fn find(&self, slice: u64, klen: u8) -> Result<usize, usize> {
        self.entries
            .binary_search_by(|e| e.rank().cmp(&(slice, klen)))
    }
}

/// An interior node: routes slices to children. Keys are immutable;
/// children slots are updated in place, under the node's write lock, so
/// readers can follow them with plain atomic loads.
pub(crate) struct Interior {
    pub keys: Vec<u64>,
    pub children: Vec<AtomicPtr<Node>>,
    /// Serializes all writers that publish into this node's slots (and the
    /// node's own replacement).
    pub wlock: Mutex<()>,
    /// Set (under `wlock`) when this node has been replaced; writers that
    /// located it before the swap must retry.
    pub obsolete: AtomicBool,
}

impl Interior {
    /// Child index routing `slice`: entry `i` covers `keys[i-1] ≤ s < keys[i]`.
    pub fn route(&self, slice: u64) -> usize {
        self.keys.partition_point(|&k| k <= slice)
    }
}

/// A tree node.
pub(crate) enum Node {
    Interior(Interior),
    Border(Border),
}

impl Node {
    pub fn into_raw(self) -> *mut Node {
        Box::into_raw(Box::new(self))
    }

    /// Approximate allocated bytes: fixed-width arrays (the space-for-time
    /// trade the paper's `Mx` measures) plus owned byte payloads.
    pub fn approx_bytes(&self) -> usize {
        // Fixed node frame: WIDTH key slots + WIDTH+1 child slots or WIDTH
        // entry slots, regardless of occupancy — as in the original's fixed
        // node layout.
        const FRAME: usize = std::mem::size_of::<Node>()
            + WIDTH * std::mem::size_of::<u64>()
            + (WIDTH + 1) * std::mem::size_of::<usize>();
        match self {
            Node::Interior(_) => FRAME,
            Node::Border(b) => {
                let payload: usize = b
                    .entries
                    .iter()
                    .map(|e| match &e.value {
                        EntryValue::Inline { suffix, value } => suffix.len() + value.len() + 32,
                        EntryValue::NextLayer(_) => 32,
                    })
                    .sum();
                FRAME + payload
            }
        }
    }
}

/// One trie layer: a B+-tree over one 8-byte slice position.
pub(crate) struct Layer {
    pub root: AtomicPtr<Node>,
    /// Serializes writers when the root itself must be replaced (root is a
    /// border node, or a root split).
    pub root_lock: Mutex<()>,
}

impl Layer {
    pub fn new_with(root: *mut Node) -> Self {
        Layer {
            root: AtomicPtr::new(root),
            root_lock: Mutex::new(()),
        }
    }

    pub fn new_empty() -> Self {
        Self::new_with(Node::Border(Border::empty()).into_raw())
    }
}

impl Drop for Layer {
    fn drop(&mut self) {
        // Exclusive at drop: free the subtree immediately.
        let root = self.root.load(Ordering::SeqCst);
        if !root.is_null() {
            // SAFETY: no other reference can exist when a Layer drops (it is
            // reachable only through tree nodes that are themselves being
            // dropped, after all guards have expired).
            unsafe { free_subtree(root) };
        }
    }
}

/// Free a subtree of this layer (not descending into `NextLayer` Arcs —
/// those free themselves when their reference count drops).
///
/// # Safety
/// Caller must have exclusive access to the subtree.
pub(crate) unsafe fn free_subtree(node: *mut Node) {
    // SAFETY: the caller guarantees exclusive access, and every node
    // pointer in a layer was created by `Box::into_raw` on allocation, so
    // reclaiming it with `Box::from_raw` exactly once is sound.
    let boxed = unsafe { Box::from_raw(node) };
    if let Node::Interior(ref i) = *boxed {
        for c in &i.children {
            let p = c.load(Ordering::SeqCst);
            if !p.is_null() {
                // SAFETY: children of an exclusively-owned interior node
                // are themselves exclusively owned; each child pointer is
                // distinct, so no double free.
                unsafe { free_subtree(p) };
            }
        }
    }
    // Border entries (and their NextLayer Arcs) drop with the box.
}

/// Global allocation counter support: tracks approximate live node bytes.
#[derive(Clone, Default)]
pub(crate) struct MemCounter(pub Arc<AtomicUsize>);

impl MemCounter {
    pub fn add(&self, n: usize) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }
    pub fn sub(&self, n: usize) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }
    pub fn get(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_extraction() {
        assert_eq!(slice_at(b"", 0), 0);
        assert_eq!(slice_at(b"A", 0), (b'A' as u64) << 56);
        assert_eq!(slice_at(b"ABCDEFGH", 0), u64::from_be_bytes(*b"ABCDEFGH"));
        assert_eq!(
            slice_at(b"ABCDEFGHIJ", 8),
            u64::from_be_bytes([b'I', b'J', 0, 0, 0, 0, 0, 0])
        );
        assert_eq!(slice_at(b"AB", 8), 0);
    }

    #[test]
    fn slices_preserve_order() {
        let keys: Vec<&[u8]> = vec![b"", b"a", b"ab", b"b", b"ba"];
        for w in keys.windows(2) {
            assert!(
                slice_at(w[0], 0) <= slice_at(w[1], 0),
                "{:?} vs {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn interior_routing() {
        let i = Interior {
            keys: vec![10, 20, 30],
            children: Vec::new(),
            wlock: Mutex::new(()),
            obsolete: AtomicBool::new(false),
        };
        assert_eq!(i.route(5), 0);
        assert_eq!(i.route(10), 1); // equal goes right
        assert_eq!(i.route(15), 1);
        assert_eq!(i.route(30), 3);
        assert_eq!(i.route(99), 3);
    }

    #[test]
    fn border_find() {
        let b = Border {
            entries: vec![
                Entry {
                    slice: 1,
                    klen: 3,
                    value: EntryValue::Inline {
                        suffix: Bytes::new(),
                        value: Bytes::from("x"),
                    },
                },
                Entry {
                    slice: 1,
                    klen: HAS_MORE,
                    value: EntryValue::Inline {
                        suffix: Bytes::from("rest"),
                        value: Bytes::from("y"),
                    },
                },
            ],
        };
        assert_eq!(b.find(1, 3), Ok(0));
        assert_eq!(b.find(1, HAS_MORE), Ok(1));
        assert_eq!(b.find(1, 5), Err(1));
        assert_eq!(b.find(0, 1), Err(0));
    }

    #[test]
    fn node_bytes_reflect_fixed_frames() {
        let empty = Node::Border(Border::empty());
        let frame = empty.approx_bytes();
        assert!(frame > WIDTH * 8, "fixed frame should be charged");
        let one = Node::Border(Border {
            entries: vec![Entry {
                slice: 0,
                klen: 4,
                value: EntryValue::Inline {
                    suffix: Bytes::new(),
                    value: Bytes::from(vec![0u8; 100]),
                },
            }],
        });
        assert_eq!(one.approx_bytes(), frame + 132);
    }
}
