//! The MassTree proper: layered descent, lock-free reads, copy-on-write
//! writes with per-parent-slot serialization.

use crate::node::{
    free_subtree, slice_at, Border, Entry, EntryValue, Interior, Layer, MemCounter, Node, HAS_MORE,
    WIDTH,
};
use crate::sync::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Mutex, Ordering};
use bytes::Bytes;
use dcs_ebr::Guard;
use std::sync::Arc;

/// Operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MassTreeStats {
    /// Point lookups.
    pub gets: u64,
    /// Inserts (including overwrites).
    pub inserts: u64,
    /// Removes that found their key.
    pub removes: u64,
    /// Border-node splits.
    pub splits: u64,
    /// Next-layer subtrees created.
    pub layers_created: u64,
    /// Write retries due to races.
    pub retries: u64,
}

#[derive(Default)]
struct StatsInner {
    gets: AtomicU64,
    inserts: AtomicU64,
    removes: AtomicU64,
    splits: AtomicU64,
    layers_created: AtomicU64,
    retries: AtomicU64,
}

/// A MassTree. See the crate docs for structure and concurrency notes.
pub struct MassTree {
    layer0: Arc<Layer>,
    mem: MemCounter,
    len: AtomicUsize,
    stats: StatsInner,
}

/// Key-length class for the slice at `offset`.
fn klen_of(key: &[u8], offset: usize) -> u8 {
    let remaining = key.len().saturating_sub(offset);
    if remaining > 8 {
        HAS_MORE
    } else {
        remaining as u8
    }
}

impl MassTree {
    /// An empty tree.
    pub fn new() -> Self {
        let t = MassTree {
            layer0: Arc::new(Layer::new_empty()),
            mem: MemCounter::default(),
            len: AtomicUsize::new(0),
            stats: StatsInner::default(),
        };
        // Charge the initial empty root.
        // SAFETY: `Layer::new_empty` just stored a valid, non-null root
        // pointer, and no other thread can hold the tree yet.
        t.mem
            .add(unsafe { &*t.layer0.root.load(Ordering::SeqCst) }.approx_bytes());
        t
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes of live tree nodes (the paper's memory-expansion
    /// measurements read this).
    pub fn footprint_bytes(&self) -> usize {
        self.mem.get()
    }

    pub(crate) fn root_layer(&self) -> &crate::node::Layer {
        &self.layer0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> MassTreeStats {
        MassTreeStats {
            gets: self.stats.gets.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            removes: self.stats.removes.load(Ordering::Relaxed),
            splits: self.stats.splits.load(Ordering::Relaxed),
            layers_created: self.stats.layers_created.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
        }
    }

    // ------------------------------------------------------------------
    // Read path (lock-free)
    // ------------------------------------------------------------------

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        let guard = dcs_ebr::pin();
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let mut layer = self.layer0.clone();
        let mut offset = 0usize;
        loop {
            let slice = slice_at(key, offset);
            let klen = klen_of(key, offset);
            let border = Self::descend(&layer, slice, &guard);
            // SAFETY: guard pinned since before loading the pointer.
            let b = match unsafe { &*border } {
                Node::Border(b) => b,
                Node::Interior(_) => unreachable!("descend returns a border"),
            };
            match b.find(slice, klen) {
                Err(_) => return None,
                Ok(idx) => match &b.entries[idx].value {
                    EntryValue::Inline { suffix, value } => {
                        if klen == HAS_MORE && suffix.as_ref() != &key[offset + 8..] {
                            return None;
                        }
                        return Some(value.clone());
                    }
                    EntryValue::NextLayer(next) => {
                        layer = next.clone();
                        offset += 8;
                    }
                },
            }
        }
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Descend within one layer to the border node covering `slice`.
    fn descend(layer: &Layer, slice: u64, _guard: &Guard) -> *mut Node {
        let mut node = layer.root.load(Ordering::SeqCst);
        loop {
            // SAFETY: guard pinned; nodes freed only through EBR.
            match unsafe { &*node } {
                Node::Interior(i) => {
                    node = i.children[i.route(slice)].load(Ordering::SeqCst);
                }
                Node::Border(_) => return node,
            }
        }
    }

    /// Descend recording the interior path (for writers).
    fn descend_with_path(
        layer: &Layer,
        slice: u64,
        _guard: &Guard,
    ) -> (*mut Node, Vec<(*mut Node, usize)>) {
        let mut path = Vec::new();
        let mut node = layer.root.load(Ordering::SeqCst);
        loop {
            // SAFETY: guard pinned.
            match unsafe { &*node } {
                Node::Interior(i) => {
                    let slot = i.route(slice);
                    path.push((node, slot));
                    node = i.children[slot].load(Ordering::SeqCst);
                }
                Node::Border(_) => return (node, path),
            }
        }
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Insert or overwrite. Returns `true` if the key was new.
    pub fn insert(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> bool {
        let key = key.into();
        let value = value.into();
        let guard = dcs_ebr::pin();
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        let mut layer = self.layer0.clone();
        let mut offset = 0usize;
        loop {
            let slice = slice_at(&key, offset);
            let klen = klen_of(&key, offset);
            let (border, path) = Self::descend_with_path(&layer, slice, &guard);
            // SAFETY: guard pinned.
            let b = match unsafe { &*border } {
                Node::Border(b) => b,
                Node::Interior(_) => unreachable!(),
            };
            let suffix = if klen == HAS_MORE {
                key.slice(offset + 8..)
            } else {
                Bytes::new()
            };
            let (new_entries, inserted_new) = match b.find(slice, klen) {
                Ok(idx) => match &b.entries[idx].value {
                    EntryValue::NextLayer(next) => {
                        layer = next.clone();
                        offset += 8;
                        continue;
                    }
                    EntryValue::Inline {
                        suffix: old_suffix,
                        value: old_value,
                    } => {
                        let mut entries = b.entries.clone();
                        if klen == HAS_MORE && old_suffix != &suffix {
                            // Second key sharing this slice: grow a layer
                            // holding both suffixed records.
                            let sub = Arc::new(self.build_layer_with_two(
                                old_suffix.clone(),
                                old_value.clone(),
                                suffix.clone(),
                                value.clone(),
                            ));
                            entries[idx] = Entry {
                                slice,
                                klen: HAS_MORE,
                                value: EntryValue::NextLayer(sub),
                            };
                            self.stats.layers_created.fetch_add(1, Ordering::Relaxed);
                            (entries, true)
                        } else {
                            entries[idx] = Entry {
                                slice,
                                klen,
                                value: EntryValue::Inline {
                                    suffix,
                                    value: value.clone(),
                                },
                            };
                            (entries, false)
                        }
                    }
                },
                Err(pos) => {
                    let mut entries = b.entries.clone();
                    entries.insert(
                        pos,
                        Entry {
                            slice,
                            klen,
                            value: EntryValue::Inline {
                                suffix,
                                value: value.clone(),
                            },
                        },
                    );
                    (entries, true)
                }
            };
            if self.try_publish(&layer, border, &path, new_entries, &guard) {
                if inserted_new {
                    self.len.fetch_add(1, Ordering::Relaxed);
                }
                return inserted_new;
            }
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&self, key: &[u8]) -> Option<Bytes> {
        let guard = dcs_ebr::pin();
        let mut layer = self.layer0.clone();
        let mut offset = 0usize;
        loop {
            let slice = slice_at(key, offset);
            let klen = klen_of(key, offset);
            let (border, path) = Self::descend_with_path(&layer, slice, &guard);
            // SAFETY: guard pinned.
            let b = match unsafe { &*border } {
                Node::Border(b) => b,
                Node::Interior(_) => unreachable!(),
            };
            let (new_entries, old_value) = match b.find(slice, klen) {
                Err(_) => return None,
                Ok(idx) => match &b.entries[idx].value {
                    EntryValue::NextLayer(next) => {
                        layer = next.clone();
                        offset += 8;
                        continue;
                    }
                    EntryValue::Inline { suffix, value } => {
                        if klen == HAS_MORE && suffix.as_ref() != &key[offset + 8..] {
                            return None;
                        }
                        let mut entries = b.entries.clone();
                        entries.remove(idx);
                        (entries, value.clone())
                    }
                },
            };
            if self.try_publish(&layer, border, &path, new_entries, &guard) {
                self.stats.removes.fetch_add(1, Ordering::Relaxed);
                self.len.fetch_sub(1, Ordering::Relaxed);
                return Some(old_value);
            }
            self.stats.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A fresh layer containing two suffixed records (built privately, then
    /// published by the caller).
    fn build_layer_with_two(&self, s1: Bytes, v1: Bytes, s2: Bytes, v2: Bytes) -> Layer {
        debug_assert_ne!(s1, s2);
        let layer = Layer::new_empty();
        // SAFETY: `Layer::new_empty` just stored a valid, non-null root, and
        // the layer is unpublished — no other thread can reach it.
        self.mem
            .add(unsafe { &*layer.root.load(Ordering::SeqCst) }.approx_bytes());
        // Insert both records layer-locally. This recursion terminates: the
        // suffixes differ, so within finitely many 8-byte slices they part.
        self.layer_insert_unpublished(&layer, &s1, v1);
        self.layer_insert_unpublished(&layer, &s2, v2);
        layer
    }

    /// Insert into a layer that is not yet published (no concurrency).
    fn layer_insert_unpublished(&self, layer: &Layer, key: &Bytes, value: Bytes) {
        let mut layer_ref: Arc<Layer>;
        let mut cur: &Layer = layer;
        let mut offset = 0usize;
        loop {
            let slice = slice_at(key, offset);
            let klen = klen_of(key, offset);
            let root = cur.root.load(Ordering::SeqCst);
            // Unpublished layers are always a single border node (two keys).
            // SAFETY: exclusive access (unpublished).
            let b = match unsafe { &*root } {
                Node::Border(b) => b,
                Node::Interior(_) => unreachable!("unpublished layer stays single-node"),
            };
            let suffix = if klen == HAS_MORE {
                key.slice(offset + 8..)
            } else {
                Bytes::new()
            };
            match b.find(slice, klen) {
                Ok(idx) => match &b.entries[idx].value {
                    EntryValue::NextLayer(next) => {
                        layer_ref = next.clone();
                        offset += 8;
                        // Continue the loop borrowing the Arc we keep alive.
                        // SAFETY: `layer_ref` holds the Arc for the rest of
                        // this iteration, so the pointee outlives the borrow.
                        cur = unsafe { &*(Arc::as_ptr(&layer_ref)) };
                        let _ = &layer_ref;
                        continue;
                    }
                    EntryValue::Inline {
                        suffix: old_suffix,
                        value: old_value,
                    } => {
                        debug_assert!(klen == HAS_MORE && old_suffix != &suffix);
                        let sub = Arc::new(self.build_layer_with_two(
                            old_suffix.clone(),
                            old_value.clone(),
                            suffix,
                            value,
                        ));
                        self.stats.layers_created.fetch_add(1, Ordering::Relaxed);
                        let mut entries = b.entries.clone();
                        entries[idx] = Entry {
                            slice,
                            klen: HAS_MORE,
                            value: EntryValue::NextLayer(sub),
                        };
                        self.swap_unpublished_root(cur, root, entries);
                        return;
                    }
                },
                Err(pos) => {
                    let mut entries = b.entries.clone();
                    entries.insert(
                        pos,
                        Entry {
                            slice,
                            klen,
                            value: EntryValue::Inline { suffix, value },
                        },
                    );
                    self.swap_unpublished_root(cur, root, entries);
                    return;
                }
            }
        }
    }

    fn swap_unpublished_root(&self, layer: &Layer, old: *mut Node, entries: Vec<Entry>) {
        let new = Node::Border(Border { entries });
        self.mem.add(new.approx_bytes());
        // SAFETY: exclusive (unpublished layer).
        self.mem.sub(unsafe { &*old }.approx_bytes());
        layer.root.store(new.into_raw(), Ordering::SeqCst);
        // SAFETY: the layer is unpublished, so `old` (its detached former
        // root) is exclusively owned here and freed exactly once.
        unsafe { free_subtree(old) };
    }

    // ------------------------------------------------------------------
    // Publication: replace a border node, splitting upward as needed.
    // ------------------------------------------------------------------

    /// Replace the border at the end of `path` with node(s) holding
    /// `new_entries`. Returns `false` if a race invalidated the path (the
    /// caller re-descends).
    fn try_publish(
        &self,
        layer: &Layer,
        old_border: *mut Node,
        path: &[(*mut Node, usize)],
        new_entries: Vec<Entry>,
        guard: &Guard,
    ) -> bool {
        // Locks are acquired bottom-up and held in this vector until the
        // publication completes (drop order is irrelevant for correctness).
        let mut locks: Vec<crate::sync::MutexGuard<'_, ()>> = Vec::new();

        if new_entries.len() <= WIDTH {
            let new_node = Node::Border(Border {
                entries: new_entries,
            });
            return self.publish_swap(
                layer,
                path,
                path.len(),
                old_border,
                new_node,
                &mut locks,
                guard,
            );
        }

        // Split: find a boundary that does not separate equal slices (at
        // most 10 klen classes share a slice, and 10 < WIDTH, so a boundary
        // always exists near the middle).
        self.stats.splits.fetch_add(1, Ordering::Relaxed);
        let mut mid = new_entries.len() / 2;
        while mid < new_entries.len() && new_entries[mid].slice == new_entries[mid - 1].slice {
            mid += 1;
        }
        if mid == new_entries.len() {
            mid = new_entries.len() / 2;
            while mid > 1 && new_entries[mid].slice == new_entries[mid - 1].slice {
                mid -= 1;
            }
        }
        let right_entries = new_entries[mid..].to_vec();
        let upkey = right_entries[0].slice;
        let left_entries = new_entries[..mid].to_vec();
        let left = Node::Border(Border {
            entries: left_entries,
        })
        .into_raw();
        let right = Node::Border(Border {
            entries: right_entries,
        })
        .into_raw();
        // SAFETY: `left` was just allocated by `into_raw` and not yet published.
        self.mem.add(unsafe { &*left }.approx_bytes());
        // SAFETY: `right` was just allocated by `into_raw` and not yet published.
        self.mem.add(unsafe { &*right }.approx_bytes());

        if self.insert_into_parents(
            layer,
            path,
            path.len(),
            old_border,
            upkey,
            left,
            right,
            &mut locks,
            guard,
        ) {
            true
        } else {
            // SAFETY: `left` was never published, so we still own it exclusively.
            self.mem.sub(unsafe { &*left }.approx_bytes());
            // SAFETY: `right` was never published, so we still own it exclusively.
            self.mem.sub(unsafe { &*right }.approx_bytes());
            // SAFETY: both nodes came from `Box::into_raw` above and were
            // never published; reclaiming each exactly once is sound.
            unsafe {
                drop(Box::from_raw(left));
                drop(Box::from_raw(right));
            }
            false
        }
    }

    /// Swap `old` for `new_node` at the slot above `level` (the parent at
    /// `path[level-1]`, or the layer root when `level == 0`). Verifies the
    /// slot still points at `old`.
    #[allow(clippy::too_many_arguments)]
    fn publish_swap(
        &self,
        layer: &Layer,
        path: &[(*mut Node, usize)],
        level: usize,
        old: *mut Node,
        new_node: Node,
        locks: &mut Vec<crate::sync::MutexGuard<'_, ()>>,
        guard: &Guard,
    ) -> bool {
        let new_bytes = new_node.approx_bytes();
        if level == 0 {
            let lock = layer.root_lock.lock().expect("root lock poisoned");
            // SAFETY: transmute the guard lifetime into the held vector; the
            // vector dies before `layer` does.
            locks.push(unsafe {
                std::mem::transmute::<
                    crate::sync::MutexGuard<'_, ()>,
                    crate::sync::MutexGuard<'_, ()>,
                >(lock)
            });
            if layer.root.load(Ordering::SeqCst) != old {
                return false;
            }
            let new_ptr = new_node.into_raw();
            self.mem.add(new_bytes);
            layer.root.store(new_ptr, Ordering::SeqCst);
            self.retire_node(old, guard);
            true
        } else {
            let (pnode, slot) = path[level - 1];
            // SAFETY: guard pinned; pnode is a live interior node.
            let p = match unsafe { &*pnode } {
                Node::Interior(i) => i,
                Node::Border(_) => unreachable!("path holds interior nodes"),
            };
            let lock = p.wlock.lock().expect("node lock poisoned");
            // SAFETY: see publish_swap's root case — the node outlives the
            // guard (EBR pin), and `locks` drops before publication returns.
            locks.push(unsafe {
                std::mem::transmute::<
                    crate::sync::MutexGuard<'_, ()>,
                    crate::sync::MutexGuard<'_, ()>,
                >(lock)
            });
            if p.obsolete.load(Ordering::SeqCst) || p.children[slot].load(Ordering::SeqCst) != old {
                return false;
            }
            let new_ptr = new_node.into_raw();
            self.mem.add(new_bytes);
            p.children[slot].store(new_ptr, Ordering::SeqCst);
            self.retire_node(old, guard);
            true
        }
    }

    /// Propagate a split upward: replace `old_child` at `path[..level]` with
    /// `left`/`right` separated by `upkey`, splitting interiors as needed.
    #[allow(clippy::too_many_arguments)]
    fn insert_into_parents(
        &self,
        layer: &Layer,
        path: &[(*mut Node, usize)],
        level: usize,
        old_child: *mut Node,
        upkey: u64,
        left: *mut Node,
        right: *mut Node,
        locks: &mut Vec<crate::sync::MutexGuard<'_, ()>>,
        guard: &Guard,
    ) -> bool {
        if level == 0 {
            // New root for this layer.
            let lock = layer.root_lock.lock().expect("root lock poisoned");
            // SAFETY: see publish_swap's root case.
            locks.push(unsafe {
                std::mem::transmute::<
                    crate::sync::MutexGuard<'_, ()>,
                    crate::sync::MutexGuard<'_, ()>,
                >(lock)
            });
            if layer.root.load(Ordering::SeqCst) != old_child {
                return false;
            }
            let new_root = Node::Interior(Interior {
                keys: vec![upkey],
                children: vec![AtomicPtr::new(left), AtomicPtr::new(right)],
                wlock: Mutex::new(()),
                obsolete: AtomicBool::new(false),
            });
            self.mem.add(new_root.approx_bytes());
            layer.root.store(new_root.into_raw(), Ordering::SeqCst);
            self.retire_node(old_child, guard);
            return true;
        }
        let (pnode, slot) = path[level - 1];
        // SAFETY: guard pinned.
        let p = match unsafe { &*pnode } {
            Node::Interior(i) => i,
            Node::Border(_) => unreachable!("path holds interior nodes"),
        };
        let lock = p.wlock.lock().expect("node lock poisoned");
        // SAFETY: the guard's borrow is detached from `p`'s lifetime, but
        // the node outlives every held guard: it is reachable from the
        // tree (or retired through EBR, whose grace period cannot elapse
        // while our epoch Guard is pinned), and `locks` drops before the
        // enclosing publication call returns.
        locks.push(unsafe {
            std::mem::transmute::<crate::sync::MutexGuard<'_, ()>, crate::sync::MutexGuard<'_, ()>>(
                lock,
            )
        });
        if p.obsolete.load(Ordering::SeqCst) || p.children[slot].load(Ordering::SeqCst) != old_child
        {
            return false;
        }
        // Build the replacement for p with `upkey` inserted at `slot`.
        let mut keys: Vec<u64> = p.keys.clone();
        let mut children: Vec<*mut Node> = p
            .children
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect();
        keys.insert(slot, upkey);
        children[slot] = left;
        children.insert(slot + 1, right);

        let publish_interior = |keys: Vec<u64>, children: Vec<*mut Node>| -> Node {
            Node::Interior(Interior {
                keys,
                children: children.into_iter().map(AtomicPtr::new).collect(),
                wlock: Mutex::new(()),
                obsolete: AtomicBool::new(false),
            })
        };

        if keys.len() <= WIDTH {
            let p_new = publish_interior(keys, children);
            if self.publish_swap(layer, path, level - 1, pnode, p_new, locks, guard) {
                p.obsolete.store(true, Ordering::SeqCst);
                // The split child was detached by p_new's child slots.
                self.retire_node(old_child, guard);
                true
            } else {
                false
            }
        } else {
            // Split the interior: median moves up.
            self.stats.splits.fetch_add(1, Ordering::Relaxed);
            let m = keys.len() / 2;
            let up = keys[m];
            let right_keys = keys[m + 1..].to_vec();
            let left_keys = keys[..m].to_vec();
            let right_children = children[m + 1..].to_vec();
            let left_children = children[..m + 1].to_vec();
            let p_left = publish_interior(left_keys, left_children).into_raw();
            let p_right = publish_interior(right_keys, right_children).into_raw();
            // SAFETY: `p_left` was just allocated by `into_raw` and not yet published.
            self.mem.add(unsafe { &*p_left }.approx_bytes());
            // SAFETY: `p_right` was just allocated by `into_raw` and not yet published.
            self.mem.add(unsafe { &*p_right }.approx_bytes());
            if self.insert_into_parents(
                layer,
                path,
                level - 1,
                pnode,
                up,
                p_left,
                p_right,
                locks,
                guard,
            ) {
                p.obsolete.store(true, Ordering::SeqCst);
                // The split child was detached by p_left/p_right's slots.
                self.retire_node(old_child, guard);
                true
            } else {
                // SAFETY: `p_left` was never published, so we still own it exclusively.
                self.mem.sub(unsafe { &*p_left }.approx_bytes());
                // SAFETY: `p_right` was never published, so we still own it exclusively.
                self.mem.sub(unsafe { &*p_right }.approx_bytes());
                // SAFETY: both nodes came from `Box::into_raw` above and were
                // never published; reclaiming each exactly once is sound.
                unsafe {
                    drop(Box::from_raw(p_left));
                    drop(Box::from_raw(p_right));
                }
                false
            }
        }
    }

    /// Retire a replaced node (shallow: children/entries were cloned or are
    /// now owned by the replacement).
    fn retire_node(&self, node: *mut Node, guard: &Guard) {
        // SAFETY: node was atomically unlinked by the caller.
        let bytes = unsafe { &*node }.approx_bytes();
        let mem = self.mem.clone();
        let addr = node as usize;
        guard.defer(move || {
            mem.sub(bytes);
            // SAFETY: unlinked, grace period elapsed. Shallow drop: the Box
            // drops Vecs of AtomicPtr (no child ownership) and Border entry
            // clones (refcounted Bytes / Arc<Layer>).
            drop(unsafe { Box::from_raw(addr as *mut Node) });
        });
    }
}

impl Default for MassTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MassTree {
    fn drop(&mut self) {
        // Layer0's Drop frees the whole structure (sub-layers via Arc).
    }
}

impl std::fmt::Debug for MassTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MassTree")
            .field("len", &self.len())
            .field("footprint_bytes", &self.footprint_bytes())
            .field("stats", &self.stats())
            .finish()
    }
}

// SAFETY: all interior mutability is via atomics and mutexes; raw node
// pointers are managed by the EBR protocol.
unsafe impl Send for MassTree {}
// SAFETY: shared access goes through atomics, per-node locks, and EBR
// guards; no `&self` method hands out unsynchronized mutable state.
unsafe impl Sync for MassTree {}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn empty_tree() {
        let t = MassTree::new();
        assert!(t.is_empty());
        assert_eq!(t.get(b"x"), None);
    }

    #[test]
    fn insert_get_short_keys() {
        let t = MassTree::new();
        assert!(t.insert(b("a"), b("1")));
        assert!(t.insert(b("b"), b("2")));
        assert!(!t.insert(b("a"), b("1x"))); // overwrite
        assert_eq!(t.get(b"a"), Some(b("1x")));
        assert_eq!(t.get(b"b"), Some(b("2")));
        assert_eq!(t.get(b"c"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn empty_key_is_a_key() {
        let t = MassTree::new();
        t.insert(b(""), b("empty"));
        assert_eq!(t.get(b""), Some(b("empty")));
        assert_eq!(t.remove(b""), Some(b("empty")));
        assert_eq!(t.get(b""), None);
    }

    #[test]
    fn exact_8_byte_vs_longer_keys() {
        let t = MassTree::new();
        t.insert(b("ABCDEFGH"), b("eight"));
        t.insert(b("ABCDEFGHI"), b("nine"));
        t.insert(b("ABCDEFGHIJKLMNOPQ"), b("seventeen"));
        assert_eq!(t.get(b"ABCDEFGH"), Some(b("eight")));
        assert_eq!(t.get(b"ABCDEFGHI"), Some(b("nine")));
        assert_eq!(t.get(b"ABCDEFGHIJKLMNOPQ"), Some(b("seventeen")));
        assert_eq!(t.get(b"ABCDEFG"), None);
        assert_eq!(t.get(b"ABCDEFGHIJ"), None);
    }

    #[test]
    fn shared_slice_creates_layer() {
        let t = MassTree::new();
        t.insert(b("prefix--suffix-one"), b("1"));
        assert_eq!(t.stats().layers_created, 0);
        t.insert(b("prefix--suffix-two"), b("2"));
        assert!(
            t.stats().layers_created >= 1,
            "shared slice should grow a layer"
        );
        assert_eq!(t.get(b"prefix--suffix-one"), Some(b("1")));
        assert_eq!(t.get(b"prefix--suffix-two"), Some(b("2")));
        assert_eq!(t.get(b"prefix--suffix-xxx"), None);
    }

    #[test]
    fn deep_shared_prefixes() {
        // Keys sharing 24 bytes force three layers.
        let t = MassTree::new();
        let p = "X".repeat(24);
        t.insert(Bytes::from(format!("{p}aaa")), b("A"));
        t.insert(Bytes::from(format!("{p}bbb")), b("B"));
        t.insert(Bytes::from(p.to_string()), b("P"));
        assert_eq!(t.get(format!("{p}aaa").as_bytes()), Some(b("A")));
        assert_eq!(t.get(format!("{p}bbb").as_bytes()), Some(b("B")));
        assert_eq!(t.get(p.as_bytes()), Some(b("P")));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn padding_collision_is_handled() {
        // "abc" and "abc\0\0\0\0\0" share a padded slice but differ in klen.
        let t = MassTree::new();
        t.insert(b("abc"), b("short"));
        t.insert(Bytes::from(&b"abc\0\0\0\0\0"[..]), b("padded"));
        assert_eq!(t.get(b"abc"), Some(b("short")));
        assert_eq!(t.get(b"abc\0\0\0\0\0"), Some(b("padded")));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn splits_occur_and_preserve_data() {
        let t = MassTree::new();
        let n = 5000u32;
        for i in 0..n {
            t.insert(
                Bytes::from(format!("key{i:08}")),
                Bytes::from(format!("v{i}")),
            );
        }
        assert!(t.stats().splits > 10, "splits: {}", t.stats().splits);
        assert_eq!(t.len(), n as usize);
        for i in 0..n {
            assert_eq!(
                t.get(format!("key{i:08}").as_bytes()),
                Some(Bytes::from(format!("v{i}"))),
                "key {i} lost"
            );
        }
    }

    #[test]
    fn random_order_inserts() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut ids: Vec<u32> = (0..3000).collect();
        ids.shuffle(&mut rng);
        let t = MassTree::new();
        for &i in &ids {
            t.insert(
                Bytes::from(format!("k{i:06}")),
                Bytes::from(format!("v{i}")),
            );
        }
        for i in 0..3000u32 {
            assert_eq!(
                t.get(format!("k{i:06}").as_bytes()),
                Some(Bytes::from(format!("v{i}")))
            );
        }
    }

    #[test]
    fn remove_everything() {
        let t = MassTree::new();
        for i in 0..1000u32 {
            t.insert(
                Bytes::from(format!("k{i:05}")),
                Bytes::from(format!("v{i}")),
            );
        }
        for i in 0..1000u32 {
            assert_eq!(
                t.remove(format!("k{i:05}").as_bytes()),
                Some(Bytes::from(format!("v{i}"))),
                "remove {i}"
            );
        }
        assert_eq!(t.len(), 0);
        for i in 0..1000u32 {
            assert_eq!(t.get(format!("k{i:05}").as_bytes()), None);
        }
        // Removing again is a no-op.
        assert_eq!(t.remove(b"k00000"), None);
    }

    #[test]
    fn footprint_tracks_growth_and_shrink() {
        // Keys fit in one slice (≤ 8 bytes) so no sub-layers are created:
        // layer and node skeletons are never collapsed (as in the original),
        // so only same-layer payload shrinkage is asserted here.
        let t = MassTree::new();
        let f0 = t.footprint_bytes();
        for i in 0..2000u32 {
            t.insert(Bytes::from(format!("k{i:06}")), Bytes::from(vec![7u8; 100]));
        }
        let f1 = t.footprint_bytes();
        assert!(f1 > f0 + 2000 * 100, "f1 {f1} too small");
        for i in 0..2000u32 {
            t.remove(format!("k{i:06}").as_bytes());
        }
        // EBR frees lazily, and concurrently running tests can briefly hold
        // the epoch back; flush until the garbage drains (bounded wait).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        let f2 = loop {
            for _ in 0..64 {
                dcs_ebr::pin().flush();
            }
            let f = t.footprint_bytes();
            if f < f1 / 2 || std::time::Instant::now() > deadline {
                break f;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        assert!(f2 < f1 / 2, "footprint did not shrink: {f1} -> {f2}");
    }

    #[test]
    fn model_check_against_btreemap() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let t = MassTree::new();
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..20_000 {
            // Keys with heavy shared prefixes to exercise layers.
            let d = rng.gen_range(0..4u8);
            let key = match d {
                0 => format!("k{}", rng.gen_range(0..500u32)),
                1 => format!("shared-prefix-{}", rng.gen_range(0..300u32)),
                2 => format!("shared-prefix-deeper-{}", rng.gen_range(0..300u32)),
                _ => format!("{}", rng.gen_range(0..100u32)),
            };
            if rng.gen_bool(0.7) {
                let v = format!("v{}", rng.gen::<u32>());
                t.insert(Bytes::from(key.clone()), Bytes::from(v.clone()));
                model.insert(key, v);
            } else {
                let got = t
                    .remove(key.as_bytes())
                    .map(|b| String::from_utf8(b.to_vec()).expect("utf8 value"));
                assert_eq!(got, model.remove(&key), "remove {key} mismatch");
            }
        }
        for (k, v) in &model {
            assert_eq!(
                t.get(k.as_bytes()),
                Some(Bytes::from(v.clone())),
                "key {k} mismatch"
            );
        }
        assert_eq!(t.len(), model.len());
    }

    #[test]
    fn concurrent_disjoint_inserts() {
        let t = Arc::new(MassTree::new());
        const THREADS: u32 = 8;
        const PER: u32 = 2000;
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let id = tid * PER + i;
                    let k = Bytes::from(format!("con{id:08}"));
                    let v = Bytes::from(format!("val{id}"));
                    t.insert(k.clone(), v.clone());
                    assert_eq!(t.get(&k), Some(v), "own write lost {id}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), (THREADS * PER) as usize);
        for id in 0..THREADS * PER {
            assert_eq!(
                t.get(format!("con{id:08}").as_bytes()),
                Some(Bytes::from(format!("val{id}"))),
                "key {id} lost"
            );
        }
    }

    #[test]
    fn concurrent_readers_during_writes() {
        let t = Arc::new(MassTree::new());
        for i in 0..1000u32 {
            t.insert(Bytes::from(format!("stable{i:05}")), b("init"));
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut handles = Vec::new();
        // Writers churn a different key range.
        for tid in 0..2u32 {
            let t = t.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    t.insert(
                        Bytes::from(format!("churn{tid}-{:05}", i % 3000)),
                        Bytes::from(format!("{i}")),
                    );
                    i += 1;
                }
            }));
        }
        // Readers must always see the stable range intact.
        for _ in 0..4 {
            let t = t.clone();
            let stop = stop.clone();
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for i in (0..1000u32).step_by(37) {
                        assert_eq!(
                            t.get(format!("stable{i:05}").as_bytes()),
                            Some(b("init")),
                            "stable key {i} disturbed"
                        );
                    }
                }
            }));
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
