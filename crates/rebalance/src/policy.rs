//! The rebalancer's decision rule, priced in the paper's cost terms.
//!
//! Each tick the rebalancer hands `plan` the current map and a smoothed
//! per-range heat vector (ops observed since the last tick, EWMA'd).
//! The policy emits at most **one** action — keeping every decision a
//! single map transition makes the engine trivially correct and still
//! converges in a handful of ticks:
//!
//! - **Move** the hottest range off the hottest shard to the coldest
//!   one, when doing so actually lowers the peak *and* the projected
//!   benefit prices above a fixed migration cost. Benefit is the
//!   paper's processor-rent term: ops/tick relieved from the saturated
//!   worker × `$P/ROPS` × an amortization horizon. Cost is per-record
//!   secondary-storage traffic (copy out + replay in) plus a fixed
//!   coordination charge. The server wires these prices from
//!   `HardwareCatalog`, so a move is justified exactly when the
//!   capacity it frees is worth more than the I/O it spends.
//! - **Split** the hottest range at its byte midpoint when moving it
//!   whole would just relocate the hot spot (the range carries more
//!   heat than the hot/cold gap), so later ticks can move a half.
//! - **Merge** adjacent same-owner cold ranges when balanced, keeping
//!   the map from accreting splits forever.

use crate::map::{midpoint, PartitionMap};

/// Tunables and prices for `plan`. Defaults are deliberately generic;
/// the server overrides the prices from its hardware catalog.
#[derive(Debug, Clone)]
pub struct PolicyConfig {
    /// Do nothing below this many observed ops per tick (noise floor).
    pub min_tick_heat: u64,
    /// Act when the hottest shard exceeds `ratio × mean` shard heat.
    pub imbalance_ratio: f64,
    /// Hard cap on map ranges (bounds split growth and STATS size).
    pub max_ranges: usize,
    /// $ of processor rent per op/tick relieved (catalog `$P/ROPS`).
    pub op_benefit: f64,
    /// Ticks over which a move's benefit is amortized.
    pub benefit_horizon_ticks: f64,
    /// $ per record migrated (copy read + replay write).
    pub migration_cost_per_record: f64,
    /// $ fixed coordination cost per migration.
    pub migration_cost_fixed: f64,
    /// Rough record count across the store, for pricing a range copy as
    /// `est_records / ranges`. Zero means "unknown": only the fixed
    /// cost is charged.
    pub est_records: u64,
    /// Merge adjacent ranges whose combined heat is below this fraction
    /// of the mean per-range heat.
    pub cold_fraction: f64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            min_tick_heat: 64,
            imbalance_ratio: 1.3,
            max_ranges: 64,
            // Paper catalog: $P/ROPS = 7.5e-5, ss_exec ≈ 6.85e-4 and a
            // record moves through one read and one write.
            op_benefit: 7.5e-5,
            benefit_horizon_ticks: 200.0,
            migration_cost_per_record: 2.0 * 6.85e-4,
            migration_cost_fixed: 0.01,
            est_records: 0,
            cold_fraction: 0.05,
        }
    }
}

/// One map transition the engine should perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Split `range` at `at` (owner keeps both halves; metadata only).
    Split { range: usize, at: Vec<u8> },
    /// Migrate `range` to shard `to` (copy/freeze/replay/install).
    Move { range: usize, to: usize },
    /// Merge `range` with `range + 1` (same owner; metadata only).
    Merge { range: usize },
}

/// Pick at most one action for this tick. `heat[i]` is the smoothed
/// ops-per-tick of range `i` under `map`; `shards` is the worker count.
pub fn plan(map: &PartitionMap, heat: &[u64], shards: usize, cfg: &PolicyConfig) -> Option<Action> {
    if heat.len() != map.ranges() || shards == 0 {
        return None;
    }
    let mut shard_heat = vec![0u64; shards];
    for (r, h) in heat.iter().enumerate() {
        let owner = map.owner_of_range(r)?;
        *shard_heat.get_mut(owner)? += h;
    }
    let total: u64 = shard_heat.iter().sum();
    let mean = total as f64 / shards as f64;
    if total < cfg.min_tick_heat {
        return None;
    }

    let hot = argmax(&shard_heat)?;
    let cold = argmin(&shard_heat)?;
    let hot_heat = *shard_heat.get(hot)?;
    let cold_heat = *shard_heat.get(cold)?;

    if hot_heat as f64 > cfg.imbalance_ratio * mean && hot != cold {
        // Hottest range owned by the hottest shard.
        let r = (0..map.ranges())
            .filter(|&r| map.owner_of_range(r) == Some(hot))
            .max_by_key(|&r| heat.get(r).copied().unwrap_or(0))?;
        let r_heat = heat.get(r).copied().unwrap_or(0);
        // Moving r helps only if it narrows the hot/cold gap instead of
        // handing the cold shard a bigger problem than it solves.
        let gap = hot_heat.saturating_sub(cold_heat);
        if r_heat < gap {
            let per_range = if cfg.est_records == 0 || map.ranges() == 0 {
                0.0
            } else {
                cfg.est_records as f64 / map.ranges() as f64
            };
            let benefit = r_heat as f64 * cfg.op_benefit * cfg.benefit_horizon_ticks;
            let cost = cfg.migration_cost_fixed + per_range * cfg.migration_cost_per_record;
            if benefit > cost {
                return Some(Action::Move { range: r, to: cold });
            }
        } else if map.ranges() < cfg.max_ranges {
            let (lo, hi) = map.bounds(r)?;
            if let Some(at) = midpoint(lo, hi) {
                return Some(Action::Split { range: r, at });
            }
        }
        return None;
    }

    // Balanced: shrink the map if it carries dead weight.
    if map.ranges() > shards.max(1) {
        let mean_range = (total as f64 / map.ranges() as f64).max(1.0);
        for r in 0..map.ranges().saturating_sub(1) {
            if map.owner_of_range(r) != map.owner_of_range(r + 1) {
                continue;
            }
            let combined =
                heat.get(r).copied().unwrap_or(0) + heat.get(r + 1).copied().unwrap_or(0);
            if (combined as f64) < cfg.cold_fraction * mean_range {
                return Some(Action::Merge { range: r });
            }
        }
    }
    None
}

fn argmax(v: &[u64]) -> Option<usize> {
    v.iter()
        .enumerate()
        .max_by_key(|(_, h)| **h)
        .map(|(i, _)| i)
}

fn argmin(v: &[u64]) -> Option<usize> {
    v.iter()
        .enumerate()
        .min_by_key(|(_, h)| **h)
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cheap_moves() -> PolicyConfig {
        PolicyConfig {
            min_tick_heat: 10,
            est_records: 0,
            migration_cost_fixed: 0.0001,
            ..PolicyConfig::default()
        }
    }

    #[test]
    fn quiet_store_plans_nothing() {
        let map = PartitionMap::contiguous(vec![b"m".to_vec()]);
        assert_eq!(plan(&map, &[3, 2], 2, &cheap_moves()), None);
    }

    #[test]
    fn movable_hot_range_moves_to_coldest() {
        // Shard 0 owns two ranges, one hot; shard 1 idle.
        let map =
            PartitionMap::with_owners(vec![b"g".to_vec(), b"p".to_vec()], vec![0, 0, 1]).unwrap();
        let a = plan(&map, &[900, 600, 50], 2, &cheap_moves());
        assert_eq!(a, Some(Action::Move { range: 0, to: 1 }));
    }

    #[test]
    fn monolithic_hot_range_splits_first() {
        // One range carries nearly everything: moving it whole would
        // just relocate the hot spot, so the policy bisects it.
        let map = PartitionMap::contiguous(vec![b"m".to_vec()]);
        match plan(&map, &[1000, 10], 2, &cheap_moves()) {
            Some(Action::Split { range: 0, at }) => {
                assert!(at.as_slice() > b"".as_slice() && at.as_slice() < b"m".as_slice());
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn expensive_migration_is_refused() {
        let cfg = PolicyConfig {
            min_tick_heat: 10,
            est_records: 1_000_000,
            migration_cost_per_record: 1.0, // absurd price
            ..PolicyConfig::default()
        };
        let map =
            PartitionMap::with_owners(vec![b"g".to_vec(), b"p".to_vec()], vec![0, 0, 1]).unwrap();
        assert_eq!(plan(&map, &[900, 600, 50], 2, &cfg), None);
    }

    #[test]
    fn balanced_map_merges_cold_neighbors() {
        // Four ranges on two shards, balanced heat, ranges 0 and 1 cold
        // and co-owned.
        let map = PartitionMap::with_owners(
            vec![b"d".to_vec(), b"g".to_vec(), b"p".to_vec()],
            vec![0, 0, 1, 0],
        )
        .unwrap();
        let a = plan(&map, &[1, 1, 500, 480], 2, &cheap_moves());
        assert_eq!(a, Some(Action::Merge { range: 0 }));
    }

    #[test]
    fn respects_max_ranges() {
        let cfg = PolicyConfig {
            max_ranges: 2,
            ..cheap_moves()
        };
        let map = PartitionMap::contiguous(vec![b"m".to_vec()]);
        // Hot monolith wants a split but the map is at its cap.
        assert_eq!(plan(&map, &[1000, 10], 2, &cfg), None);
    }
}
