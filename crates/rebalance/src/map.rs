//! The versioned partition map: immutable epoch-stamped snapshots of
//! range → shard ownership, swapped atomically through [`SharedMap`].
//!
//! A map with `k` split keys has `k + 1` ranges; range `i` covers
//! `[splits[i-1], splits[i])` (the first range starts at the empty key,
//! the last is unbounded above). Unlike the static `Partitioner`, range
//! `i` is **not** required to live on shard `i`: `owners[i]` names the
//! owning shard, so ranges can split, merge, and move without the shard
//! count changing.
//!
//! This file is on the lint manifest's `[wire-path]` list: shard workers
//! consult the map on every request, so nothing here may panic — lookups
//! use `partition_point`/`get`, mutations return `Option` instead of
//! asserting, and lock poisoning is absorbed with the map structurally
//! intact (an immutable snapshot cannot be torn).

use std::sync::{Arc, Mutex};

/// An immutable range → shard assignment at one map epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    epoch: u64,
    /// Strictly ascending split keys; `splits.len() + 1` ranges.
    splits: Vec<Vec<u8>>,
    /// `owners[i]` = shard owning range `i`; `owners.len() == splits.len() + 1`.
    owners: Vec<usize>,
}

impl PartitionMap {
    /// Epoch 0, one unbounded range on shard 0.
    pub fn single() -> Self {
        PartitionMap {
            epoch: 0,
            splits: Vec::new(),
            owners: vec![0],
        }
    }

    /// Epoch 0 with the classic static layout: range `i` on shard `i`.
    /// This is the map a `Partitioner`'s split keys describe, so a server
    /// started without rebalancing routes identically to the old code.
    pub fn contiguous(splits: Vec<Vec<u8>>) -> Self {
        debug_assert!(splits.windows(2).all(|w| matches!(w, [a, b] if a < b)));
        let owners = (0..=splits.len()).collect();
        PartitionMap {
            epoch: 0,
            splits,
            owners,
        }
    }

    /// Epoch 0 with explicit ownership. `None` unless `owners` has
    /// exactly one entry per range and `splits` is strictly ascending.
    pub fn with_owners(splits: Vec<Vec<u8>>, owners: Vec<usize>) -> Option<Self> {
        if owners.len() != splits.len() + 1 {
            return None;
        }
        if !splits.windows(2).all(|w| matches!(w, [a, b] if a < b)) {
            return None;
        }
        Some(PartitionMap {
            epoch: 0,
            splits,
            owners,
        })
    }

    /// The map version. Strictly increases across `split`/`merge`/
    /// `reassign`; [`SharedMap::install`] refuses anything not newer.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of ranges.
    pub fn ranges(&self) -> usize {
        self.owners.len()
    }

    /// Highest owner index + 1 — the shard count the map assumes.
    pub fn shards(&self) -> usize {
        self.owners.iter().copied().max().map_or(1, |m| m + 1)
    }

    /// The split keys (strictly ascending).
    pub fn splits(&self) -> &[Vec<u8>] {
        &self.splits
    }

    /// Per-range owners.
    pub fn owners(&self) -> &[usize] {
        &self.owners
    }

    /// Index of the range containing `key`.
    pub fn range_of(&self, key: &[u8]) -> usize {
        self.splits.partition_point(|s| s.as_slice() <= key)
    }

    /// Owner of range `r`, if `r` is in bounds.
    pub fn owner_of_range(&self, r: usize) -> Option<usize> {
        self.owners.get(r).copied()
    }

    /// Owner of the range containing `key`.
    pub fn shard_of(&self, key: &[u8]) -> usize {
        self.owner_of_range(self.range_of(key)).unwrap_or(0)
    }

    /// `[lo, hi)` bounds of range `r` (`hi == None` means unbounded).
    pub fn bounds(&self, r: usize) -> Option<(&[u8], Option<&[u8]>)> {
        if r >= self.owners.len() {
            return None;
        }
        let lo: &[u8] = if r == 0 {
            b""
        } else {
            match self.splits.get(r - 1) {
                Some(s) => s.as_slice(),
                None => return None,
            }
        };
        let hi = self.splits.get(r).map(|s| s.as_slice());
        Some((lo, hi))
    }

    /// A new map at `epoch + 1` with range `r` split at `at` (both halves
    /// keep the owner). `None` if `at` is not strictly inside the range.
    pub fn split(&self, r: usize, at: Vec<u8>) -> Option<PartitionMap> {
        let (lo, hi) = self.bounds(r)?;
        if at.as_slice() <= lo {
            return None;
        }
        if let Some(h) = hi {
            if at.as_slice() >= h {
                return None;
            }
        }
        let owner = self.owner_of_range(r)?;
        let mut splits = self.splits.clone();
        splits.insert(r, at);
        let mut owners = self.owners.clone();
        owners.insert(r, owner);
        Some(PartitionMap {
            epoch: self.epoch + 1,
            splits,
            owners,
        })
    }

    /// A new map at `epoch + 1` with ranges `r` and `r + 1` merged.
    /// `None` unless both exist and share an owner (merging across
    /// owners would be a disguised migration — use `reassign` first).
    pub fn merge(&self, r: usize) -> Option<PartitionMap> {
        let a = self.owner_of_range(r)?;
        let b = self.owner_of_range(r + 1)?;
        if a != b || r >= self.splits.len() {
            return None;
        }
        let mut splits = self.splits.clone();
        splits.remove(r);
        let mut owners = self.owners.clone();
        owners.remove(r + 1);
        Some(PartitionMap {
            epoch: self.epoch + 1,
            splits,
            owners,
        })
    }

    /// A new map at `epoch + 1` with range `r` owned by shard `to`.
    /// Pure metadata — moving the data is the migration engine's job.
    pub fn reassign(&self, r: usize, to: usize) -> Option<PartitionMap> {
        let mut owners = self.owners.clone();
        *owners.get_mut(r)? = to;
        Some(PartitionMap {
            epoch: self.epoch + 1,
            splits: self.splits.clone(),
            owners,
        })
    }
}

/// A byte-string strictly between `lo` and `hi` (`None` = unbounded),
/// or `None` when the interval is too narrow to split. Treats keys as
/// base-256 fractions and halves their sum, so for fixed-width keys
/// sharing a prefix (the benchmark's `usr:` + big-endian id layout)
/// this is the id-space midpoint.
pub fn midpoint(lo: &[u8], hi: Option<&[u8]>) -> Option<Vec<u8>> {
    // Width: one digit past the longer bound so adjacent-looking bounds
    // still leave room for a fraction between them.
    let width = lo.len().max(hi.map_or(0, <[u8]>::len)) + 1;
    let digit = |s: Option<&[u8]>, i: usize, fill: u8| -> u16 {
        match s {
            Some(s) => u16::from(s.get(i).copied().unwrap_or(0)),
            None => u16::from(fill),
        }
    };
    // Sum lo + hi as base-256 digit strings (hi = None reads as 0xff…).
    let mut sum = vec![0u16; width];
    let mut carry = 0u16;
    for i in (0..width).rev() {
        let s = digit(Some(lo), i, 0) + digit(hi, i, 0xff) + carry;
        carry = s >> 8;
        if let Some(d) = sum.get_mut(i) {
            *d = s & 0xff;
        }
    }
    // Halve left-to-right, pushing the remainder down a digit.
    let mut mid = Vec::with_capacity(width);
    let mut rem = carry; // the overflow digit, halved first
    for d in sum {
        let cur = (rem << 8) | d;
        mid.push((cur >> 1) as u8);
        rem = cur & 1;
    }
    // Trim trailing zeros (shorter keys sort identically) then validate
    // strict betweenness; adjacent bounds have no midpoint.
    while mid.last() == Some(&0) {
        mid.pop();
    }
    if mid.as_slice() <= lo {
        return None;
    }
    if let Some(h) = hi {
        if mid.as_slice() >= h {
            return None;
        }
    }
    Some(mid)
}

/// The process-wide current map: an `Arc` snapshot swapped under a
/// mutex. Readers pay one uncontended lock to clone the `Arc`; the
/// single rebalancer thread is the only writer.
pub struct SharedMap {
    current: Mutex<Arc<PartitionMap>>,
}

impl SharedMap {
    /// Start at `map`.
    pub fn new(map: PartitionMap) -> Self {
        SharedMap {
            current: Mutex::new(Arc::new(map)),
        }
    }

    /// The current snapshot.
    pub fn load(&self) -> Arc<PartitionMap> {
        // A poisoned lock still guards a structurally valid Arc swap;
        // routing must keep working even if a sibling thread panicked.
        let g = self.current.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(&g)
    }

    /// Install `map` if it is strictly newer than the current epoch.
    /// Returns whether the swap happened.
    pub fn install(&self, map: Arc<PartitionMap>) -> bool {
        let mut g = self.current.lock().unwrap_or_else(|e| e.into_inner());
        if map.epoch() > g.epoch() {
            *g = map;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(s: &str) -> Vec<u8> {
        s.as_bytes().to_vec()
    }

    #[test]
    fn contiguous_matches_static_partitioner_routing() {
        let m = PartitionMap::contiguous(vec![k("g"), k("p")]);
        assert_eq!(m.ranges(), 3);
        assert_eq!(m.shard_of(b"a"), 0);
        assert_eq!(m.shard_of(b"g"), 1, "split key belongs to the right");
        assert_eq!(m.shard_of(b"h"), 1);
        assert_eq!(m.shard_of(b"z"), 2);
        assert_eq!(m.bounds(0), Some((&b""[..], Some(&b"g"[..]))));
        assert_eq!(m.bounds(2), Some((&b"p"[..], None)));
        assert_eq!(m.bounds(3), None);
    }

    #[test]
    fn split_keeps_owner_and_bumps_epoch() {
        let m = PartitionMap::contiguous(vec![k("m")]);
        let s = m.split(0, k("f")).unwrap();
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.ranges(), 3);
        assert_eq!(s.owners(), &[0, 0, 1]);
        assert_eq!(s.shard_of(b"a"), 0);
        assert_eq!(s.shard_of(b"g"), 0);
        assert_eq!(s.shard_of(b"n"), 1);
        // Out-of-range split points refused.
        assert!(m.split(0, k("m")).is_none());
        assert!(m.split(0, k("")).is_none());
        assert!(m.split(1, k("a")).is_none());
    }

    #[test]
    fn merge_requires_shared_owner() {
        let m = PartitionMap::contiguous(vec![k("m")]);
        assert!(m.merge(0).is_none(), "owners differ");
        let s = m.split(0, k("f")).unwrap();
        let g = s.merge(0).unwrap();
        assert_eq!(g.epoch(), 2);
        assert_eq!(g.splits(), &[k("m")]);
        assert_eq!(g.owners(), &[0, 1]);
    }

    #[test]
    fn reassign_moves_ownership_only() {
        let m = PartitionMap::contiguous(vec![k("m")]);
        let r = m.reassign(0, 1).unwrap();
        assert_eq!(r.epoch(), 1);
        assert_eq!(r.shard_of(b"a"), 1);
        assert_eq!(r.shard_of(b"z"), 1);
        assert_eq!(r.splits(), m.splits(), "boundaries untouched");
        assert!(m.reassign(9, 1).is_none());
    }

    #[test]
    fn shared_map_refuses_stale_installs() {
        let sm = SharedMap::new(PartitionMap::contiguous(vec![k("m")]));
        let v0 = sm.load();
        let v1 = Arc::new(v0.reassign(0, 1).unwrap());
        assert!(sm.install(Arc::clone(&v1)));
        assert!(!sm.install(Arc::clone(&v1)), "same epoch refused");
        assert!(!sm.install(v0), "older epoch refused");
        assert_eq!(sm.load().epoch(), 1);
    }

    #[test]
    fn midpoint_bisects_fixed_width_keys() {
        let lo = vec![0, 0, 0, 0];
        let hi = vec![0, 0, 4, 0];
        let mid = midpoint(&lo, Some(&hi)).unwrap();
        assert_eq!(mid, vec![0, 0, 2]);
        assert!(mid.as_slice() > lo.as_slice() && mid.as_slice() < hi.as_slice());
    }

    #[test]
    fn midpoint_handles_unbounded_and_empty() {
        let mid = midpoint(b"", None).unwrap();
        assert!(!mid.is_empty());
        let again = midpoint(b"", Some(&mid)).unwrap();
        assert!(again.as_slice() < mid.as_slice());
    }

    #[test]
    fn midpoint_refuses_adjacent_bounds() {
        // [x, x+ε): nothing strictly between a key and itself.
        assert!(midpoint(b"abc", Some(b"abc")).is_none());
        // Repeated bisection keeps producing strictly interior points.
        let lo = vec![7u8];
        let mut hi = vec![8u8];
        for _ in 0..64 {
            match midpoint(&lo, Some(&hi)) {
                Some(m) => {
                    assert!(m.as_slice() > lo.as_slice() && m.as_slice() < hi.as_slice());
                    hi = m;
                }
                None => break,
            }
        }
    }
}
