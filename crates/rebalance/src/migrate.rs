//! The migration handoff protocol: per-shard write gates and the
//! [`Router`] every shard worker consults before touching a key.
//!
//! A range move is **copy → freeze → replay tail → install new epoch**,
//! with no stop-the-world:
//!
//! 1. `begin` arms the source shard's [`WriteGate`] with a
//!    [`RangeLease`]. From then on every write the worker admits inside
//!    the leased range is mirrored into the gate's *tail* before being
//!    applied to the source backend.
//! 2. The migrator copies the range from the source backend. Writes
//!    racing the copy are covered either by the copy itself or by the
//!    tail — see the interleaving argument below.
//! 3. `freeze` seals the lease: the tail is stolen, and further writes
//!    in the range are refused with `Moved(next_epoch, target)`. Reads
//!    keep being served from the source — its copy of the range is
//!    final (nothing can write it anywhere), so those reads stay
//!    linearizable.
//! 4. The migrator replays the tail onto the target (last writer wins),
//!    installs the `reassign`ed map at the lease's `next_epoch`, and
//!    `finish`es the gate. Stragglers still queued at the source drain
//!    normally and get `Moved` from the router's ownership check.
//!
//! **Why no write is lost or double-applied.** [`Router::admit_write`]
//! makes its decision while holding the gate lock, and the returned
//! [`WritePermit`] keeps holding it until the backend apply completes:
//!
//! - If the gate is *armed*, the write lands in the tail (Copying) or is
//!   refused (Frozen). The tail is stolen under the same lock, so every
//!   mirrored write is either applied before `freeze` returns or never
//!   admitted.
//! - If the gate is *empty*, either the migration has not begun — then
//!   `begin` blocks on the gate lock until the in-flight apply finishes,
//!   so the copy (which starts strictly after `begin`) observes it — or
//!   the migration already finished, in which case the new map was
//!   installed before `finish` released the lock we now hold, and the
//!   ownership check (performed under that same lock) answers `Moved`.
//!
//! Writes to unleased ranges pass straight through; their only cost is
//! the uncontended gate lock. Reads never take the gate: the map
//! ownership check alone is correct for them (frozen-window reads from
//! the source are reads of immutable data).
//!
//! The source keeps its (now stale) copy of a moved range: a parked
//! asynchronous miss admitted before the freeze may still complete from
//! the source store, and deleting under it would turn a valid stale-free
//! read into a wrong `None`. A tombstone sweep once parked misses drain
//! is future work; the leftover bytes are invisible to routing.
//!
//! This file is on the `[wire-path]` lint list: nothing here may panic.

use crate::heat::HeatTracker;
use crate::map::{PartitionMap, SharedMap};
use std::sync::{Arc, Mutex, MutexGuard};

/// One key/value write mirrored into the tail (`None` = delete).
pub type TailEntry = (Vec<u8>, Option<Vec<u8>>);

/// The range a migration is moving and where it is going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeLease {
    /// Inclusive lower bound.
    pub lo: Vec<u8>,
    /// Exclusive upper bound (`None` = unbounded).
    pub hi: Option<Vec<u8>>,
    /// Shard currently owning the range.
    pub source: usize,
    /// Shard the range is moving to.
    pub target: usize,
    /// Epoch the reassigned map will carry; quoted in `Moved` replies so
    /// clients can tell progress from churn.
    pub next_epoch: u64,
}

impl RangeLease {
    /// Whether `key` falls inside the leased range.
    pub fn contains(&self, key: &[u8]) -> bool {
        key >= self.lo.as_slice() && self.hi.as_deref().is_none_or(|h| key < h)
    }
}

struct Active {
    lease: RangeLease,
    frozen: bool,
    tail: Vec<TailEntry>,
}

/// Serializes one shard worker's writes with migration phase changes.
pub struct WriteGate {
    inner: Mutex<Option<Active>>,
}

impl Default for WriteGate {
    fn default() -> Self {
        Self::new()
    }
}

/// Holds the gate lock across a backend apply so `begin`/`freeze`
/// cannot interleave mid-write. Drop promptly after the apply.
pub struct WritePermit<'a> {
    _guard: MutexGuard<'a, Option<Active>>,
}

/// The worker's verdict for one write.
pub enum WriteAdmission<'a> {
    /// Apply the write, then drop the permit.
    Clear(WritePermit<'a>),
    /// The key no longer (or soon won't) live here; answer the client
    /// with `MOVED(epoch, shard)` and do not touch the backend.
    Moved {
        /// Map epoch the redirect is valid for.
        epoch: u64,
        /// Shard that owns (or is receiving) the key.
        shard: usize,
    },
}

fn lock_gate<'a>(m: &'a Mutex<Option<Active>>) -> MutexGuard<'a, Option<Active>> {
    // A poisoned gate still guards structurally valid state; refusing
    // to route writes would turn one panicked thread into an outage.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl WriteGate {
    /// An unarmed gate.
    pub fn new() -> Self {
        WriteGate {
            inner: Mutex::new(None),
        }
    }

    /// Arm the gate with `lease`. `false` if a migration is already
    /// active on this shard (one at a time keeps the argument simple).
    pub fn begin(&self, lease: RangeLease) -> bool {
        let mut g = lock_gate(&self.inner);
        if g.is_some() {
            return false;
        }
        *g = Some(Active {
            lease,
            frozen: false, // Copying phase
            tail: Vec::new(),
        });
        true
    }

    /// Seal the lease and steal the tail. `None` if the gate is not
    /// armed. After this, writes in the range are refused until
    /// `finish`.
    pub fn freeze(&self) -> Option<Vec<TailEntry>> {
        let mut g = lock_gate(&self.inner);
        let a = g.as_mut()?;
        a.frozen = true;
        Some(std::mem::take(&mut a.tail))
    }

    /// Disarm the gate. The caller must have installed the new map
    /// first; the docs above explain why that order is load-bearing.
    pub fn finish(&self) {
        let mut g = lock_gate(&self.inner);
        *g = None;
    }

    /// Whether a migration is in flight on this shard.
    pub fn active(&self) -> bool {
        lock_gate(&self.inner).is_some()
    }
}

/// The placement surface shard workers and the rebalancer share: the
/// current map, per-range heat, and one write gate per shard.
pub struct Router {
    map: SharedMap,
    heat: HeatTracker,
    gates: Vec<Arc<WriteGate>>,
}

impl Router {
    /// A router over `map` for `shards` workers.
    pub fn new(map: PartitionMap, shards: usize) -> Self {
        Router {
            map: SharedMap::new(map),
            heat: HeatTracker::new(),
            gates: (0..shards.max(1))
                .map(|_| Arc::new(WriteGate::new()))
                .collect(),
        }
    }

    /// The versioned map.
    pub fn map(&self) -> &SharedMap {
        &self.map
    }

    /// The per-range heat counters.
    pub fn heat(&self) -> &HeatTracker {
        &self.heat
    }

    /// Shard `i`'s write gate.
    pub fn gate(&self, i: usize) -> Option<&Arc<WriteGate>> {
        self.gates.get(i)
    }

    /// Number of shards the router was built for.
    pub fn shards(&self) -> usize {
        self.gates.len()
    }

    /// Admit or refuse a write arriving at shard `shard`. The map
    /// ownership check runs under the gate lock — see the module docs
    /// for why the order matters. `value` is the post-image (`None`
    /// for deletes) and is what a copying lease mirrors into its tail.
    pub fn admit_write(
        &self,
        shard: usize,
        key: &[u8],
        value: Option<&[u8]>,
    ) -> WriteAdmission<'_> {
        let Some(gate) = self.gates.get(shard) else {
            // Unknown shard index: refuse toward the map's real owner.
            let map = self.map.load();
            return WriteAdmission::Moved {
                epoch: map.epoch(),
                shard: map.shard_of(key),
            };
        };
        let mut g = lock_gate(&gate.inner);
        let map = self.map.load();
        let owner = map.shard_of(key);
        if owner != shard {
            return WriteAdmission::Moved {
                epoch: map.epoch(),
                shard: owner,
            };
        }
        let verdict = match g.as_mut() {
            Some(a) if a.lease.contains(key) => {
                if a.frozen {
                    Some((a.lease.next_epoch, a.lease.target))
                } else {
                    a.tail.push((key.to_vec(), value.map(<[u8]>::to_vec)));
                    None
                }
            }
            _ => None,
        };
        match verdict {
            Some((epoch, shard)) => WriteAdmission::Moved { epoch, shard },
            None => WriteAdmission::Clear(WritePermit { _guard: g }),
        }
    }

    /// Ownership check for a read arriving at shard `shard`. `None`
    /// means serve it here; `Some((epoch, owner))` means answer
    /// `MOVED`. Reads never take the gate (module docs).
    pub fn read_misroute(&self, shard: usize, key: &[u8]) -> Option<(u64, usize)> {
        let map = self.map.load();
        let owner = map.shard_of(key);
        if owner != shard {
            Some((map.epoch(), owner))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lease() -> RangeLease {
        RangeLease {
            lo: b"f".to_vec(),
            hi: Some(b"m".to_vec()),
            source: 0,
            target: 1,
            next_epoch: 1,
        }
    }

    #[test]
    fn lease_bounds_are_half_open() {
        let l = lease();
        assert!(!l.contains(b"e"));
        assert!(l.contains(b"f"));
        assert!(l.contains(b"lzzz"));
        assert!(!l.contains(b"m"));
        let unbounded = RangeLease {
            hi: None,
            ..lease()
        };
        assert!(unbounded.contains(b"zzzz"));
    }

    #[test]
    fn copying_mirrors_then_frozen_refuses() {
        let r = Router::new(PartitionMap::contiguous(vec![b"m".to_vec()]), 2);
        let gate = r.gate(0).unwrap().clone();
        assert!(gate.begin(lease()));
        assert!(!gate.begin(lease()), "one migration at a time");

        // In-range write during the copy: admitted and tailed.
        match r.admit_write(0, b"g", Some(b"v1")) {
            WriteAdmission::Clear(p) => drop(p),
            WriteAdmission::Moved { .. } => panic!("copying phase must admit"),
        }
        // Out-of-range write: admitted, not tailed.
        match r.admit_write(0, b"a", Some(b"x")) {
            WriteAdmission::Clear(p) => drop(p),
            WriteAdmission::Moved { .. } => panic!("unleased key must pass"),
        }
        let tail = gate.freeze().unwrap();
        assert_eq!(tail, vec![(b"g".to_vec(), Some(b"v1".to_vec()))]);

        // Frozen: in-range writes bounce toward the target.
        match r.admit_write(0, b"g", Some(b"v2")) {
            WriteAdmission::Moved { epoch, shard } => {
                assert_eq!((epoch, shard), (1, 1));
            }
            WriteAdmission::Clear(_) => panic!("frozen range must refuse"),
        }
        gate.finish();
        assert!(!gate.active());
        match r.admit_write(0, b"g", Some(b"v3")) {
            WriteAdmission::Clear(p) => drop(p),
            WriteAdmission::Moved { .. } => panic!("finished gate must admit again"),
        };
    }

    #[test]
    fn ownership_check_beats_gate_state() {
        let map = PartitionMap::contiguous(vec![b"m".to_vec()]);
        let r = Router::new(map, 2);
        let moved = Arc::new(r.map().load().reassign(0, 1).unwrap());
        assert!(r.map().install(moved));
        // Shard 0 no longer owns "g": write and read both bounce.
        match r.admit_write(0, b"g", Some(b"v")) {
            WriteAdmission::Moved { epoch, shard } => assert_eq!((epoch, shard), (1, 1)),
            WriteAdmission::Clear(_) => panic!("stale-routed write must bounce"),
        }
        assert_eq!(r.read_misroute(0, b"g"), Some((1, 1)));
        assert_eq!(r.read_misroute(1, b"g"), None);
    }

    #[test]
    fn router_fans_out_one_gate_per_shard() {
        let r = Router::new(PartitionMap::contiguous(vec![b"m".to_vec()]), 2);
        assert_eq!(r.shards(), 2);
        assert!(r.gate(1).is_some());
        assert!(r.gate(2).is_none());
    }
}
