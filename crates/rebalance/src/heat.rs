//! Per-range access heat, recorded into the global [`dcs_telemetry`]
//! registry so STATS exposes it like every other metric.
//!
//! The tracker keeps one registry counter per range of the *current*
//! map epoch, named `rebalance.range_heat.N`. Counters are monotone —
//! the rebalancer works with per-tick deltas (and an EWMA over them)
//! rather than decaying the counters in place, so the cumulative values
//! the operator sees stay meaningful. When the map epoch changes the
//! counter set is re-registered for the new range count; the rebalancer
//! resets its delta baseline on epoch change because range indices mean
//! something different under the new map.

use crate::map::PartitionMap;
use dcs_telemetry::Counter;
use std::sync::{Arc, Mutex};

struct Inner {
    epoch: u64,
    counters: Vec<Arc<Counter>>,
}

/// Range-indexed op counters tied to a map epoch.
pub struct HeatTracker {
    inner: Mutex<Inner>,
}

impl Default for HeatTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl HeatTracker {
    /// An empty tracker; counters materialize at first `record`.
    pub fn new() -> Self {
        HeatTracker {
            inner: Mutex::new(Inner {
                epoch: u64::MAX,
                counters: Vec::new(),
            }),
        }
    }

    fn sync_epoch(inner: &mut Inner, map: &PartitionMap) {
        if inner.epoch != map.epoch() || inner.counters.len() != map.ranges() {
            inner.epoch = map.epoch();
            inner.counters = (0..map.ranges())
                .map(|i| dcs_telemetry::global().counter(&format!("rebalance.range_heat.{i}")))
                .collect();
        }
    }

    /// Count one op against range `range` of `map`. Cheap: one short
    /// lock plus a striped counter bump; re-registration only happens
    /// on an epoch change.
    pub fn record(&self, map: &PartitionMap, range: usize) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Self::sync_epoch(&mut g, map);
        if let Some(c) = g.counters.get(range) {
            c.incr();
        }
    }

    /// Cumulative per-range totals under `map`'s epoch (zeros if the
    /// tracker has not seen this epoch yet — callers diff successive
    /// snapshots for rates).
    pub fn totals(&self, map: &PartitionMap) -> Vec<u64> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Self::sync_epoch(&mut g, map);
        g.counters.iter().map(|c| c.value()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_range_and_survives_epoch_change() {
        let t = HeatTracker::new();
        let m = PartitionMap::contiguous(vec![b"m".to_vec()]);
        let base = t.totals(&m);
        t.record(&m, 0);
        t.record(&m, 0);
        t.record(&m, 1);
        t.record(&m, 9); // out of range: ignored
        let now = t.totals(&m);
        assert_eq!(now[0] - base[0], 2);
        assert_eq!(now[1] - base[1], 1);

        // New epoch with more ranges re-registers without panicking.
        let m2 = m.split(0, b"f".to_vec()).unwrap();
        let b2 = t.totals(&m2);
        t.record(&m2, 2);
        let n2 = t.totals(&m2);
        assert_eq!(n2.len(), 3);
        assert_eq!(n2[2] - b2[2], 1);
    }
}
