//! Dynamic data placement for the sharded server: a versioned range →
//! shard map, per-range heat tracking, and the admission machinery that
//! lets a range move between shards while writes keep flowing.
//!
//! The static split-key `Partitioner` pins every key range to one shard
//! for the life of the process, so a Zipfian head lands on one worker
//! and the other cores idle — capacity the paper's cost model charges
//! for but the deployment cannot use. This crate makes placement a
//! first-class, *versioned* object:
//!
//! - [`PartitionMap`] — an immutable epoch-stamped snapshot of
//!   range → shard ownership. Mutations (`split`, `merge`, `reassign`)
//!   return a new map at `epoch + 1`; [`SharedMap`] swaps snapshots
//!   atomically and refuses stale installs.
//! - [`HeatTracker`] — per-range op counters registered in the global
//!   [`dcs_telemetry`] registry (`rebalance.range_heat.N`), so STATS
//!   exposes them like every other metric and the rebalancer prices
//!   decisions from the same numbers the operator sees.
//! - [`Router`] + [`WriteGate`] — the migration handoff. A range move
//!   is copy → freeze → replay-tail → install-new-epoch; the gate
//!   serializes each shard worker's writes with those phase changes so
//!   no write can slip between the copy and the tail (see
//!   `migrate.rs` for the interleaving argument).
//! - [`policy`] — the cost-model decision rule: move a range when the
//!   heat delta priced at the main-memory op rate outweighs a fixed
//!   migration cost, split when moving the hottest range alone would
//!   just relocate the hot spot, merge adjacent cold ranges to keep
//!   the map small.
//!
//! The crate is deliberately mechanism-only: it never touches sockets,
//! mailboxes, or backends. `dcs-server` owns the migration *engine*
//! (copying data, replaying tails, WAL import) and the background
//! rebalancer thread; this crate owns the data structures and the
//! admission protocol they must agree on.

mod heat;
mod map;
mod migrate;
pub mod policy;

pub use heat::HeatTracker;
pub use map::{midpoint, PartitionMap, SharedMap};
pub use migrate::{RangeLease, Router, TailEntry, WriteAdmission, WriteGate, WritePermit};
pub use policy::{plan, Action, PolicyConfig};
