//! The deterministic virtual-thread scheduler.
//!
//! # Model
//!
//! A *scenario* is a closure that spawns threads through
//! [`crate::thread::spawn`] and synchronizes through the instrumented shims
//! in [`crate::sync`]. While a scenario runs inside an `Execution`, every
//! shim operation is a *schedule point*: the executing thread stops, the
//! scheduler picks which thread runs next (seeded PRNG or PCT priorities),
//! and exactly one thread proceeds. Threads are real OS threads, but at most
//! one is ever runnable at a time — concurrency is *simulated*, which makes
//! every run with the same seed byte-for-byte identical and hence
//! replayable.
//!
//! Outside an execution (e.g. when the `check` feature is enabled by cargo's
//! feature unification but a plain unit test is running) every shim degrades
//! to the underlying `std` primitive with zero scheduling: `schedule_point`
//! is a cheap thread-local check.
//!
//! # Why OS threads and a condvar, not coroutines
//!
//! Scenario code is ordinary Rust calling into `dcs-ebr` / `dcs-bwtree`;
//! we cannot suspend it mid-stack without either green-thread machinery or
//! per-crate async rewrites. Parking all-but-one real thread on a condvar
//! gives the same serialized semantics with no changes to the code under
//! test beyond the `sync` facade swap.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::shadow::ShadowHeap;

/// Scheduling policy for one execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Uniform random choice among runnable threads at every schedule point.
    Random,
    /// Probabilistic concurrency testing (Burckhardt et al., ASPLOS'10):
    /// threads get random priorities; the highest-priority runnable thread
    /// always runs, and at `depth - 1` pre-chosen schedule points the running
    /// thread's priority is dropped below everyone else's. Finds bugs that
    /// need few (d) ordered preemptions with provable probability.
    Pct {
        /// Bug depth budget: number of priority-change points plus one.
        depth: u32,
    },
}

/// Knobs for [`explore_with`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Seeds to run: `0..n` runs `n` independent deterministic schedules.
    pub seeds: std::ops::Range<u64>,
    /// Scheduling policy.
    pub policy: Policy,
    /// Abort a run (as a failure) after this many schedule points — a
    /// livelock backstop. Generous by default.
    pub max_steps: u64,
    /// When true, after each seed the shadow heap must be empty (everything
    /// retired was physically freed). Enable only for scenarios that tear
    /// down their own `Collector`; the process-global collector legitimately
    /// keeps garbage across executions.
    pub leak_check: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seeds: 0..200,
            policy: Policy::Random,
            max_steps: 3_000_000,
            leak_check: false,
        }
    }
}

/// Outcome of a failed seed, carried in the panic message of `explore`.
#[derive(Debug)]
pub struct Failure {
    /// Seed whose schedule triggered the failure.
    pub seed: u64,
    /// Policy active for that seed.
    pub policy: Policy,
    /// Schedule points executed before the failure.
    pub step: u64,
    /// Human-readable description (panic payload or invariant report).
    pub message: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {} ({:?}, step {}): {}",
            self.seed, self.policy, self.step, self.message
        )
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting for another virtual thread to finish (`JoinHandle::join`).
    BlockedOnJoin(usize),
    /// Returned or unwound; never scheduled again.
    Finished,
}

struct ThreadInfo {
    status: Status,
    /// PCT priority; higher runs first. Unused under `Policy::Random`.
    priority: u64,
}

struct ExecState {
    threads: Vec<ThreadInfo>,
    /// Index of the one thread allowed to run.
    current: usize,
    rng: SmallRng,
    policy: Policy,
    steps: u64,
    max_steps: u64,
    /// Pre-drawn PCT priority-change points (step numbers).
    change_points: Vec<u64>,
    /// First failure wins; all other threads unwind when they see it.
    failure: Option<String>,
    /// OS handles of spawned (non-root) virtual threads, joined at run end.
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

impl ExecState {
    fn runnable(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Picks the next thread to run; `None` means nothing is runnable.
    fn pick_next(&mut self) -> Option<usize> {
        let runnable = self.runnable();
        if runnable.is_empty() {
            return None;
        }
        match self.policy {
            Policy::Random => Some(runnable[self.rng.gen_range(0..runnable.len())]),
            Policy::Pct { .. } => {
                if self.change_points.contains(&self.steps) {
                    // Demote the running thread below every other priority.
                    let min = self.threads.iter().map(|t| t.priority).min().unwrap_or(1);
                    self.threads[self.current].priority = min.saturating_sub(1);
                }
                runnable
                    .into_iter()
                    .max_by_key(|&i| self.threads[i].priority)
            }
        }
    }
}

/// One deterministic run of a scenario. Shared by all its virtual threads.
pub(crate) struct Execution {
    state: Mutex<ExecState>,
    cv: Condvar,
    seed: u64,
    pub(crate) shadow: ShadowHeap,
}

/// Message used when a thread unwinds because a *different* thread failed.
/// Recognized (and swallowed) by the spawn wrapper and the root driver.
const ABORT_MSG: &str = "dcs-check: execution aborted";

thread_local! {
    /// Set while the current OS thread is a virtual thread of an execution.
    static CONTEXT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };

    /// Sticky: set the first time this OS thread becomes a virtual thread,
    /// never cleared. A managed thread clears `CONTEXT` before it exits, but
    /// its remaining thread-local destructors (e.g. the EBR local handle)
    /// still run instrumented operations; those must keep degrading to raw
    /// std behavior, not trip [`assert_not_foreign`].
    static WAS_MANAGED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

/// True when the calling OS thread is a managed virtual thread.
pub fn in_execution() -> bool {
    CONTEXT.with(|c| c.borrow().is_some())
}

/// Count of executions currently running in this process. Used by
/// [`assert_not_foreign`] to detect instrumented operations escaping the
/// virtual scheduler. (The exploration lock serializes executions, so this
/// is effectively 0 or 1; a counter keeps the accounting honest anyway.)
static ACTIVE_EXECUTIONS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Decrements [`ACTIVE_EXECUTIONS`] on drop, so a panicking `run_one` can
/// never leave the counter stuck high.
struct ActiveGuard;

impl ActiveGuard {
    fn enter() -> Self {
        ACTIVE_EXECUTIONS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        ActiveGuard
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        ACTIVE_EXECUTIONS.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Debug-build trap for the silent-degrade footgun: an instrumented shim
/// operation running on an OS thread the scheduler does not manage *while an
/// execution is active*. That thread was almost certainly spawned with
/// `std::thread::spawn` from inside a scenario — its operations run with
/// real, unexplored concurrency and the schedule silently loses coverage
/// (and determinism, since the foreign thread races the virtual ones).
///
/// Panicking the foreign thread surfaces the bug at the first escaped
/// operation instead. Release builds skip the check: the counter read would
/// tax every uninstrumented-path shim call in benchmarks.
#[inline]
pub(crate) fn assert_not_foreign() {
    #[cfg(debug_assertions)]
    if ACTIVE_EXECUTIONS.load(std::sync::atomic::Ordering::SeqCst) > 0
        // `try_with`: this can run from thread-local destructors after the
        // flag itself was dropped; be permissive then (a managed thread in
        // teardown), never abort inside TLS destruction.
        && !WAS_MANAGED.try_with(|f| f.get()).unwrap_or(true)
    {
        panic!(
            "dcs-check: instrumented operation on a thread outside the virtual scheduler \
             while an execution is active. Scenario code must spawn threads with \
             `dcs_check::thread::spawn`, not `std::thread::spawn` — a std thread runs \
             unscheduled and silently degrades the exploration. (Unit tests that use \
             instrumented types outside `explore` are fine; they only trip this if they \
             run concurrently with an execution in the same process.)"
        );
    }
}

/// The scheduling hook every instrumented shim operation calls.
///
/// Outside an execution this is a thread-local read and nothing more —
/// except in debug builds, where a concurrent active execution means this
/// thread escaped the scheduler; see `assert_not_foreign`.
#[inline]
pub fn schedule_point() {
    if let Some((exec, me)) = current_ctx() {
        exec.yield_at(me);
    } else {
        assert_not_foreign();
    }
}

/// Executes `f` with the shadow heap of the active execution, if any.
pub(crate) fn with_shadow<R>(f: impl FnOnce(&ShadowHeap, u64) -> R) -> Option<R> {
    current_ctx().map(|(exec, _)| f(&exec.shadow, exec.seed))
}

/// Reports an invariant violation detected by a checker (shadow heap,
/// auditor) from inside a virtual thread. Unwinds the calling thread.
pub(crate) fn fail_current(message: String) -> ! {
    if let Some((exec, _)) = current_ctx() {
        exec.record_failure(&message);
    }
    panic!("{message}");
}

impl Execution {
    fn new(seed: u64, policy: Policy, max_steps: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let change_points = match policy {
            Policy::Random => Vec::new(),
            Policy::Pct { depth } => {
                // Draw d-1 change points over a horizon of the first 10k
                // steps; runs shorter than the horizon simply see fewer
                // preemptions, which PCT tolerates.
                (1..depth).map(|_| rng.gen_range(0..10_000u64)).collect()
            }
        };
        Execution {
            state: Mutex::new(ExecState {
                threads: Vec::new(),
                current: 0,
                rng,
                policy,
                steps: 0,
                max_steps,
                change_points,
                failure: None,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
            seed,
            shadow: ShadowHeap::new(),
        }
    }

    fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        let priority = st.rng.gen_range(2..u64::MAX);
        st.threads.push(ThreadInfo {
            status: Status::Runnable,
            priority,
        });
        st.threads.len() - 1
    }

    /// Propagate an execution failure out of the current thread.
    ///
    /// Must never panic while the thread is already unwinding (destructors
    /// run schedule points; a second panic would abort the process), so in
    /// that case it silently returns: once `failure` is set, every park
    /// condition lets threads drain, and determinism no longer matters.
    fn abort_current() {
        if !std::thread::panicking() {
            panic!("{ABORT_MSG}");
        }
    }

    /// Core handoff: advance the schedule one step and wait until chosen.
    fn yield_at(self: &Arc<Self>, me: usize) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_some() {
            drop(st);
            Self::abort_current();
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!(
                "exceeded max_steps ({}) — livelock or unbounded retry loop",
                st.max_steps
            );
            st.failure = Some(msg);
            self.cv.notify_all();
            drop(st);
            Self::abort_current();
            return;
        }
        match st.pick_next() {
            Some(next) => st.current = next,
            None => unreachable!("yield_at caller is runnable"),
        }
        self.cv.notify_all();
        while st.current != me && st.failure.is_none() {
            st = self.cv.wait(st).unwrap();
        }
        if st.failure.is_some() {
            drop(st);
            Self::abort_current();
        }
    }

    /// Parks a freshly spawned virtual thread until the scheduler elects it.
    fn wait_until_elected(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        while st.current != me && st.failure.is_none() {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Marks `me` finished and hands control to the next runnable thread.
    fn finish_thread(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.threads[me].status = Status::Finished;
        // Wake joiners.
        for t in st.threads.iter_mut() {
            if t.status == Status::BlockedOnJoin(me) {
                t.status = Status::Runnable;
            }
        }
        if st.current == me {
            match st.pick_next() {
                Some(next) => st.current = next,
                None => {
                    // Nothing runnable. Either everyone is finished (normal
                    // teardown) or the rest are blocked on joins: deadlock.
                    if st.threads.iter().any(|t| t.status != Status::Finished)
                        && st.failure.is_none()
                    {
                        st.failure =
                            Some("deadlock: all remaining threads blocked on join".to_string());
                    }
                }
            }
        }
        self.cv.notify_all();
    }

    /// Blocks `me` until `target` finishes, scheduling others meanwhile.
    fn join_thread(self: &Arc<Self>, me: usize, target: usize) {
        let mut st = self.state.lock().unwrap();
        if st.threads[target].status != Status::Finished {
            st.threads[me].status = Status::BlockedOnJoin(target);
            match st.pick_next() {
                Some(next) => st.current = next,
                None => {
                    let msg =
                        format!("deadlock: thread {me} joins {target} but no thread is runnable");
                    st.failure = Some(msg);
                    self.cv.notify_all();
                    drop(st);
                    Self::abort_current();
                    return;
                }
            }
            self.cv.notify_all();
            while st.current != me && st.failure.is_none() {
                st = self.cv.wait(st).unwrap();
            }
        }
        if st.failure.is_some() {
            drop(st);
            Self::abort_current();
        }
    }

    fn record_failure(&self, message: &str) {
        let mut st = self.state.lock().unwrap();
        if st.failure.is_none() {
            st.failure = Some(message.to_string());
        }
        self.cv.notify_all();
    }

    fn panic_payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    }
}

/// Join handle for a scheduler-managed virtual thread; created by
/// [`crate::thread::spawn`] when inside an execution.
pub struct ManagedHandle<T> {
    exec: Arc<Execution>,
    id: usize,
    result: Arc<Mutex<Option<T>>>,
}

impl<T> ManagedHandle<T> {
    pub(crate) fn join(self) -> std::thread::Result<T> {
        let (_, me) = current_ctx().expect("join of managed thread outside execution");
        self.exec.join_thread(me, self.id);
        match self.result.lock().unwrap().take() {
            Some(v) => Ok(v),
            // The target panicked; surface a boxed message like std does.
            None => {
                Err(Box::new("managed thread panicked".to_string())
                    as Box<dyn std::any::Any + Send>)
            }
        }
    }
}

pub(crate) fn spawn_managed<T, F>(f: F) -> Option<ManagedHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, _me) = current_ctx()?;
    let id = exec.register_thread();
    let result = Arc::new(Mutex::new(None));
    let slot = result.clone();
    let exec2 = exec.clone();
    let os = std::thread::Builder::new()
        .name(format!("dcs-check-vt{id}"))
        .spawn(move || {
            CONTEXT.with(|c| *c.borrow_mut() = Some((exec2.clone(), id)));
            WAS_MANAGED.with(|f| f.set(true));
            exec2.wait_until_elected(id);
            let outcome = catch_unwind(AssertUnwindSafe(f));
            match outcome {
                Ok(v) => *slot.lock().unwrap() = Some(v),
                Err(p) => {
                    let msg = Execution::panic_payload_to_string(&*p);
                    if msg != ABORT_MSG {
                        exec2.record_failure(&format!("thread {id} panicked: {msg}"));
                    }
                }
            }
            exec2.finish_thread(id);
            CONTEXT.with(|c| *c.borrow_mut() = None);
        })
        .expect("spawn virtual thread");
    exec.state.lock().unwrap().os_handles.push(os);
    Some(ManagedHandle { exec, id, result })
}

/// Serializes executions process-wide. Scenarios routinely share process
/// globals (the default EBR collector); two concurrent executions would
/// perturb each other's schedules and break determinism.
///
/// `pub(crate)` so unit tests that exercise shims *outside* an execution can
/// hold it too — otherwise a concurrently running execution in the same test
/// process would (correctly) trip [`assert_not_foreign`] on them.
pub(crate) fn exploration_lock() -> &'static Mutex<()> {
    static LOCK: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `scenario` once under the given seed; `Err` carries the failure.
fn run_one<F>(seed: u64, config: &Config, scenario: &F) -> Result<u64, Failure>
where
    F: Fn() + Sync,
{
    let _active = ActiveGuard::enter();
    let exec = Arc::new(Execution::new(seed, config.policy, config.max_steps));
    let root = exec.register_thread();
    debug_assert_eq!(root, 0);
    // The root virtual thread must be a fresh OS thread so its CONTEXT
    // thread-local does not linger on the caller.
    std::thread::scope(|s| {
        s.spawn(|| {
            CONTEXT.with(|c| *c.borrow_mut() = Some((exec.clone(), root)));
            WAS_MANAGED.with(|f| f.set(true));
            let outcome = catch_unwind(AssertUnwindSafe(scenario));
            if let Err(p) = outcome {
                let msg = Execution::panic_payload_to_string(&*p);
                if msg != ABORT_MSG {
                    exec.record_failure(&format!("root thread panicked: {msg}"));
                }
            }
            exec.finish_thread(root);
            CONTEXT.with(|c| *c.borrow_mut() = None);
        });
    });
    // The root has finished, but spawned virtual threads may still be
    // running (scenario did not join them). Let them drain, then reap the
    // OS handles — children can spawn grandchildren, so loop.
    loop {
        let handles = std::mem::take(&mut exec.state.lock().unwrap().os_handles);
        if handles.is_empty() {
            break;
        }
        for h in handles {
            let _ = h.join();
        }
    }
    let st = exec.state.lock().unwrap();
    let steps = st.steps;
    if let Some(msg) = &st.failure {
        return Err(Failure {
            seed,
            policy: config.policy,
            step: steps,
            message: msg.clone(),
        });
    }
    drop(st);
    if config.leak_check {
        if let Err(msg) = exec.shadow.leak_check() {
            return Err(Failure {
                seed,
                policy: config.policy,
                step: steps,
                message: msg,
            });
        }
    }
    Ok(steps)
}

/// Explores `scenario` under every seed in `config.seeds`, panicking with a
/// replayable [`Failure`] description on the first failing seed.
pub fn explore_with<F>(name: &str, config: Config, scenario: F)
where
    F: Fn() + Sync,
{
    let _serial = exploration_lock()
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    let mut total_steps = 0u64;
    let seeds = config.seeds.clone();
    let count = seeds.end.saturating_sub(seeds.start);
    for seed in seeds {
        match run_one(seed, &config, &scenario) {
            Ok(steps) => total_steps += steps,
            Err(failure) => {
                panic!(
                    "dcs-check scenario '{name}' failed: {failure}\n\
                     replay with: dcs_check::replay({seed}, {:?}, ..)",
                    config.policy
                );
            }
        }
    }
    // Vacuous passes must be loud: an empty seed range is a mis-computed
    // range at the call site, and runs that never hit a schedule point mean
    // the scenario is not exercising the instrumented shims — almost
    // certainly a mis-wired feature flag.
    assert!(
        count > 0,
        "dcs-check scenario '{name}' explored an empty seed range"
    );
    assert!(
        total_steps > 0,
        "dcs-check scenario '{name}' hit zero schedule points across {count} seeds; \
         are the `check` features enabled for the crates under test?"
    );
}

/// Explores `scenario` under seeds `0..seeds` with the default policy.
pub fn explore<F>(name: &str, seeds: u64, scenario: F)
where
    F: Fn() + Sync,
{
    explore_with(
        name,
        Config {
            seeds: 0..seeds,
            ..Config::default()
        },
        scenario,
    );
}

/// Re-runs a single seed, for deterministic replay of a reported failure.
pub fn replay<F>(seed: u64, policy: Policy, scenario: F)
where
    F: Fn() + Sync,
{
    explore_with(
        "replay",
        Config {
            seeds: seed..seed + 1,
            policy,
            ..Config::default()
        },
        scenario,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicU64;
    use std::sync::atomic::Ordering;

    #[test]
    fn schedule_point_outside_execution_is_noop() {
        // Hold the exploration lock: sibling tests in this binary run
        // executions concurrently, and an outside-execution shim call while
        // one is active is exactly what assert_not_foreign rejects.
        let _serial = exploration_lock()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        assert!(!in_execution());
        schedule_point();
    }

    #[test]
    fn counter_increments_complete() {
        explore("counter", 50, || {
            let c = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..3 {
                let c = c.clone();
                handles.push(crate::thread::spawn(move || {
                    for _ in 0..5 {
                        c.fetch_add(1, Ordering::SeqCst);
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(c.load(Ordering::SeqCst), 15);
        });
    }

    #[test]
    fn lost_update_found_quickly() {
        // Classic racy read-modify-write: load, then store. Some schedule
        // must interleave the two threads between load and store.
        let found = std::panic::catch_unwind(|| {
            explore("lost-update", 100, || {
                let c = Arc::new(AtomicU64::new(0));
                let mut handles = Vec::new();
                for _ in 0..2 {
                    let c = c.clone();
                    handles.push(crate::thread::spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(found.is_err(), "random scheduler should expose the race");
    }

    #[test]
    fn same_seed_same_schedule() {
        // Record the observable interleaving as a sequence of values and
        // check two runs of one seed agree, while some other seed differs.
        fn trace_for(seed: u64) -> Vec<u64> {
            let trace = Arc::new(Mutex::new(Vec::new()));
            let t2 = trace.clone();
            explore_with(
                "trace",
                Config {
                    seeds: seed..seed + 1,
                    ..Config::default()
                },
                move || {
                    let c = Arc::new(AtomicU64::new(0));
                    let mut handles = Vec::new();
                    for tid in 0..3u64 {
                        let c = c.clone();
                        let t = t2.clone();
                        handles.push(crate::thread::spawn(move || {
                            for _ in 0..4 {
                                let v = c.fetch_add(1, Ordering::SeqCst);
                                t.lock().unwrap().push(tid * 1000 + v);
                            }
                        }));
                    }
                    for h in handles {
                        h.join().unwrap();
                    }
                },
            );
            let v = trace.lock().unwrap().clone();
            v
        }
        let a1 = trace_for(7);
        let a2 = trace_for(7);
        assert_eq!(a1, a2, "same seed must replay identically");
        let b = trace_for(8);
        // Not guaranteed different in principle, but with 12 interleaved
        // increments the chance of collision is negligible; treat equality
        // as a scheduler bug.
        assert_ne!(a1, b, "different seeds should explore different orders");
    }

    #[test]
    fn pct_policy_runs() {
        explore_with(
            "pct",
            Config {
                seeds: 0..50,
                policy: Policy::Pct { depth: 3 },
                ..Config::default()
            },
            || {
                let c = Arc::new(AtomicU64::new(0));
                let h = {
                    let c = c.clone();
                    crate::thread::spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                };
                c.fetch_add(1, Ordering::SeqCst);
                h.join().unwrap();
                assert_eq!(c.load(Ordering::SeqCst), 2);
            },
        );
    }

    #[test]
    fn livelock_is_reported() {
        let r = std::panic::catch_unwind(|| {
            explore_with(
                "spin",
                Config {
                    seeds: 0..1,
                    max_steps: 10_000,
                    ..Config::default()
                },
                || {
                    let c = AtomicU64::new(0);
                    // Never satisfied: nothing ever stores 1.
                    while c.load(Ordering::SeqCst) != 1 {}
                },
            );
        });
        let msg = format!("{:?}", r.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("max_steps"), "got: {msg}");
    }
}
