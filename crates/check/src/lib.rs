//! `dcs-check`: deterministic interleaving checker for the latch-free
//! substrate (`dcs-ebr`, `dcs-bwtree`, `dcs-masstree`).
//!
//! A from-scratch "shuttle-lite": scenarios written against the instrumented
//! shims in [`sync`] and [`thread`] run under a seeded virtual-thread
//! scheduler ([`explore`]) that serializes all threads and chooses the
//! interleaving from a PRNG (uniform random or PCT). Every run is
//! byte-for-byte deterministic per seed, so any failure report — panic,
//! invariant violation, shadow-heap diagnostic — names a seed that replays
//! the exact interleaving with [`replay`].
//!
//! The substrate crates opt in via their `check` cargo feature, which swaps
//! their internal `sync` facade from `std::sync` to [`crate::sync`] and
//! enables shadow-heap instrumentation ([`shadow`]) on the EBR retire/free
//! paths. With the feature off, those crates compile against plain `std`
//! with zero overhead; with it on but no execution active, the shims
//! degrade to a thread-local check per operation.
//!
//! ```
//! use dcs_check::sync::AtomicU64;
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! dcs_check::explore("handoff", 20, || {
//!     let flag = Arc::new(AtomicU64::new(0));
//!     let f2 = flag.clone();
//!     let t = dcs_check::thread::spawn(move || f2.store(1, Ordering::Release));
//!     let _saw = flag.load(Ordering::Acquire); // 0 or 1, schedule-dependent
//!     t.join().unwrap();
//!     assert_eq!(flag.load(Ordering::Acquire), 1);
//! });
//! ```

pub mod scheduler;
pub mod shadow;
pub mod sync;
pub mod thread;

pub use scheduler::{
    explore, explore_with, in_execution, replay, schedule_point, Config, Failure, Policy,
};
