//! Virtual-thread spawn/join facade.
//!
//! Inside an execution, `spawn` registers a *virtual thread*: a real OS
//! thread that parks immediately and only runs when the deterministic
//! scheduler elects it. Outside an execution it is plain `std::thread`.

use crate::scheduler::{self, schedule_point, ManagedHandle};

/// Handle returned by [`spawn`], mirroring `std::thread::JoinHandle`.
pub enum JoinHandle<T> {
    /// A scheduler-managed virtual thread.
    Managed(ManagedHandle<T>),
    /// A plain std thread (spawned outside any execution).
    Native(std::thread::JoinHandle<T>),
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result.
    pub fn join(self) -> std::thread::Result<T> {
        match self {
            JoinHandle::Managed(h) => h.join(),
            JoinHandle::Native(h) => h.join(),
        }
    }
}

/// Spawns a thread; deterministic and scheduler-managed inside an execution.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if scheduler::in_execution() {
        JoinHandle::Managed(scheduler::spawn_managed(f).expect("active execution"))
    } else {
        // Spawning from a thread the scheduler does not manage while an
        // execution is active would create yet another unscheduled thread;
        // trap it (debug builds) rather than degrade silently.
        scheduler::assert_not_foreign();
        JoinHandle::Native(std::thread::spawn(f))
    }
}

/// Cooperative yield: a schedule point inside an execution, a real
/// `std::thread::yield_now` outside.
pub fn yield_now() {
    if scheduler::in_execution() {
        schedule_point();
    } else {
        std::thread::yield_now();
    }
}
