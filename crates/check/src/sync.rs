//! Instrumented drop-in replacements for `std::sync` primitives.
//!
//! Each operation that can participate in a data race calls
//! [`crate::scheduler::schedule_point`] *before* performing the real
//! operation on the underlying `std` primitive. Inside an execution that
//! hands control to the deterministic scheduler; outside one it is a
//! thread-local check and the shims behave exactly like `std`.
//!
//! The shims deliberately execute every access with `SeqCst` regardless of
//! the ordering the caller requested: the checker serializes all threads, so
//! weaker orderings cannot be distinguished anyway, and upgrading removes
//! any chance of the *checker build* hitting real hardware reordering. The
//! requested ordering is still type-checked, keeping call sites honest for
//! the uninstrumented build.

pub use std::sync::atomic::Ordering;

use crate::scheduler::schedule_point;
use std::sync::TryLockError;

macro_rules! int_atomic {
    ($name:ident, $std:ty, $int:ty) => {
        /// Instrumented counterpart of the matching `std::sync::atomic` type.
        #[derive(Debug, Default)]
        pub struct $name($std);

        impl $name {
            /// Creates a new atomic (const, like `std`).
            pub const fn new(v: $int) -> Self {
                Self(<$std>::new(v))
            }

            /// Loads the value (schedule point).
            #[inline]
            pub fn load(&self, _order: Ordering) -> $int {
                schedule_point();
                self.0.load(Ordering::SeqCst)
            }

            /// Stores a value (schedule point).
            #[inline]
            pub fn store(&self, v: $int, _order: Ordering) {
                schedule_point();
                self.0.store(v, Ordering::SeqCst)
            }

            /// Swaps the value (schedule point).
            #[inline]
            pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                schedule_point();
                self.0.swap(v, Ordering::SeqCst)
            }

            /// Adds, returning the previous value (schedule point).
            #[inline]
            pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                schedule_point();
                self.0.fetch_add(v, Ordering::SeqCst)
            }

            /// Subtracts, returning the previous value (schedule point).
            #[inline]
            pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                schedule_point();
                self.0.fetch_sub(v, Ordering::SeqCst)
            }

            /// Bitwise-or, returning the previous value (schedule point).
            #[inline]
            pub fn fetch_or(&self, v: $int, _order: Ordering) -> $int {
                schedule_point();
                self.0.fetch_or(v, Ordering::SeqCst)
            }

            /// Bitwise-and, returning the previous value (schedule point).
            #[inline]
            pub fn fetch_and(&self, v: $int, _order: Ordering) -> $int {
                schedule_point();
                self.0.fetch_and(v, Ordering::SeqCst)
            }

            /// Maximum, returning the previous value (schedule point).
            #[inline]
            pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                schedule_point();
                self.0.fetch_max(v, Ordering::SeqCst)
            }

            /// Compare-and-exchange (schedule point).
            #[inline]
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$int, $int> {
                schedule_point();
                self.0
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Weak compare-and-exchange (schedule point). Never fails
            /// spuriously under the checker — spurious failure would make
            /// replay depend on hardware, not the seed.
            #[inline]
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$int, $int> {
                schedule_point();
                self.0
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Consumes the atomic, returning the value (no schedule point:
            /// exclusive ownership means no race to explore).
            pub fn into_inner(self) -> $int {
                self.0.into_inner()
            }

            /// Mutable access (no schedule point: exclusive borrow).
            pub fn get_mut(&mut self) -> &mut $int {
                self.0.get_mut()
            }
        }
    };
}

int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

/// Instrumented counterpart of `std::sync::atomic::AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// Creates a new atomic bool.
    pub const fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    /// Loads the value (schedule point).
    #[inline]
    pub fn load(&self, _order: Ordering) -> bool {
        schedule_point();
        self.0.load(Ordering::SeqCst)
    }

    /// Stores a value (schedule point).
    #[inline]
    pub fn store(&self, v: bool, _order: Ordering) {
        schedule_point();
        self.0.store(v, Ordering::SeqCst)
    }

    /// Swaps the value (schedule point).
    #[inline]
    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        schedule_point();
        self.0.swap(v, Ordering::SeqCst)
    }

    /// Compare-and-exchange (schedule point).
    #[inline]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        schedule_point();
        self.0
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

/// Instrumented counterpart of `std::sync::atomic::AtomicPtr<T>`.
#[derive(Debug)]
pub struct AtomicPtr<T>(std::sync::atomic::AtomicPtr<T>);

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self(std::sync::atomic::AtomicPtr::default())
    }
}

impl<T> AtomicPtr<T> {
    /// Creates a new atomic pointer.
    pub const fn new(p: *mut T) -> Self {
        Self(std::sync::atomic::AtomicPtr::new(p))
    }

    /// Loads the pointer (schedule point).
    #[inline]
    pub fn load(&self, _order: Ordering) -> *mut T {
        schedule_point();
        self.0.load(Ordering::SeqCst)
    }

    /// Stores a pointer (schedule point).
    #[inline]
    pub fn store(&self, p: *mut T, _order: Ordering) {
        schedule_point();
        self.0.store(p, Ordering::SeqCst)
    }

    /// Swaps the pointer (schedule point).
    #[inline]
    pub fn swap(&self, p: *mut T, _order: Ordering) -> *mut T {
        schedule_point();
        self.0.swap(p, Ordering::SeqCst)
    }

    /// Compare-and-exchange (schedule point).
    #[inline]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        schedule_point();
        self.0
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Weak compare-and-exchange (schedule point, never spurious).
    #[inline]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        schedule_point();
        self.0
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Mutable access (no schedule point: exclusive borrow).
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.0.get_mut()
    }
}

/// Instrumented memory fence: a schedule point plus the real fence.
#[inline]
pub fn fence(_order: Ordering) {
    schedule_point();
    std::sync::atomic::fence(Ordering::SeqCst);
}

/// Instrumented mutex with the *std-compatible* poisoning API
/// (`lock() -> LockResult<..>`), so `mutex.lock().unwrap()` call sites
/// compile unchanged against either `std::sync::Mutex` or this shim.
///
/// Inside an execution the lock is acquired **cooperatively**: a blocking
/// `std` lock would park the only runnable OS thread and deadlock the
/// scheduler, so instead the thread loops `schedule point → try_lock`. The
/// holder is always runnable (nothing in the checker blocks while holding a
/// lock), so the loop terminates under every schedule; the `max_steps`
/// backstop converts checker bugs into failures rather than hangs.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for the instrumented [`Mutex`]. Wraps the std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> std::sync::LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock; cooperative inside an execution.
    ///
    /// Never returns `Err`: poisoning exists to propagate panics between
    /// threads, but under the checker a failing execution aborts every
    /// virtual thread at its next schedule point, and those aborts routinely
    /// unwind *through* critical sections. Surfacing that as poison would
    /// make unrelated destructors' `.lock().unwrap()` calls double-panic
    /// during cleanup and abort the process instead of reporting the seed.
    pub fn lock(&self) -> std::sync::LockResult<MutexGuard<'_, T>> {
        if !crate::scheduler::in_execution() {
            crate::scheduler::assert_not_foreign();
            return match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { inner: g }),
                Err(p) => Ok(MutexGuard {
                    inner: p.into_inner(),
                }),
            };
        }
        loop {
            schedule_point();
            match self.inner.try_lock() {
                Ok(g) => return Ok(MutexGuard { inner: g }),
                Err(TryLockError::Poisoned(p)) => {
                    return Ok(MutexGuard {
                        inner: p.into_inner(),
                    })
                }
                Err(TryLockError::WouldBlock) => continue,
            }
        }
    }

    /// Attempts to acquire the lock without blocking (schedule point).
    /// Like [`Mutex::lock`], never reports poison.
    pub fn try_lock(
        &self,
    ) -> Result<MutexGuard<'_, T>, std::sync::TryLockError<MutexGuard<'_, T>>> {
        schedule_point();
        match self.inner.try_lock() {
            Ok(g) => Ok(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(p)) => Ok(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
        }
    }

    /// Mutable access without locking (exclusive borrow, no schedule point).
    pub fn get_mut(&mut self) -> std::sync::LockResult<&mut T> {
        match self.inner.get_mut() {
            Ok(v) => Ok(v),
            Err(p) => Ok(p.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Instrumented locks with the **parking_lot API shape** (`lock()` returns
/// the guard directly, `try_*` return `Option`, no poisoning), so crates
/// built on the `parking_lot` shim — `dcs-lsm`, `dcs-llama` — can swap their
/// locks through a `sync` facade without touching call sites.
///
/// Acquisition follows the same cooperative discipline as the std-shaped
/// [`Mutex`]: inside an execution the thread loops
/// `schedule point → try-acquire` (a blocking acquire would park the only
/// runnable OS thread and deadlock the scheduler); outside one the
/// operations block on the underlying `std` primitive like parking_lot
/// would, swallowing poison since parking_lot has none.
pub mod pl {
    use super::schedule_point;
    use std::sync::TryLockError;

    /// Instrumented counterpart of `parking_lot::Mutex`.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        inner: std::sync::Mutex<T>,
    }

    /// RAII guard for [`Mutex`]; wraps the std guard.
    pub struct MutexGuard<'a, T: ?Sized> {
        inner: std::sync::MutexGuard<'a, T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex (const, like parking_lot).
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the lock; cooperative inside an execution.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            if !crate::scheduler::in_execution() {
                crate::scheduler::assert_not_foreign();
                return match self.inner.lock() {
                    Ok(g) => MutexGuard { inner: g },
                    Err(p) => MutexGuard {
                        inner: p.into_inner(),
                    },
                };
            }
            loop {
                schedule_point();
                match self.inner.try_lock() {
                    Ok(g) => return MutexGuard { inner: g },
                    Err(TryLockError::Poisoned(p)) => {
                        return MutexGuard {
                            inner: p.into_inner(),
                        }
                    }
                    Err(TryLockError::WouldBlock) => continue,
                }
            }
        }

        /// Attempts the lock without blocking (schedule point).
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            schedule_point();
            match self.inner.try_lock() {
                Ok(g) => Some(MutexGuard { inner: g }),
                Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                    inner: p.into_inner(),
                }),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    /// Instrumented counterpart of `parking_lot::RwLock`.
    ///
    /// Readers may hold their guard across schedule points (e.g. an LSM read
    /// path holding the state lock while touching instrumented atomics); a
    /// writer looping on `try_write` stays live because the readers remain
    /// runnable and eventually release.
    #[derive(Debug, Default)]
    pub struct RwLock<T: ?Sized> {
        inner: std::sync::RwLock<T>,
    }

    /// Shared-read RAII guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        inner: std::sync::RwLockReadGuard<'a, T>,
    }

    /// Exclusive-write RAII guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        inner: std::sync::RwLockWriteGuard<'a, T>,
    }

    impl<T> RwLock<T> {
        /// Creates a new reader-writer lock (const, like parking_lot).
        pub const fn new(value: T) -> Self {
            RwLock {
                inner: std::sync::RwLock::new(value),
            }
        }

        /// Consumes the lock, returning the inner value.
        pub fn into_inner(self) -> T {
            self.inner
                .into_inner()
                .unwrap_or_else(|poison| poison.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquires shared read access; cooperative inside an execution.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            if !crate::scheduler::in_execution() {
                crate::scheduler::assert_not_foreign();
                return match self.inner.read() {
                    Ok(g) => RwLockReadGuard { inner: g },
                    Err(p) => RwLockReadGuard {
                        inner: p.into_inner(),
                    },
                };
            }
            loop {
                schedule_point();
                match self.inner.try_read() {
                    Ok(g) => return RwLockReadGuard { inner: g },
                    Err(TryLockError::Poisoned(p)) => {
                        return RwLockReadGuard {
                            inner: p.into_inner(),
                        }
                    }
                    Err(TryLockError::WouldBlock) => continue,
                }
            }
        }

        /// Acquires exclusive write access; cooperative inside an execution.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            if !crate::scheduler::in_execution() {
                crate::scheduler::assert_not_foreign();
                return match self.inner.write() {
                    Ok(g) => RwLockWriteGuard { inner: g },
                    Err(p) => RwLockWriteGuard {
                        inner: p.into_inner(),
                    },
                };
            }
            loop {
                schedule_point();
                match self.inner.try_write() {
                    Ok(g) => return RwLockWriteGuard { inner: g },
                    Err(TryLockError::Poisoned(p)) => {
                        return RwLockWriteGuard {
                            inner: p.into_inner(),
                        }
                    }
                    Err(TryLockError::WouldBlock) => continue,
                }
            }
        }

        /// Attempts shared read access without blocking (schedule point).
        pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
            schedule_point();
            match self.inner.try_read() {
                Ok(g) => Some(RwLockReadGuard { inner: g }),
                Err(TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                    inner: p.into_inner(),
                }),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        /// Attempts exclusive write access without blocking (schedule point).
        pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
            schedule_point();
            match self.inner.try_write() {
                Ok(g) => Some(RwLockWriteGuard { inner: g }),
                Err(TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                    inner: p.into_inner(),
                }),
                Err(TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (exclusive borrow).
        pub fn get_mut(&mut self) -> &mut T {
            match self.inner.get_mut() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn atomics_behave_like_std_outside_execution() {
        let _serial = crate::scheduler::exploration_lock()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let a = AtomicU64::new(5);
        assert_eq!(a.load(Ordering::Relaxed), 5);
        a.store(7, Ordering::Release);
        assert_eq!(a.swap(9, Ordering::AcqRel), 7);
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 9);
        assert_eq!(
            a.compare_exchange(10, 11, Ordering::SeqCst, Ordering::SeqCst),
            Ok(10)
        );
        assert_eq!(a.into_inner(), 11);

        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.load(Ordering::SeqCst));

        let p = AtomicPtr::<u32>::new(std::ptr::null_mut());
        assert!(p.load(Ordering::SeqCst).is_null());
    }

    #[test]
    fn mutex_std_api_shape() {
        let _serial = crate::scheduler::exploration_lock()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
        assert!(m.try_lock().is_ok());
    }

    #[test]
    fn pl_shims_match_parking_lot_api_shape() {
        let _serial = crate::scheduler::exploration_lock()
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let m = pl::Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);

        let rw = pl::RwLock::new(vec![1u8]);
        rw.write().push(2);
        assert_eq!(rw.read().len(), 2);
        {
            let r1 = rw.read();
            let r2 = rw.try_read().expect("shared readers coexist");
            assert_eq!(*r1, *r2);
            assert!(rw.try_write().is_none(), "writer excluded by readers");
        }
        assert!(rw.try_write().is_some());
        assert_eq!(rw.into_inner(), vec![1, 2]);
    }

    #[test]
    fn pl_rwlock_excludes_under_scheduler() {
        crate::explore("pl-rwlock-exclusion", 50, || {
            let rw = Arc::new(pl::RwLock::new(0u64));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let rw = rw.clone();
                handles.push(crate::thread::spawn(move || {
                    for _ in 0..3 {
                        let mut g = rw.write();
                        let v = *g;
                        crate::thread::yield_now();
                        *g = v + 1;
                    }
                }));
            }
            let reader = {
                let rw = rw.clone();
                crate::thread::spawn(move || {
                    // Monotonicity: concurrent reads under the shared lock
                    // must never observe the counter going backwards.
                    let mut last = 0;
                    for _ in 0..4 {
                        let v = *rw.read();
                        assert!(v >= last, "counter went backwards");
                        last = v;
                        crate::thread::yield_now();
                    }
                })
            };
            for h in handles {
                h.join().unwrap();
            }
            reader.join().unwrap();
            assert_eq!(*rw.read(), 6);
        });
    }

    #[test]
    fn cooperative_mutex_excludes() {
        crate::explore("mutex-exclusion", 50, || {
            let m = Arc::new(Mutex::new(0u64));
            let mut handles = Vec::new();
            for _ in 0..3 {
                let m = m.clone();
                handles.push(crate::thread::spawn(move || {
                    for _ in 0..4 {
                        let mut g = m.lock().unwrap();
                        // A non-atomic read-modify-write under the lock: the
                        // lock must make it atomic w.r.t. the other threads.
                        let v = *g;
                        crate::thread::yield_now();
                        *g = v + 1;
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*m.lock().unwrap(), 12);
        });
    }
}
