//! Shadow allocation tracker for epoch-based reclamation.
//!
//! The instrumented builds of `dcs-ebr` and `dcs-bwtree` report lifecycle
//! events for every EBR-managed allocation — [`on_alloc`], [`on_retire`],
//! [`on_free`], [`on_access`] — keyed by address. Inside an execution the
//! active `ShadowHeap` cross-checks them:
//!
//! * **use-after-free** — an access to an address whose deferred destructor
//!   already ran;
//! * **double retire** — the same live allocation retired twice (would run
//!   its destructor twice);
//! * **double free** — a destructor running twice without an intervening
//!   re-allocation (an EBR bookkeeping bug);
//! * **epoch leak** — via `ShadowHeap::leak_check` at execution end:
//!   memory retired but never physically freed even though its collector
//!   was torn down.
//!
//! A violation aborts the execution and the harness reports the seed, so
//! the exact interleaving replays with [`crate::replay`].
//!
//! Outside an execution every hook is a no-op: the plain test suite runs
//! real concurrency where address-keyed global state would produce
//! cross-test false positives.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::scheduler::{fail_current, with_shadow};

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    /// Known allocation, not yet retired.
    Live,
    /// Retired into EBR; destructor not yet run.
    Retired,
    /// Destructor ran; any access until re-allocation is a use-after-free.
    Freed,
}

/// Per-execution registry of EBR-managed allocations.
pub(crate) struct ShadowHeap {
    slots: Mutex<HashMap<usize, SlotState>>,
}

impl ShadowHeap {
    pub(crate) fn new() -> Self {
        ShadowHeap {
            slots: Mutex::new(HashMap::new()),
        }
    }

    fn transition(&self, addr: usize, event: &str) -> Result<(), String> {
        let mut slots = self.slots.lock().unwrap();
        let state = slots.get(&addr).copied();
        let next = match (event, state) {
            // (Re-)allocation always resets the slot: the allocator may hand
            // back an address that was freed earlier (ABA on addresses).
            ("alloc", _) => SlotState::Live,
            ("retire", Some(SlotState::Retired)) => {
                return Err(format!(
                    "double retire of {addr:#x}: already retired, destructor would run twice"
                ));
            }
            ("retire", Some(SlotState::Freed)) => {
                return Err(format!(
                    "retire of freed {addr:#x}: use-after-free (retiring reclaimed memory)"
                ));
            }
            ("retire", _) => SlotState::Retired,
            ("free", Some(SlotState::Freed)) => {
                return Err(format!("double free of {addr:#x}"));
            }
            ("free", _) => SlotState::Freed,
            ("access", Some(SlotState::Freed)) => {
                return Err(format!(
                    "use-after-free: access to {addr:#x} after its destructor ran"
                ));
            }
            ("access", _) => return Ok(()),
            _ => unreachable!("unknown shadow event {event}"),
        };
        slots.insert(addr, next);
        Ok(())
    }

    /// Fails if anything retired was never freed (call after collector
    /// teardown; see `Config::leak_check`).
    pub(crate) fn leak_check(&self) -> Result<(), String> {
        let slots = self.slots.lock().unwrap();
        let leaked: Vec<usize> = slots
            .iter()
            .filter(|(_, s)| **s == SlotState::Retired)
            .map(|(a, _)| *a)
            .collect();
        if leaked.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "epoch leak: {} retired allocation(s) never reclaimed (e.g. {:#x})",
                leaked.len(),
                leaked[0]
            ))
        }
    }
}

fn record(addr: usize, event: &str) {
    if let Some(Err(msg)) = with_shadow(|shadow, seed| {
        shadow
            .transition(addr, event)
            .map_err(|m| format!("shadow heap (seed {seed}): {m}"))
    }) {
        fail_current(msg);
    }
}

/// Reports a fresh EBR-managed allocation.
pub fn on_alloc<T: ?Sized>(ptr: *const T) {
    record(ptr as *const () as usize, "alloc");
}

/// Reports that an allocation was retired (its destructor deferred).
pub fn on_retire<T: ?Sized>(ptr: *const T) {
    record(ptr as *const () as usize, "retire");
}

/// Reports that a deferred destructor actually ran.
pub fn on_free<T: ?Sized>(ptr: *const T) {
    record(ptr as *const () as usize, "free");
}

/// Reports a read through a possibly-retired pointer.
pub fn on_access<T: ?Sized>(ptr: *const T) {
    record(ptr as *const () as usize, "access");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_noops_outside_execution() {
        let b = Box::new(1u32);
        let p: *const u32 = &*b;
        on_alloc(p);
        on_retire(p);
        on_retire(p); // would fail inside an execution
        on_free(p);
        on_access(p); // would fail inside an execution
    }

    #[test]
    fn transition_table() {
        let h = ShadowHeap::new();
        h.transition(0x10, "alloc").unwrap();
        h.transition(0x10, "access").unwrap();
        h.transition(0x10, "retire").unwrap();
        // Access between retire and free is the whole point of EBR: legal.
        h.transition(0x10, "access").unwrap();
        assert!(h
            .transition(0x10, "retire")
            .unwrap_err()
            .contains("double retire"));
    }

    #[test]
    fn uaf_and_double_free() {
        let h = ShadowHeap::new();
        h.transition(0x20, "alloc").unwrap();
        h.transition(0x20, "retire").unwrap();
        h.transition(0x20, "free").unwrap();
        assert!(h
            .transition(0x20, "access")
            .unwrap_err()
            .contains("use-after-free"));
        assert!(h
            .transition(0x20, "free")
            .unwrap_err()
            .contains("double free"));
        // Address reuse legitimizes the slot again.
        h.transition(0x20, "alloc").unwrap();
        h.transition(0x20, "access").unwrap();
    }

    #[test]
    fn leak_check_reports_unreclaimed() {
        let h = ShadowHeap::new();
        h.transition(0x30, "retire").unwrap();
        assert!(h.leak_check().unwrap_err().contains("epoch leak"));
        h.transition(0x30, "free").unwrap();
        h.leak_check().unwrap();
    }
}
