//! Deterministic interleaving scenarios for the serving layer's shard
//! mailbox (`dcs-server` built with its `check` feature).
//!
//! The mailbox is the serving layer's acceptance point: once `send`
//! returns `Ok`, that request has been *accepted* and the server promises
//! to execute it — even if shutdown begins immediately after. These seeds
//! explore concurrent producers racing the drain-on-shutdown consumer and
//! a close() from a third thread, checking under every interleaving that
//!
//! * the set of drained items is exactly the set of acked sends — nothing
//!   accepted is dropped by shutdown, nothing rejected sneaks in;
//! * a full mailbox answers `Busy` immediately (producers always finish:
//!   the send path cannot block or hang);
//! * the mailbox's own accounting (accepted/drained/rejected counters)
//!   agrees with what the threads observed.

use dcs_check::{explore_with, Config};
use dcs_server::mailbox::{Mailbox, SendError};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Outcome sets shared by the scenario threads. The scheduler serializes
/// virtual threads, so a std mutex here never actually contends; the
/// interleaving-sensitive state is all inside the instrumented mailbox.
#[derive(Default)]
struct Ledger {
    acked: Mutex<BTreeSet<u64>>,
    busy: Mutex<BTreeSet<u64>>,
    closed: Mutex<BTreeSet<u64>>,
    drained: Mutex<BTreeSet<u64>>,
}

/// Two producers race a draining consumer and a shutdown thread over a
/// capacity-2 mailbox. Every accepted send must be drained; every send
/// must resolve to exactly one of acked/busy/closed.
#[test]
fn concurrent_enqueue_vs_drain_on_shutdown() {
    explore_with(
        "server-mailbox-shutdown",
        Config {
            seeds: 0..60,
            ..Config::default()
        },
        || {
            let mb = Arc::new(Mailbox::new(2));
            let ledger = Arc::new(Ledger::default());

            let producers: Vec<_> = (0..2u64)
                .map(|p| {
                    let mb = mb.clone();
                    let ledger = ledger.clone();
                    dcs_check::thread::spawn(move || {
                        for i in 0..3u64 {
                            let id = p * 100 + i;
                            match mb.send(id) {
                                Ok(()) => {
                                    ledger.acked.lock().unwrap().insert(id);
                                }
                                Err(SendError::Busy(v)) => {
                                    ledger.busy.lock().unwrap().insert(v);
                                }
                                Err(SendError::Closed(v)) => {
                                    ledger.closed.lock().unwrap().insert(v);
                                }
                            }
                        }
                    })
                })
                .collect();

            let consumer = {
                let mb = mb.clone();
                let ledger = ledger.clone();
                dcs_check::thread::spawn(move || {
                    let mut batch = Vec::new();
                    while mb.recv_batch(2, &mut batch) {
                        let mut drained = ledger.drained.lock().unwrap();
                        for id in batch.drain(..) {
                            assert!(drained.insert(id), "item {id} drained twice");
                        }
                    }
                })
            };

            let closer = {
                let mb = mb.clone();
                dcs_check::thread::spawn(move || mb.close())
            };

            for p in producers {
                p.join().unwrap();
            }
            closer.join().unwrap();
            // Producers are done and the mailbox is closed, so the consumer
            // terminates once it has drained the remainder.
            consumer.join().unwrap();

            let acked = ledger.acked.lock().unwrap();
            let busy = ledger.busy.lock().unwrap();
            let closed = ledger.closed.lock().unwrap();
            let drained = ledger.drained.lock().unwrap();

            // Acceptance contract: drained == acked, exactly.
            assert_eq!(
                *drained, *acked,
                "acked-but-dropped or drained-but-unacked items"
            );
            // Every send resolved exactly one way.
            assert_eq!(acked.len() + busy.len() + closed.len(), 6);
            assert!(acked.is_disjoint(&busy) && acked.is_disjoint(&closed));

            // The mailbox's own books agree with the observers'.
            let stats = mb.stats();
            assert_eq!(stats.accepted, acked.len() as u64);
            assert_eq!(stats.drained, drained.len() as u64);
            assert_eq!(stats.rejected_busy, busy.len() as u64);
            assert_eq!(stats.rejected_closed, closed.len() as u64);
            assert_eq!(stats.accepted, stats.drained, "no accepted item lost");
            assert!(stats.depth_high_water() <= 2, "capacity breached");
        },
    );
}

/// A capacity-1 mailbox under producer pressure with no consumer running
/// until the producers finish: sends past the high-water mark must return
/// `Busy` immediately — the producer threads always run to completion, and
/// afterwards a late drain still delivers exactly the accepted items.
#[test]
fn full_mailbox_returns_busy_without_blocking() {
    explore_with(
        "server-mailbox-busy",
        Config {
            seeds: 0..40,
            ..Config::default()
        },
        || {
            let mb = Arc::new(Mailbox::new(1));
            let ledger = Arc::new(Ledger::default());

            let producers: Vec<_> = (0..3u64)
                .map(|p| {
                    let mb = mb.clone();
                    let ledger = ledger.clone();
                    dcs_check::thread::spawn(move || {
                        for i in 0..2u64 {
                            let id = p * 10 + i;
                            match mb.send(id) {
                                Ok(()) => {
                                    ledger.acked.lock().unwrap().insert(id);
                                }
                                Err(SendError::Busy(v)) => {
                                    ledger.busy.lock().unwrap().insert(v);
                                }
                                Err(SendError::Closed(_)) => {
                                    unreachable!("nothing closes this mailbox early")
                                }
                            }
                        }
                    })
                })
                .collect();
            // If a full mailbox parked its senders instead of answering
            // BUSY, these joins would deadlock the scenario (and the
            // scheduler would flag it); completion *is* the property.
            for p in producers {
                p.join().unwrap();
            }

            // With capacity 1 and no consumer, at least one send each from
            // the later producers must have been refused.
            let acked = ledger.acked.lock().unwrap().clone();
            let busy = ledger.busy.lock().unwrap().clone();
            assert_eq!(acked.len() + busy.len(), 6);
            assert!(!busy.is_empty(), "six sends into capacity 1 must shed");
            assert!(!acked.is_empty(), "the first send always fits");

            mb.close();
            let mut batch = Vec::new();
            let mut drained = BTreeSet::new();
            while mb.recv_batch(4, &mut batch) {
                drained.extend(batch.drain(..));
            }
            assert_eq!(drained, acked, "late drain delivers exactly the acked set");
            assert!(mb.stats().depth_high_water() <= 1);
        },
    );
}
