//! The silent-degrade footgun, demonstrated: a scenario that spawns a thread
//! with `std::thread::spawn` instead of `dcs_check::thread::spawn` puts that
//! thread *outside* the virtual scheduler. Its instrumented operations run
//! with real, unexplored concurrency — the seed no longer determines the
//! schedule and the exploration silently loses coverage.
//!
//! Debug builds now trap the first escaped operation. This lives in its own
//! integration binary: the panic fires on a foreign OS thread, and keeping it
//! out of the main scenario binaries avoids its stderr noise interleaving
//! with theirs.

use dcs_check::sync::AtomicU64;
use std::sync::atomic::Ordering;
use std::sync::Arc;

#[test]
#[cfg_attr(
    not(debug_assertions),
    ignore = "foreign-thread assert is debug-builds-only"
)]
#[should_panic(expected = "outside the virtual scheduler")]
fn std_spawn_inside_scenario_is_detected() {
    dcs_check::explore("foreign-spawn", 1, || {
        let c = Arc::new(AtomicU64::new(0));
        // Touch the shim from the managed root first so the run is not a
        // vacuous zero-schedule-point pass.
        c.fetch_add(1, Ordering::SeqCst);

        let c2 = c.clone();
        // BUG (deliberate): std::thread::spawn bypasses the scheduler.
        let h = std::thread::spawn(move || {
            // First instrumented op on the foreign thread → debug assert.
            c2.fetch_add(1, Ordering::SeqCst);
        });
        let err = h.join().expect_err("foreign thread must have panicked");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "foreign thread panicked with non-string payload".into());
        // Re-raise on the managed root so `explore` reports it as the
        // scenario failure (the foreign thread's own panic unwinds a thread
        // the harness never observes).
        panic!("{msg}");
    });
}
