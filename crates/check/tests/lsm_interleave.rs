//! Deterministic interleaving scenarios for `dcs-lsm`.
//!
//! The instrumented build routes the LSM's state lock and the memtable's
//! tree lock / size counter through the scheduler, so these seeds explore
//! the rotation protocol (freeze memtable → flush run → install in L0)
//! racing scans, and compaction (merge L0 → L1, retire input tables)
//! racing point reads. Each execution ends with `LsmTree::audit`: table
//! metadata (fences, blooms, entry counts, level ordering) must agree with
//! the bytes on flash, and no acknowledged write may be lost.

use dcs_check::{explore_with, Config};
use dcs_flashsim::{DeviceConfig, FlashDevice};
use dcs_lsm::{LsmConfig, LsmTree};
use std::sync::Arc;

fn small_lsm(memtable_bytes: usize, l0_trigger: usize) -> Arc<LsmTree> {
    let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
    Arc::new(LsmTree::new(
        device,
        LsmConfig {
            memtable_bytes,
            l0_compaction_trigger: l0_trigger,
            ..LsmConfig::default()
        },
    ))
}

fn key(i: usize) -> Vec<u8> {
    format!("key{i:02}").into_bytes()
}

fn value(i: usize) -> Vec<u8> {
    format!("value{i:02}-{}", "v".repeat(24)).into_bytes()
}

/// Memtable rotation racing a scan: the writer's puts overflow a tiny
/// memtable (freeze → flush → install in L0) while a scanner walks the
/// whole key space. Scans must stay sorted, never invent entries, and see
/// every key whose put completed before the scan started.
#[test]
fn memtable_rotation_vs_scan() {
    explore_with(
        "lsm-rotation-vs-scan",
        Config {
            seeds: 0..40,
            ..Config::default()
        },
        || {
            let lsm = small_lsm(128, 4);
            for i in 0..4 {
                lsm.put(key(i), value(i)).unwrap();
            }

            let writer = {
                let lsm = lsm.clone();
                dcs_check::thread::spawn(move || {
                    // ~56-byte entries: every couple of puts rotates the
                    // 128-byte memtable.
                    for i in 4..10 {
                        lsm.put(key(i), value(i)).unwrap();
                    }
                })
            };
            let scanner = {
                let lsm = lsm.clone();
                dcs_check::thread::spawn(move || {
                    for _ in 0..2 {
                        let seen = lsm.scan(b"", None).unwrap();
                        for w in seen.windows(2) {
                            assert!(w[0].0 < w[1].0, "scan out of order");
                        }
                        for (k, v) in &seen {
                            let i: usize = std::str::from_utf8(&k[3..5]).unwrap().parse().unwrap();
                            assert_eq!(v.as_ref(), value(i).as_slice(), "scan invented value");
                        }
                        // Keys written before the threads started are
                        // visible in every interleaving (snapshot scans).
                        for i in 0..4 {
                            assert!(
                                seen.iter().any(|(k, _)| k.as_ref() == key(i).as_slice()),
                                "scan lost pre-written key {i}"
                            );
                        }
                    }
                })
            };
            writer.join().unwrap();
            scanner.join().unwrap();

            for i in 0..10 {
                assert_eq!(
                    lsm.get(&key(i)).unwrap().as_deref(),
                    Some(value(i).as_slice()),
                    "key {i} lost across rotation"
                );
            }
            let report = lsm.audit().expect("lsm audit");
            assert!(
                report.tables > 0,
                "scenario must actually flush: {report:?}"
            );
        },
    );
}

/// Compaction racing point reads: an aggressive L0 trigger compacts while
/// a reader and a deleter work the same keys. Reads must never see a value
/// that was neither the initial nor the updated one, deletes must stick,
/// and the audit must pass with compactions having actually run.
#[test]
fn compaction_vs_get() {
    explore_with(
        "lsm-compaction-vs-get",
        Config {
            seeds: 0..40,
            ..Config::default()
        },
        || {
            let lsm = small_lsm(128, 2);
            for i in 0..6 {
                lsm.put(key(i), value(i)).unwrap();
            }

            let writer = {
                let lsm = lsm.clone();
                dcs_check::thread::spawn(move || {
                    // Overwrites force rotations; the L0 trigger of 2 makes
                    // every other flush compact into L1.
                    for i in 0..6 {
                        lsm.put(key(i), format!("new{i:02}-{}", "w".repeat(24)).into_bytes())
                            .unwrap();
                    }
                    lsm.delete(key(0)).unwrap();
                })
            };
            let reader = {
                let lsm = lsm.clone();
                dcs_check::thread::spawn(move || {
                    for i in 0..6 {
                        match lsm.get(&key(i)).unwrap() {
                            Some(v) => {
                                let old = value(i);
                                let new = format!("new{i:02}-{}", "w".repeat(24)).into_bytes();
                                assert!(
                                    v.as_ref() == old.as_slice() || v.as_ref() == new.as_slice(),
                                    "key {i} returned a value never written"
                                );
                            }
                            // Only key 0 is ever deleted.
                            None => assert_eq!(i, 0, "key {i} vanished without a delete"),
                        }
                    }
                })
            };
            writer.join().unwrap();
            reader.join().unwrap();

            assert_eq!(lsm.get(&key(0)).unwrap(), None, "delete did not stick");
            for i in 1..6 {
                let expect = format!("new{i:02}-{}", "w".repeat(24)).into_bytes();
                assert_eq!(
                    lsm.get(&key(i)).unwrap().as_deref(),
                    Some(expect.as_slice()),
                    "update to key {i} lost across compaction"
                );
            }
            let stats = lsm.stats();
            assert!(stats.compactions > 0, "scenario must actually compact");
            lsm.audit().expect("lsm audit after compaction");
        },
    );
}
