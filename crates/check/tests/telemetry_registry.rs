//! Deterministic interleaving scenarios for the telemetry registry.
//!
//! The registry promises that recording is lossless under concurrency:
//! counters striped across cache lines still sum exactly, and a snapshot
//! taken *while* recorders are running observes some prefix of each
//! thread's increments — never more than were issued, never a value that
//! later shrinks. These seeds race recorder threads against a repeated
//! snapshotter and check, under every explored interleaving, that
//!
//! * the final snapshot equals the exact number of increments issued —
//!   no lost updates across stripes, no double-counts from the merge;
//! * every mid-run snapshot is monotonic and bounded by the final total;
//! * histogram count/sum stay consistent with the recorded samples.

use dcs_check::{explore_with, Config};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-run uniquely named metrics, so the process-global registry (shared
/// across seeds and other tests in this binary) never aliases scenarios.
fn unique(name: &str) -> String {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    format!("check.{name}.{id}")
}

/// Three recorder threads race a snapshotter over one shared counter and
/// one shared histogram. Nothing is lost, nothing is counted twice.
#[test]
fn concurrent_recording_vs_snapshot_is_lossless() {
    explore_with(
        "telemetry-registry-lossless",
        Config {
            seeds: 0..40,
            ..Config::default()
        },
        || {
            let counter_name = unique("ops");
            let hist_name = unique("lat");
            let registry = dcs_telemetry::global();
            let observed = Arc::new(Mutex::new(Vec::new()));

            const RECORDERS: u64 = 3;
            const PER_THREAD: u64 = 5;
            let mut threads = Vec::new();
            for t in 0..RECORDERS {
                let counter = registry.counter(&counter_name);
                let hist = registry.histogram(&hist_name);
                threads.push(dcs_check::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.incr();
                        // Distinct powers of two land in distinct buckets.
                        hist.record(1 << (t * PER_THREAD + i));
                        dcs_check::thread::yield_now();
                    }
                }));
            }
            {
                let counter = registry.counter(&counter_name);
                let observed = observed.clone();
                threads.push(dcs_check::thread::spawn(move || {
                    for _ in 0..4 {
                        observed.lock().unwrap().push(counter.value());
                        dcs_check::thread::yield_now();
                    }
                }));
            }
            for t in threads {
                t.join().unwrap();
            }

            let total = RECORDERS * PER_THREAD;
            let counter = registry.counter(&counter_name);
            assert_eq!(counter.value(), total, "increments lost or duplicated");

            // Mid-run observations: a prefix of the true count, and
            // monotone — a counter that goes backwards double-merged.
            let seen = observed.lock().unwrap();
            let mut prev = 0;
            for &v in seen.iter() {
                assert!(v <= total, "snapshot overshot the issued increments");
                assert!(v >= prev, "snapshot went backwards");
                prev = v;
            }

            // The histogram saw one sample per increment, each in its own
            // bucket, so count/sum/max reconcile exactly.
            let snap = registry.histogram(&hist_name).snapshot();
            assert_eq!(snap.count, total);
            let expect_sum: u64 = (0..RECORDERS * PER_THREAD).map(|e| 1u64 << e).sum();
            assert_eq!(snap.sum, expect_sum);
            assert_eq!(snap.max, 1 << (RECORDERS * PER_THREAD - 1));
        },
    );
}

/// Snapshot merge is exact: two disjoint registries' snapshots merged
/// together carry every counter and histogram sample once.
#[test]
fn snapshot_merge_is_exact() {
    explore_with(
        "telemetry-snapshot-merge",
        Config {
            seeds: 0..20,
            ..Config::default()
        },
        || {
            let a = dcs_telemetry::Registry::new();
            let b = dcs_telemetry::Registry::new();
            let ca = a.counter("shared");
            let cb = b.counter("shared");
            let ha = a.histogram("h");
            let hb = b.histogram("h");

            let t1 = dcs_check::thread::spawn(move || {
                for _ in 0..7 {
                    ca.incr();
                    ha.record(8);
                    dcs_check::thread::yield_now();
                }
            });
            let t2 = dcs_check::thread::spawn(move || {
                for _ in 0..9 {
                    cb.add(2);
                    hb.record(32);
                    dcs_check::thread::yield_now();
                }
            });
            t1.join().unwrap();
            t2.join().unwrap();

            let mut merged = a.snapshot();
            merged.merge(&b.snapshot());
            assert_eq!(merged.counters["shared"], 7 + 18);
            let h = &merged.histograms["h"];
            assert_eq!(h.count, 16);
            assert_eq!(h.sum, 7 * 8 + 9 * 32);
            assert_eq!(h.max, 32);
        },
    );
}
