//! Demonstrates that the checker actually catches bugs: a writer that
//! frees immediately instead of retiring through EBR. Some interleaving
//! within the first few seeds orders the reader's access after the free,
//! and the shadow heap reports the use-after-free with the seed.

use dcs_check::sync::AtomicU64;
use dcs_check::{explore, shadow};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The bug: the writer unlinks the old allocation and frees it on the
/// spot — no epoch protection — while the reader dereferences a pointer
/// it loaded under no guard at all. The deterministic scheduler finds the
/// load-free-access ordering quickly, and `explore` panics with the seed
/// and the shadow heap's diagnosis.
#[test]
#[should_panic(expected = "use-after-free")]
fn premature_free_is_caught() {
    explore("bug-demo-premature-free", 200, || {
        let cell = Arc::new(AtomicU64::new(0));
        let first = Box::into_raw(Box::new(1u64));
        shadow::on_alloc(first);
        cell.store(first as u64, Ordering::SeqCst);

        let reader = {
            let cell = cell.clone();
            dcs_check::thread::spawn(move || {
                let p = cell.load(Ordering::SeqCst) as *const u64;
                // In real code an arbitrary amount of work sits between
                // loading a pointer and dereferencing it; model it with an
                // explicit schedule point so the writer's free can slip in.
                dcs_check::schedule_point();
                shadow::on_access(p);
            })
        };
        let writer = {
            let cell = cell.clone();
            dcs_check::thread::spawn(move || {
                let fresh = Box::into_raw(Box::new(2u64));
                shadow::on_alloc(fresh);
                let old = cell.swap(fresh as u64, Ordering::SeqCst) as *mut u64;
                shadow::on_free(old);
                // BUG: freeing without waiting for readers to quiesce.
                // SAFETY: not safe — that is the point of this test. The
                // shadow heap catches the reader's access to `old`.
                unsafe { drop(Box::from_raw(old)) };
            })
        };
        reader.join().unwrap();
        writer.join().unwrap();

        // Teardown for the interleavings that survive (reader ran first):
        // free the value still parked in the cell.
        let last = cell.load(Ordering::SeqCst) as *mut u64;
        shadow::on_free(last);
        // SAFETY: both threads joined; `last` has no other owner.
        unsafe { drop(Box::from_raw(last)) };
    });
}
