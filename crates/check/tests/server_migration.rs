//! Deterministic interleaving scenarios for online range migration
//! (`dcs-server`'s rebalance engine over `dcs-rebalance`'s write gate).
//!
//! A migration is copy → freeze → replay → install: writes admitted
//! during the copy window apply at the source *and* mirror into the
//! gate's tail; writes arriving after the freeze bounce with `MOVED`.
//! These seeds race client writers against the migrator under every
//! interleaving and check the handoff contract:
//!
//! * every offered request is answered exactly once — `Ok`, `MOVED`,
//!   `BUSY`, or a shutdown error; nothing is parked and forgotten
//!   mid-handoff;
//! * every *acknowledged* write is readable at the shard the final map
//!   names for its key — the copy/tail handoff loses nothing, whether
//!   the write landed before the copy, raced it, or chased the install;
//! * no write is acknowledged twice or applied to a shard that the
//!   final map says does not own it.

use dcs_check::{explore_with, Config};
use dcs_server::protocol::{Request, Response};
use dcs_server::rebalance::migrate_range;
use dcs_server::shard::{Mail, Partitioner, ReplySink, Shard, ShardConfig};
use dcs_tc::RecoveryLog;
use dcs_workload::{KvStore, StoreFailure};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Plain BTreeMap store with the range enumeration the migrator's bulk
/// copy needs. All interleaving-sensitive state lives in the shard and
/// the write gate; the scheduler serializes virtual threads, so these
/// std mutexes never actually contend.
#[derive(Default)]
struct MapStore(Mutex<BTreeMap<Vec<u8>, Vec<u8>>>);

impl KvStore for MapStore {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        Ok(self.0.lock().unwrap().get(key).cloned())
    }
    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.0.lock().unwrap().remove(&key);
        Ok(())
    }
    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .0
            .lock()
            .unwrap()
            .range(start.to_vec()..)
            .take(limit)
            .count())
    }
    fn kv_range(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        visit: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<usize, StoreFailure> {
        let m = self.0.lock().unwrap();
        let mut n = 0;
        for (k, v) in m.range(start.to_vec()..) {
            if n == limit || end.is_some_and(|e| k.as_slice() >= e) {
                break;
            }
            visit(k, v);
            n += 1;
        }
        Ok(n)
    }
}

/// Answer book shared by the scenario: one response per request id,
/// asserted at delivery so a double-answer fails on the exact seed.
#[derive(Default)]
struct Ledger(Mutex<BTreeMap<u64, Response>>);

impl ReplySink for Ledger {
    fn deliver(&self, id: u64, resp: Response) {
        let prev = self.0.lock().unwrap().insert(id, resp);
        assert!(prev.is_none(), "request {id} answered twice");
    }
}

/// Two shards over a `["", "m")` / `["m", ..)` split, sharing one
/// router. Shard 1 is built with shard 0's router so both see the same
/// live map and gates, exactly as `Server::start_with` wires them.
fn two_shard_fixture() -> (Vec<Arc<Shard>>, Arc<dcs_rebalance::Router>) {
    let backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>> = Arc::new(vec![
        Arc::new(MapStore::default()),
        Arc::new(MapStore::default()),
    ]);
    let part = Arc::new(Partitioner::from_splits(vec![b"m".to_vec()]));
    let cfg = ShardConfig::default();
    let s0 = Arc::new(Shard::new(
        0,
        &cfg,
        backends.clone(),
        part.clone(),
        Arc::new(RecoveryLog::in_memory()),
    ));
    let router = s0.router().clone();
    let s1 = Arc::new(
        Shard::new(1, &cfg, backends, part, Arc::new(RecoveryLog::in_memory()))
            .with_router(router.clone()),
    );
    (vec![s0, s1], router)
}

fn mail(id: u64, req: Request, sink: &Arc<Ledger>) -> Mail {
    Mail {
        id,
        req,
        reply: sink.clone() as Arc<dyn ReplySink>,
        enqueued: dcs_telemetry::now_nanos(),
    }
}

/// Writers race a full range migration. Distinct keys per request keep
/// the oracle simple: an `Ok` to request `i` means key `k_i = v_i` must
/// be readable at whatever shard the *final* map routes `k_i` to.
#[test]
fn migration_hands_off_every_acked_write() {
    explore_with(
        "server-migration-handoff",
        Config {
            seeds: 0..60,
            ..Config::default()
        },
        || {
            let (shards, router) = two_shard_fixture();
            // Pre-migration resident data the bulk copy must carry over.
            for i in 0..4u32 {
                shards[0]
                    .kv_backend()
                    .kv_put(format!("a{i}").into_bytes(), b"seed".to_vec())
                    .unwrap();
            }
            let ledger = Arc::new(Ledger::default());

            let worker = {
                let shard = shards[0].clone();
                dcs_check::thread::spawn(move || shard.run())
            };
            let writer = {
                let shard = shards[0].clone();
                let ledger = ledger.clone();
                dcs_check::thread::spawn(move || {
                    for i in 0..5u64 {
                        shard.offer(mail(
                            i,
                            Request::Put {
                                key: format!("b{i}").into_bytes(),
                                value: format!("v{i}").into_bytes(),
                            },
                            &ledger,
                        ));
                    }
                    // A read racing the handoff must also resolve.
                    shard.offer(mail(
                        100,
                        Request::Get {
                            key: b"a0".to_vec(),
                        },
                        &ledger,
                    ));
                    shard.mailbox().close();
                })
            };
            let migrator = {
                let shards = shards.clone();
                let router = router.clone();
                dcs_check::thread::spawn(move || migrate_range(&router, &shards, 0, 1))
            };

            writer.join().unwrap();
            worker.join().unwrap();
            let moved = migrator.join().unwrap();

            // The migration itself cannot fail in this scenario: the
            // gate is uncontended and both backends are infallible.
            let stats = moved.expect("migration aborted");
            let map = router.map().load();
            assert_eq!(map.epoch(), stats.epoch, "installed map not live");
            assert_eq!(map.shard_of(b"a0"), 1, "range 0 still on the source");
            // Bulk copy carried at least the 4 resident records; tail
            // replay accounts for writes that raced the copy window.
            assert!(stats.copied >= 4, "bulk copy missed resident records");

            let answers = ledger.0.lock().unwrap();
            assert_eq!(answers.len(), 6, "a request was never answered");
            for i in 0..5u64 {
                let key = format!("b{i}").into_bytes();
                let want = format!("v{i}").into_bytes();
                let owner = map.shard_of(&key);
                let at_owner = shards[owner].kv_backend().kv_get(&key).unwrap();
                match &answers[&i] {
                    // Acked ⇒ durable at the shard the final map names.
                    Response::Ok => {
                        assert_eq!(
                            at_owner.as_ref(),
                            Some(&want),
                            "acked write {i} lost in handoff"
                        );
                    }
                    // Bounced ⇒ the redirect names the real new owner,
                    // and the write must NOT have been applied there.
                    Response::Moved { shard, .. } => {
                        assert_eq!(*shard as usize, owner, "redirect to a non-owner");
                        assert!(at_owner.is_none(), "bounced write {i} applied anyway");
                    }
                    other => panic!("request {i}: unexpected {other:?}"),
                }
            }
            match &answers[&100] {
                Response::Value(v) => assert_eq!(v.as_deref(), Some(b"seed".as_slice())),
                Response::Moved { shard, .. } => assert_eq!(*shard, 1),
                other => panic!("read: unexpected {other:?}"),
            }
        },
    );
}

/// The migration aimed the other way: the writer's keys live in the
/// range that is *not* moving, so every write must be acknowledged and
/// stay on shard 0 regardless of interleaving — the gate must not
/// bounce or mirror traffic outside its lease.
#[test]
fn unrelated_range_is_untouched_by_migration() {
    explore_with(
        "server-migration-bystander",
        Config {
            seeds: 0..40,
            ..Config::default()
        },
        || {
            let (shards, router) = two_shard_fixture();
            shards[1]
                .kv_backend()
                .kv_put(b"z0".to_vec(), b"seed".to_vec())
                .unwrap();
            let ledger = Arc::new(Ledger::default());

            let worker = {
                let shard = shards[0].clone();
                dcs_check::thread::spawn(move || shard.run())
            };
            let writer = {
                let shard = shards[0].clone();
                let ledger = ledger.clone();
                dcs_check::thread::spawn(move || {
                    for i in 0..4u64 {
                        shard.offer(mail(
                            i,
                            Request::Put {
                                key: format!("a{i}").into_bytes(),
                                value: format!("v{i}").into_bytes(),
                            },
                            &ledger,
                        ));
                    }
                    shard.mailbox().close();
                })
            };
            // Range 1 (["m", ..), on shard 1) moves to shard 0 while
            // shard 0's worker serves range-0 writes.
            let migrator = {
                let shards = shards.clone();
                let router = router.clone();
                dcs_check::thread::spawn(move || migrate_range(&router, &shards, 1, 0))
            };

            writer.join().unwrap();
            worker.join().unwrap();
            migrator.join().unwrap().expect("migration aborted");

            let map = router.map().load();
            assert_eq!(map.shard_of(b"z0"), 0, "range 1 did not arrive");
            assert_eq!(
                shards[0].kv_backend().kv_get(b"z0").unwrap(),
                Some(b"seed".to_vec()),
                "moved range lost its record"
            );
            let answers = ledger.0.lock().unwrap();
            assert_eq!(answers.len(), 4, "a request was never answered");
            for i in 0..4u64 {
                assert_eq!(answers[&i], Response::Ok, "bystander write {i} not acked");
                let key = format!("a{i}").into_bytes();
                assert_eq!(
                    shards[0].kv_backend().kv_get(&key).unwrap(),
                    Some(format!("v{i}").into_bytes()),
                    "bystander write {i} lost"
                );
            }
        },
    );
}
