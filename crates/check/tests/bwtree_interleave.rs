//! Deterministic interleaving scenarios for `dcs-bwtree`.
//!
//! The instrumented build (feature `check`) routes every mapping-table
//! load/CAS and every EBR operation through the scheduler, so these seeds
//! explore orderings of the Bw-tree's multi-CAS structure modifications —
//! a split's child/parent installation racing a consolidation, a merge's
//! freeze/absorb/index-delete racing a scan — that are nearly impossible
//! to pin down with wall-clock threads.
//!
//! The tree pins the process-global EBR collector, so `leak_check` stays
//! off: chains retired when the tree drops may be reclaimed during a later
//! execution, which the per-execution shadow heap tolerates (events on
//! unknown addresses are recorded, not flagged).

use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_check::{explore_with, Config, Policy};
use std::sync::Arc;

fn key(i: usize) -> Vec<u8> {
    format!("key{i:04}").into_bytes()
}

/// A value fat enough that a handful of records overflows the 256-byte
/// leaves of [`BwTreeConfig::small_pages`], forcing splits mid-scenario.
fn fat_value(i: usize) -> Vec<u8> {
    format!("value{i:04}-{}", "x".repeat(32)).into_bytes()
}

/// Two writers race interleaved puts on a tree sized so the burst crosses
/// the split threshold while both threads are also prepending deltas past
/// the consolidation threshold: child-split CAS, parent index-entry CAS,
/// and consolidation CAS all interleave. The structural audit then walks
/// the final tree: key order inside fences, chain shapes, no unreachable
/// or leaked pages.
#[test]
fn split_consolidate_race() {
    explore_with(
        "bwtree-split-consolidate",
        Config {
            seeds: 0..200,
            ..Config::default()
        },
        || {
            let tree = Arc::new(BwTree::in_memory(BwTreeConfig::small_pages()));
            // Seed enough volume that the racing burst lands right at the
            // split boundary instead of spending steps warming up.
            for i in 0..8 {
                tree.put(key(i * 3), fat_value(i * 3));
            }

            let mut workers = Vec::new();
            for t in 0..2 {
                let tree = tree.clone();
                workers.push(dcs_check::thread::spawn(move || {
                    // Writer 0 takes keys ≡ 1 (mod 3), writer 1 keys ≡ 2:
                    // disjoint keys, same leaves, maximal CAS contention.
                    for i in 0..5 {
                        let k = i * 3 + t + 1;
                        tree.put(key(k), fat_value(k));
                    }
                }));
            }
            for w in workers {
                w.join().unwrap();
            }

            let guard = dcs_ebr::pin();
            let report = tree.audit(&guard).expect("structural audit");
            assert!(
                report.leaf_pages >= 2,
                "scenario must actually split: {report:?}"
            );
            drop(guard);

            // Every write must be readable afterwards.
            let written: Vec<usize> = (0..8)
                .map(|i| i * 3)
                .chain((0..5).flat_map(|i| [i * 3 + 1, i * 3 + 2]))
                .collect();
            for i in written {
                assert_eq!(
                    tree.get(&key(i)).as_deref(),
                    Some(fat_value(i).as_slice()),
                    "lost write for key {i}"
                );
            }
        },
    );
}

/// A range scan races leaf merges: one thread deletes the middle of the key
/// space (consolidation shrinks those leaves under `min_leaf_bytes`, which
/// triggers freeze/absorb/index-delete merges), while a scanner repeatedly
/// walks the whole tree. The scan must stay sorted, never invent keys, and
/// never lose a key that was not deleted; the audit then checks the merged
/// structure.
#[test]
fn scan_merge_race() {
    explore_with(
        "bwtree-scan-merge",
        Config {
            seeds: 0..200,
            policy: Policy::Pct { depth: 3 },
            ..Config::default()
        },
        || {
            let tree = Arc::new(BwTree::in_memory(BwTreeConfig::small_pages()));
            for i in 0..18 {
                tree.put(key(i), fat_value(i));
            }

            let deleter = {
                let tree = tree.clone();
                dcs_check::thread::spawn(move || {
                    for i in 5..13 {
                        tree.delete(key(i));
                    }
                })
            };
            let scanner = {
                let tree = tree.clone();
                dcs_check::thread::spawn(move || {
                    for _ in 0..2 {
                        let mut seen = Vec::new();
                        for item in tree.range(b"", None) {
                            let (k, _v) = item.expect("scan failed");
                            seen.push(k);
                        }
                        for w in seen.windows(2) {
                            assert!(w[0] < w[1], "scan out of order: {w:?}");
                        }
                        for s in &seen {
                            let ok = (0..18).any(|i| s.as_ref() == key(i).as_slice());
                            assert!(ok, "scan invented key {s:?}");
                        }
                        // Keys outside the deleted range survive every
                        // interleaving of the scan with the merges.
                        for i in (0..5).chain(13..18) {
                            assert!(
                                seen.iter().any(|s| s.as_ref() == key(i).as_slice()),
                                "scan lost live key {i}"
                            );
                        }
                    }
                })
            };
            deleter.join().unwrap();
            scanner.join().unwrap();

            let guard = dcs_ebr::pin();
            tree.audit(&guard).expect("structural audit after merges");
            drop(guard);

            for i in 0..18 {
                let got = tree.get(&key(i));
                if (5..13).contains(&i) {
                    assert_eq!(got, None, "deleted key {i} resurrected");
                } else {
                    assert_eq!(
                        got.as_deref(),
                        Some(fat_value(i).as_slice()),
                        "live key {i} lost after merges"
                    );
                }
            }
        },
    );
}
