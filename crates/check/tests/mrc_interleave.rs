//! Deterministic interleaving scenarios for the MRC profiler.
//!
//! The profiler sits on cache hot paths (record cache, page cache, LSM
//! read path), so several shard threads record into one consumer handle
//! while the stats endpoint and the flight recorder snapshot it. The
//! promise: recording is lossless (every access counted exactly once)
//! and a snapshot taken mid-run is a consistent prefix — access counts
//! never overshoot or run backwards, and the curve it carries is a
//! well-formed MRC (sizes ascending, miss ratios non-increasing) at
//! every explored interleaving.

use dcs_check::{explore_with, Config};
use dcs_telemetry::{MrcConfig, MrcProfiler, MrcSnapshot};
use std::sync::{Arc, Mutex};

fn assert_well_formed(snap: &MrcSnapshot) {
    for pair in snap.points.windows(2) {
        assert!(
            pair[0].entities < pair[1].entities,
            "curve sizes not ascending"
        );
        assert!(
            pair[0].miss_ratio >= pair[1].miss_ratio - 1e-12,
            "miss ratio increased with cache size"
        );
    }
    for p in &snap.points {
        assert!((0.0..=1.0).contains(&p.miss_ratio), "miss ratio out of range");
    }
    assert!(snap.sampled <= snap.accesses, "sampled more than observed");
}

/// Three recorder threads race a snapshotter over one exact-mode
/// profiler. Nothing is lost, nothing is counted twice, and every
/// mid-run snapshot is a monotone prefix carrying a well-formed curve.
#[test]
fn concurrent_recording_vs_snapshot_is_lossless() {
    explore_with(
        "mrc-profiler-lossless",
        Config {
            seeds: 0..40,
            ..Config::default()
        },
        || {
            let profiler = Arc::new(MrcProfiler::new("check.mrc", MrcConfig::exact()));
            let observed: Arc<Mutex<Vec<MrcSnapshot>>> = Arc::new(Mutex::new(Vec::new()));

            const RECORDERS: u64 = 3;
            const PER_THREAD: u64 = 5;
            let mut threads = Vec::new();
            for t in 0..RECORDERS {
                let profiler = profiler.clone();
                threads.push(dcs_check::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Overlapping key ranges across threads, so reuse
                        // distances are racy, not thread-private.
                        profiler.record(t * 2 + i, 100);
                        dcs_check::thread::yield_now();
                    }
                }));
            }
            {
                let profiler = profiler.clone();
                let observed = observed.clone();
                threads.push(dcs_check::thread::spawn(move || {
                    for _ in 0..4 {
                        observed.lock().unwrap().push(profiler.snapshot());
                        dcs_check::thread::yield_now();
                    }
                }));
            }
            for t in threads {
                t.join().unwrap();
            }

            let total = RECORDERS * PER_THREAD;
            let last = profiler.snapshot();
            assert_eq!(last.accesses, total, "accesses lost or double-counted");
            // Exact mode samples everything it observes.
            assert_eq!(last.sampled, total, "exact mode dropped an access");
            assert_well_formed(&last);
            // Interleaving moves individual reuse *distances* around, but
            // not the number of cold misses: the threads touch 9 distinct
            // keys (0..=8, overlapping), so the curve's top point — which
            // captures every finite-distance reuse — must show exactly
            // the cold misses at every explored schedule.
            let distinct = (0..RECORDERS)
                .flat_map(|t| (0..PER_THREAD).map(move |i| t * 2 + i))
                .collect::<std::collections::HashSet<_>>()
                .len() as f64;
            let top = last.points.last().expect("curve is non-empty");
            assert!(
                (top.miss_ratio - distinct / total as f64).abs() < 1e-9,
                "expected {} cold misses in {} accesses at the curve top, got {}",
                distinct,
                total,
                top.miss_ratio
            );

            // Mid-run snapshots: prefixes, monotone, well-formed.
            let seen = observed.lock().unwrap();
            let mut prev = 0;
            for snap in seen.iter() {
                assert!(snap.accesses <= total, "snapshot overshot the recorders");
                assert!(snap.accesses >= prev, "snapshot went backwards");
                prev = snap.accesses;
                assert_well_formed(snap);
            }
        },
    );
}

/// Recording keeps going *while* a snapshot drains the tracker: the
/// snapshot holds the profiler lock, so late recorders serialize behind
/// it and nothing is attributed to the wrong side of the cut.
#[test]
fn snapshot_cut_is_consistent() {
    explore_with(
        "mrc-snapshot-cut",
        Config {
            seeds: 0..30,
            ..Config::default()
        },
        || {
            let profiler = Arc::new(MrcProfiler::new("check.cut", MrcConfig::exact()));
            // A warm prefix every interleaving shares.
            for k in 0..6 {
                profiler.record(k, 64);
            }
            let writer = {
                let profiler = profiler.clone();
                dcs_check::thread::spawn(move || {
                    for k in 0..6 {
                        profiler.record(k, 64);
                        dcs_check::thread::yield_now();
                    }
                })
            };
            let reader = {
                let profiler = profiler.clone();
                dcs_check::thread::spawn(move || {
                    let snap = profiler.snapshot();
                    assert!(snap.accesses >= 6, "snapshot lost the warm prefix");
                    assert!(snap.accesses <= 12, "snapshot saw unissued accesses");
                    snap
                })
            };
            writer.join().unwrap();
            assert_well_formed(&reader.join().unwrap());

            let last = profiler.snapshot();
            assert_eq!(last.accesses, 12);
            // The second pass re-touches the same 6 keys: reuses at
            // distance ≤ 6, so a 6-entity cache would have hit them all.
            // The curve must reflect that: miss ratio at full residency
            // is the 6 cold misses over 12 accesses.
            let top = last.points.last().expect("curve is non-empty");
            assert!(
                (top.miss_ratio - 0.5).abs() < 1e-9,
                "expected 6 cold misses in 12 accesses at full residency, got {}",
                top.miss_ratio
            );
        },
    );
}
