//! Deterministic interleaving scenarios for `dcs-ebr`.
//!
//! These run the *instrumented* build of the collector (feature `check`)
//! under the virtual-thread scheduler: every atomic access in the pin
//! protocol, epoch advancement, and garbage collection is a schedule point,
//! so the seeds explore orderings — pin racing advance, retire racing
//! collect — that wall-clock threads only hit occasionally.

use dcs_check::sync::AtomicU64;
use dcs_check::{explore_with, Config, Policy};
use dcs_ebr::Collector;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// A two-thread pin/retire/advance interleaving in the style of a loom test:
/// thread A pins and reads a shared cell guarded by EBR; thread B swaps the
/// cell, retires the old allocation, and hammers the epoch. The shadow heap
/// flags any interleaving where the deferred drop runs while A could still
/// dereference the retired pointer.
#[test]
fn pin_retire_advance_two_threads() {
    explore_with(
        "ebr-pin-retire-advance",
        Config {
            seeds: 0..250,
            leak_check: true,
            ..Config::default()
        },
        || {
            let collector = Arc::new(Collector::new());
            let cell = Arc::new(AtomicU64::new(0)); // stores *mut u64 as u64
            let initial = Box::into_raw(Box::new(41u64));
            dcs_check::shadow::on_alloc(initial);
            cell.store(initial as u64, Ordering::SeqCst);

            let reader = {
                let collector = collector.clone();
                let cell = cell.clone();
                dcs_check::thread::spawn(move || {
                    let handle = collector.register();
                    for _ in 0..3 {
                        let guard = handle.pin();
                        let p = cell.load(Ordering::SeqCst) as *const u64;
                        // Validate against the shadow heap before touching
                        // the memory: if reclamation ran early under this
                        // interleaving, this reports UAF with the seed.
                        dcs_check::shadow::on_access(p);
                        // SAFETY: loaded under a pin; EBR must keep the
                        // allocation alive until the guard drops. If the
                        // collector is broken, the checker's shadow heap —
                        // not the host allocator — reports it.
                        let v = unsafe { *p };
                        assert!(v == 41 || v == 42, "tearing observed: {v}");
                        drop(guard);
                    }
                })
            };
            let writer = {
                let collector = collector.clone();
                let cell = cell.clone();
                dcs_check::thread::spawn(move || {
                    let handle = collector.register();
                    let fresh = Box::into_raw(Box::new(42u64));
                    dcs_check::shadow::on_alloc(fresh);
                    let guard = handle.pin();
                    let old = cell.swap(fresh as u64, Ordering::SeqCst) as *mut u64;
                    // SAFETY: `old` came from Box::into_raw and was just
                    // unlinked from `cell`; nobody can re-load it.
                    unsafe { guard.defer_drop(old) };
                    drop(guard);
                    // Hammer the epoch so reclamation gets every chance to
                    // run too early.
                    for _ in 0..4 {
                        handle.pin().flush();
                    }
                })
            };
            reader.join().unwrap();
            writer.join().unwrap();

            collector.audit().unwrap();

            // Tear down: the last allocation is still live in `cell`.
            let last = cell.load(Ordering::SeqCst) as *mut u64;
            let h = collector.register();
            let g = h.pin();
            // SAFETY: threads joined; `last` is the only remaining owner.
            unsafe { g.defer_drop(last) };
            drop(g);
            drop(h);
            // Dropping the collector runs every remaining deferred function;
            // with leak_check on, the harness verifies nothing leaked.
        },
    );
}

/// Retire storm racing epoch advancement: four threads each retire a burst
/// of allocations while repeatedly pinning, which forces collection cycles
/// to interleave with retirement at every point the scheduler can reach.
/// The shadow heap verifies every allocation is freed exactly once, and
/// only after it was retired.
#[test]
fn retire_storm_during_epoch_advance() {
    explore_with(
        "ebr-retire-storm",
        Config {
            // A heavier scenario: fewer seeds keep wall-clock sane while
            // still exceeding the 200-seed bar across the suite.
            seeds: 0..200,
            leak_check: true,
            ..Config::default()
        },
        || {
            let collector = Arc::new(Collector::new());
            let freed = Arc::new(AtomicU64::new(0));
            let mut handles = Vec::new();
            for _ in 0..3 {
                let collector = collector.clone();
                let freed = freed.clone();
                handles.push(dcs_check::thread::spawn(move || {
                    let handle = collector.register();
                    for _ in 0..4 {
                        let guard = handle.pin();
                        let p = Box::into_raw(Box::new(7u64));
                        // Register the allocation: the host allocator reuses
                        // addresses across iterations, and without this the
                        // shadow heap would see a retire at a Freed address.
                        dcs_check::shadow::on_alloc(p);
                        let freed = freed.clone();
                        // SAFETY: `p` was never published; retiring it here
                        // is trivially exclusive.
                        unsafe {
                            guard.defer_drop(p);
                        }
                        guard.defer(move || {
                            freed.fetch_add(1, Ordering::SeqCst);
                        });
                        drop(guard);
                        handle.pin().flush();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            collector.audit().unwrap();
            let stats = collector.stats();
            assert!(
                stats.deferred_total >= 24,
                "each thread defers 8 functions: {stats:?}"
            );
            drop(collector);
            // All deferred functions must have run by teardown.
            assert_eq!(freed.load(Ordering::SeqCst), 12, "deferred closures lost");
        },
    );
}

/// The epoch never advances past a pinned participant by more than one:
/// audited mid-flight from a third thread while two others pin/unpin.
#[test]
fn epoch_lag_invariant_under_contention() {
    explore_with(
        "ebr-epoch-lag",
        Config {
            seeds: 0..200,
            policy: Policy::Pct { depth: 3 },
            ..Config::default()
        },
        || {
            let collector = Arc::new(Collector::new());
            let mut handles = Vec::new();
            for _ in 0..2 {
                let collector = collector.clone();
                handles.push(dcs_check::thread::spawn(move || {
                    let handle = collector.register();
                    for _ in 0..3 {
                        let g = handle.pin();
                        g.flush();
                        drop(g);
                    }
                }));
            }
            let auditor = {
                let collector = collector.clone();
                dcs_check::thread::spawn(move || {
                    // Epoch monotonicity is checkable even while pins are in
                    // flight; the lag check only fires if state is corrupt
                    // enough to break between two SeqCst loads.
                    for _ in 0..3 {
                        let stats = collector.stats();
                        assert!(stats.global_epoch >= 2);
                    }
                })
            };
            for h in handles {
                h.join().unwrap();
            }
            auditor.join().unwrap();
            collector.audit().unwrap();
        },
    );
}
