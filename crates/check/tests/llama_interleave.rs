//! Deterministic interleaving scenarios for `dcs-llama`.
//!
//! The instrumented build routes the log-structured store's internal lock
//! and LSN allocator through the scheduler, and reports every page part's
//! lifecycle (buffered → superseded → GC-freed) to the shadow heap via
//! tagged tokens, so these seeds explore page flush / eviction racing
//! reads and GC racing writers. Each execution ends with the store's
//! structural audit: offset tables must stay coherent with the frames on
//! flash under every interleaving.

use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_check::{explore_with, Config};
use dcs_flashsim::{DeviceConfig, FlashDevice};
use dcs_llama::{Codec, LogStructuredStore, LssConfig};
use std::sync::Arc;

fn key(i: usize) -> Vec<u8> {
    format!("key{i:02}").into_bytes()
}

fn value(i: usize) -> Vec<u8> {
    format!("value{i:02}-{}", "x".repeat(24)).into_bytes()
}

fn small_store() -> (Arc<FlashDevice>, Arc<LogStructuredStore>) {
    let device = Arc::new(FlashDevice::new(DeviceConfig {
        segment_bytes: 4 << 10,
        segment_count: 64,
        ..DeviceConfig::small_test()
    }));
    let store = Arc::new(LogStructuredStore::new(
        device.clone(),
        LssConfig {
            // Tiny buffer: evictions flush to the device mid-scenario.
            flush_buffer_bytes: 1 << 10,
            gc_live_fraction: 0.9,
            codec: Codec::None,
            max_flush_chain: 4,
        },
    ));
    (device, store)
}

/// Page flush/eviction racing reads: one thread keeps evicting leaf pages
/// (write path into the store), another keeps reading keys (fault path out
/// of it), while the root writes fresh keys. No interleaving may lose a
/// write or break the offset-table/frame coherence audit.
#[test]
fn page_flush_vs_read() {
    explore_with(
        "llama-flush-vs-read",
        Config {
            seeds: 0..30,
            ..Config::default()
        },
        || {
            let (_device, store) = small_store();
            let tree = Arc::new(BwTree::with_store(
                BwTreeConfig::default(),
                store.clone() as Arc<dyn dcs_bwtree::PageStore>,
            ));
            for i in 0..6 {
                tree.put(key(i), value(i));
            }

            let evictor = {
                let tree = tree.clone();
                dcs_check::thread::spawn(move || {
                    for _ in 0..2 {
                        for p in tree.pages() {
                            if p.is_leaf {
                                // May legitimately fail if the page is being
                                // updated concurrently; only the audit and
                                // the final reads decide correctness.
                                let _ = tree.evict_page(p.pid);
                            }
                        }
                    }
                })
            };
            let reader = {
                let tree = tree.clone();
                dcs_check::thread::spawn(move || {
                    for i in 0..6 {
                        assert_eq!(
                            tree.get(&key(i)).as_deref(),
                            Some(value(i).as_slice()),
                            "reader lost key {i}"
                        );
                    }
                })
            };
            for i in 6..9 {
                tree.put(key(i), value(i));
            }
            evictor.join().unwrap();
            reader.join().unwrap();

            for i in 0..9 {
                assert_eq!(
                    tree.get(&key(i)).as_deref(),
                    Some(value(i).as_slice()),
                    "key {i} lost after flush/read race"
                );
            }
            store.audit().expect("offset tables coherent");
        },
    );
}

/// Writers superseding pages race garbage collection: churned evictions
/// leave mostly-dead segments, a GC thread relocates and trims them, and a
/// reader faults pages throughout. Tokens handed to the tree must survive
/// relocation, and the audit plus a double-recovery fingerprint check run
/// at the end.
#[test]
fn supersede_vs_gc() {
    explore_with(
        "llama-supersede-vs-gc",
        Config {
            seeds: 0..30,
            ..Config::default()
        },
        || {
            let (device, store) = small_store();
            let tree = Arc::new(BwTree::with_store(
                BwTreeConfig::default(),
                store.clone() as Arc<dyn dcs_bwtree::PageStore>,
            ));
            for i in 0..4 {
                tree.put(key(i), value(i));
            }

            let churner = {
                let (tree, store) = (tree.clone(), store.clone());
                dcs_check::thread::spawn(move || {
                    // Rewrite + evict the same keys: every round supersedes
                    // the previous flush, leaving dead parts for GC.
                    for round in 0..3 {
                        for i in 0..4 {
                            tree.put(key(i), format!("r{round}-{}", "y".repeat(24)).into_bytes());
                        }
                        for p in tree.pages() {
                            if p.is_leaf {
                                let _ = tree.evict_page(p.pid);
                            }
                        }
                        let _ = store.sync();
                    }
                })
            };
            let collector = {
                let store = store.clone();
                dcs_check::thread::spawn(move || {
                    for _ in 0..3 {
                        let _ = store.gc_once();
                    }
                })
            };
            let reader = {
                let tree = tree.clone();
                dcs_check::thread::spawn(move || {
                    for i in 0..4 {
                        assert!(tree.get(&key(i)).is_some(), "reader lost key {i}");
                    }
                })
            };
            churner.join().unwrap();
            collector.join().unwrap();
            reader.join().unwrap();

            store.audit().expect("offset tables coherent after GC");
            // Recovery idempotence: two recoveries from the synced device
            // agree on the logical state.
            store.sync().unwrap();
            let cfg = LssConfig {
                flush_buffer_bytes: 1 << 10,
                gc_live_fraction: 0.9,
                codec: Codec::None,
                max_flush_chain: 4,
            };
            let r1 = LogStructuredStore::recover_from_device(device.clone(), cfg.clone()).unwrap();
            let r2 = LogStructuredStore::recover_from_device(device, cfg).unwrap();
            assert_eq!(
                r1.fingerprint(),
                r2.fingerprint(),
                "recovery not idempotent"
            );
            r1.audit().expect("recovered tables coherent");
        },
    );
}
