//! Deterministic interleaving scenarios for the asynchronous I/O engine:
//! the flash simulator's submission/completion queue pair and the serving
//! layer's parked-miss table built on top of it.
//!
//! The engine's core promise is **no lost tickets**: every submitted
//! command is reaped as exactly one completion, no matter how submitters
//! and pollers interleave — and, one layer up, every GET a shard parks on
//! a pending miss is answered before shutdown completes. These seeds
//! explore both layers under the deterministic scheduler; a companion
//! `should_panic` test plants the classic lost-completion bug (a one-slot
//! doorbell where a queue belongs) and shows the checker catching it.

use dcs_check::explore;
use dcs_flashsim::{DeviceConfig, FlashDevice, IoQueuePair, IoRequest, SubmitError};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// One submitter races one poller over a shared queue pair. Under every
/// interleaving: every ticket issued by `submit` is reaped exactly once,
/// completions carry the right payload for their tag, and the queue pair
/// ends the scenario empty.
#[test]
fn concurrent_submit_vs_poll_loses_no_ticket() {
    explore("io-engine-submit-vs-poll", 60, || {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        // Lay down one distinct record per command so completions are
        // checkable against their tags.
        let addrs: Vec<_> = (0..6u64)
            .map(|i| device.append(&[i as u8; 64]).unwrap())
            .collect();
        let qp = Arc::new(IoQueuePair::new(device));

        let submitted = Arc::new(Mutex::new(BTreeSet::new()));
        let submitter = {
            let qp = qp.clone();
            let addrs = addrs.clone();
            let submitted = submitted.clone();
            dcs_check::thread::spawn(move || {
                for (i, addr) in addrs.iter().enumerate() {
                    let req = IoRequest {
                        addr: *addr,
                        len: 64,
                        tag: i as u64,
                    };
                    loop {
                        match qp.submit(req) {
                            Ok(ticket) => {
                                assert!(
                                    submitted.lock().unwrap().insert(ticket),
                                    "duplicate ticket {ticket:?}"
                                );
                                break;
                            }
                            // 6 commands against depth 8 cannot fill the
                            // queue, but keep the retry for robustness.
                            Err(SubmitError::QueueFull { .. }) => dcs_check::schedule_point(),
                        }
                    }
                }
            })
        };

        let reaped = Arc::new(Mutex::new(BTreeSet::new()));
        let poller = {
            let qp = qp.clone();
            let reaped = reaped.clone();
            dcs_check::thread::spawn(move || {
                let mut out = Vec::new();
                while reaped.lock().unwrap().len() < 6 {
                    out.clear();
                    qp.poll_completions(&mut out);
                    let mut reaped = reaped.lock().unwrap();
                    for c in out.drain(..) {
                        assert!(
                            reaped.insert(c.ticket),
                            "ticket {:?} reaped twice",
                            c.ticket
                        );
                        let buf = c.result.expect("read failed");
                        assert_eq!(buf, vec![c.tag as u8; 64], "payload/tag mismatch");
                    }
                    dcs_check::schedule_point();
                }
            })
        };

        submitter.join().unwrap();
        poller.join().unwrap();
        assert_eq!(
            *reaped.lock().unwrap(),
            *submitted.lock().unwrap(),
            "reaped tickets must be exactly the submitted tickets"
        );
        assert_eq!(qp.inflight(), 0, "queue pair not empty at the end");
    });
}

/// The planted bug: a single-slot completion "doorbell" where a queue
/// belongs. Two device-side completers each post their ticket into the
/// slot; under interleavings where both post before the reaper drains,
/// the second post overwrites the first and a completion is lost — its
/// requester would be parked forever. The deterministic scheduler finds
/// that ordering within a few seeds and the assertion names the bug.
#[test]
#[should_panic(expected = "completion lost")]
fn one_slot_completion_doorbell_loses_tickets() {
    use dcs_check::sync::AtomicU64;
    use std::sync::atomic::Ordering;

    explore("io-engine-lost-completion", 200, || {
        // 0 = empty; completers post tickets 1 and 2.
        let slot = Arc::new(AtomicU64::new(0));
        let reaped = Arc::new(Mutex::new(BTreeSet::new()));

        let completers: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|ticket| {
                let slot = slot.clone();
                // BUG: `store` instead of enqueue — an unread completion
                // already in the slot is silently overwritten.
                dcs_check::thread::spawn(move || slot.store(ticket, Ordering::SeqCst))
            })
            .collect();

        let reaper = {
            let slot = slot.clone();
            let reaped = reaped.clone();
            dcs_check::thread::spawn(move || {
                for _ in 0..4 {
                    let t = slot.swap(0, Ordering::SeqCst);
                    if t != 0 {
                        reaped.lock().unwrap().insert(t);
                    }
                    dcs_check::schedule_point();
                }
            })
        };

        for c in completers {
            c.join().unwrap();
        }
        reaper.join().unwrap();
        // Final drain: anything still in the slot is recoverable...
        let t = slot.swap(0, Ordering::SeqCst);
        if t != 0 {
            reaped.lock().unwrap().insert(t);
        }
        // ...but an overwritten ticket is gone for good.
        assert_eq!(
            reaped.lock().unwrap().len(),
            2,
            "completion lost: a parked request would never be answered"
        );
    });
}
