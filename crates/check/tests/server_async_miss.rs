//! Deterministic interleaving scenario for the shard's async miss path:
//! a producer races the shard worker (and a mailbox close) while GETs
//! miss to a fake device and get *parked* in the shard's pending-miss
//! table. Under every interleaving, shutdown must answer every accepted
//! request — including the parked ones — exactly once. A parked miss
//! silently dropped at close is exactly the bug the planted-doorbell demo
//! in `io_engine.rs` shows the checker catching one layer down.

use dcs_check::explore_with;
use dcs_server::protocol::{Request, Response};
use dcs_server::shard::{Mail, MissMode, Partitioner, ReplySink, Shard, ShardConfig};
use dcs_tc::RecoveryLog;
use dcs_workload::{AsyncGet, AsyncKvStore, CompletedGet, KvStore, StoreFailure};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Deterministic async store: `cold*` keys always miss; a miss's
/// completion is reapable at the very next poll (no wall-clock delay, so
/// the scheduler fully controls the interesting orderings — which all
/// live in the instrumented mailbox and the shard's park/drain loop).
#[derive(Default)]
struct ColdStore {
    map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
    next_token: AtomicU64,
    pending: Mutex<Vec<(u64, Vec<u8>)>>,
}

impl KvStore for ColdStore {
    fn kv_get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreFailure> {
        Ok(self.map.lock().unwrap().get(key).cloned())
    }
    fn kv_put(&self, key: Vec<u8>, value: Vec<u8>) -> Result<(), StoreFailure> {
        self.map.lock().unwrap().insert(key, value);
        Ok(())
    }
    fn kv_delete(&self, key: Vec<u8>) -> Result<(), StoreFailure> {
        self.map.lock().unwrap().remove(&key);
        Ok(())
    }
    fn kv_scan(&self, start: &[u8], limit: usize) -> Result<usize, StoreFailure> {
        Ok(self
            .map
            .lock()
            .unwrap()
            .range(start.to_vec()..)
            .take(limit)
            .count())
    }
}

impl AsyncKvStore for ColdStore {
    fn kv_get_submit(&self, key: &[u8]) -> Result<AsyncGet, StoreFailure> {
        if key.starts_with(b"cold") {
            let token = self.next_token.fetch_add(1, Ordering::Relaxed) + 1;
            self.pending.lock().unwrap().push((token, key.to_vec()));
            Ok(AsyncGet::Pending(token))
        } else {
            Ok(AsyncGet::Ready(self.map.lock().unwrap().get(key).cloned()))
        }
    }
    fn kv_poll(&self, out: &mut Vec<CompletedGet>) -> usize {
        let mut pending = self.pending.lock().unwrap();
        let n = pending.len();
        for (token, key) in pending.drain(..) {
            out.push(CompletedGet {
                token,
                result: Ok(self.map.lock().unwrap().get(&key).cloned()),
            });
        }
        n
    }
    fn kv_inflight(&self) -> usize {
        self.pending.lock().unwrap().len()
    }
}

/// Reply sink shared by the scenario: counts every answer by request id.
#[derive(Default)]
struct Ledger(Mutex<BTreeMap<u64, Response>>);

impl ReplySink for Ledger {
    fn deliver(&self, id: u64, resp: Response) {
        let prev = self.0.lock().unwrap().insert(id, resp);
        assert!(prev.is_none(), "request {id} answered twice");
    }
}

/// A producer offers a mix of missing and hitting GETs and then closes
/// the mailbox while the async-mode worker is mid-drain. Every request
/// must resolve exactly once: served with the right value, or refused
/// with a shutdown error at the mailbox — never parked-and-forgotten.
#[test]
fn shutdown_answers_every_parked_miss() {
    explore_with(
        "server-async-miss-shutdown",
        dcs_check::Config {
            seeds: 0..60,
            ..dcs_check::Config::default()
        },
        || {
            let store = Arc::new(ColdStore::default());
            store.kv_put(b"cold0".to_vec(), b"c0".to_vec()).unwrap();
            store.kv_put(b"cold1".to_vec(), b"c1".to_vec()).unwrap();
            store.kv_put(b"cold2".to_vec(), b"c2".to_vec()).unwrap();
            store.kv_put(b"hot".to_vec(), b"h".to_vec()).unwrap();
            let backends: Arc<Vec<Arc<dyn KvStore + Send + Sync>>> = Arc::new(vec![store.clone()]);
            let cfg = ShardConfig {
                miss_mode: MissMode::Async,
                batch_max: 2,
                ..ShardConfig::default()
            };
            let shard = Arc::new(
                Shard::new(
                    0,
                    &cfg,
                    backends,
                    Arc::new(Partitioner::single()),
                    Arc::new(RecoveryLog::in_memory()),
                )
                .with_async_backend(Some(store.clone())),
            );
            let ledger = Arc::new(Ledger::default());

            let worker = {
                let shard = shard.clone();
                dcs_check::thread::spawn(move || shard.run())
            };
            let producer = {
                let shard = shard.clone();
                let ledger = ledger.clone();
                dcs_check::thread::spawn(move || {
                    let reqs: [(u64, &[u8]); 5] = [
                        (1, b"cold0"),
                        (2, b"hot"),
                        (3, b"cold1"),
                        (4, b"hot"),
                        (5, b"cold2"),
                    ];
                    for (id, key) in reqs {
                        shard.offer(Mail {
                            id,
                            req: Request::Get { key: key.to_vec() },
                            reply: ledger.clone() as Arc<dyn ReplySink>,
                            enqueued: dcs_telemetry::now_nanos(),
                        });
                    }
                    shard.mailbox().close();
                })
            };

            producer.join().unwrap();
            worker.join().unwrap();

            let answers = ledger.0.lock().unwrap();
            assert_eq!(answers.len(), 5, "a request was never answered");
            let expected: [(u64, Option<&[u8]>); 5] = [
                (1, Some(b"c0")),
                (2, Some(b"h")),
                (3, Some(b"c1")),
                (4, Some(b"h")),
                (5, Some(b"c2")),
            ];
            for (id, want) in expected {
                match &answers[&id] {
                    Response::Value(got) => {
                        assert_eq!(got.as_deref(), want, "request {id} answered wrongly")
                    }
                    other => panic!("request {id}: unexpected {other:?}"),
                }
            }
            assert_eq!(store.kv_inflight(), 0, "fetches left dangling");
            assert_eq!(
                shard.metrics().misses_submitted.load(Ordering::Relaxed),
                3,
                "every cold GET must take the miss path"
            );
        },
    );
}
