//! Demonstrates the checker end-to-end: plant a lost-update race, let
//! seeded schedule exploration find it, then replay the reported seed and
//! show the failure is byte-for-byte reproducible.
//!
//! ```bash
//! cargo run -p dcs-check --example catch_race
//! ```

use dcs_check::sync::AtomicU64;
use dcs_check::{explore, replay, Policy};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Two threads increment a counter with a non-atomic load/store pair; the
/// classic lost update. Any interleaving where the loads overlap drops one
/// increment.
fn racy_scenario() {
    let counter = Arc::new(AtomicU64::new(0));
    let mut workers = Vec::new();
    for _ in 0..2 {
        let counter = counter.clone();
        workers.push(dcs_check::thread::spawn(move || {
            let v = counter.load(Ordering::SeqCst);
            counter.store(v + 1, Ordering::SeqCst);
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
}

fn main() {
    println!("hunting a planted lost-update race over seeded schedules...");
    let caught = std::panic::catch_unwind(|| explore("lost-update", 200, racy_scenario));
    let msg = match caught {
        Err(p) => p
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".into()),
        Ok(()) => {
            println!("FAIL: 200 seeds did not find the race");
            std::process::exit(1);
        }
    };
    println!("--- exploration report ---\n{msg}\n--------------------------");

    // Extract the seed the harness reported and replay it twice: the
    // failure must reproduce identically both times.
    let seed: u64 = msg
        .split("seed ")
        .nth(1)
        .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|s| s.parse().ok())
        .expect("report names the seed");
    for round in 1..=2 {
        let r = std::panic::catch_unwind(|| replay(seed, Policy::Random, racy_scenario));
        match r {
            Err(_) => println!("replay #{round} of seed {seed}: race reproduced"),
            Ok(()) => {
                println!("FAIL: replay #{round} of seed {seed} did not reproduce");
                std::process::exit(1);
            }
        }
    }

    // And the structural audits over a real Bw-tree, through the public API.
    let tree = dcs_bwtree::BwTree::in_memory(dcs_bwtree::BwTreeConfig::small_pages());
    for i in 0..300u32 {
        tree.put(format!("key{i:04}").into_bytes(), b"value".to_vec());
    }
    for i in (0..300u32).step_by(3) {
        tree.delete(format!("key{i:04}").into_bytes());
    }
    let guard = dcs_ebr::pin();
    let report = tree.audit(&guard).expect("structural audit");
    drop(guard);
    println!("bw-tree audit after 300 puts / 100 deletes: {report:?}");
    println!("ok");
}
