//! The leveled LSM tree.

use crate::memtable::Memtable;
use crate::sstable::{SsTable, TableValue};
use crate::sync::{Mutex, RwLock};
use bytes::Bytes;
use dcs_flashsim::{DeviceError, FlashDevice, IoQueuePair, IoRequest, SegmentId, SubmitError};
use std::collections::HashMap;
// Stats and id allocation stay on plain std atomics even in instrumented
// builds: monotonic counters admit no interleaving worth exploring, and
// keeping them raw keeps the checker's schedule space focused on the state
// lock (same convention as dcs-bwtree's stats).
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// LSM tuning knobs.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Freeze and flush the memtable at this payload size.
    pub memtable_bytes: usize,
    /// Compact L0 into L1 once it holds this many runs.
    pub l0_compaction_trigger: usize,
    /// Target total bytes for L1; level `i` targets `growth^(i-1)` times this.
    pub level_base_bytes: usize,
    /// Per-level size growth factor (RocksDB default 10).
    pub level_growth: usize,
    /// Maximum number of levels (including L0).
    pub max_levels: usize,
    /// Split compaction output into runs of roughly this many bytes.
    pub table_target_bytes: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        LsmConfig {
            memtable_bytes: 32 << 10,
            l0_compaction_trigger: 4,
            level_base_bytes: 256 << 10,
            level_growth: 10,
            max_levels: 7,
            table_target_bytes: 32 << 10,
        }
    }
}

/// Errors from the LSM tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmError {
    /// The device failed.
    Device(String),
}

impl From<DeviceError> for LsmError {
    fn from(e: DeviceError) -> Self {
        LsmError::Device(e.to_string())
    }
}

impl std::fmt::Display for LsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LsmError::Device(e) => write!(f, "device: {e}"),
        }
    }
}

impl std::error::Error for LsmError {}

/// Operation and amplification counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmStats {
    /// Reads issued.
    pub gets: u64,
    /// Writes issued (puts + deletes).
    pub puts: u64,
    /// Reads answered without device I/O (memtable/record-cache effect, or
    /// bloom/range filtering).
    pub mm_ops: u64,
    /// Reads that needed at least one device read.
    pub ss_ops: u64,
    /// Reads answered by the memtable specifically.
    pub memtable_hits: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Payload bytes accepted from the application.
    pub app_bytes_in: u64,
    /// Bytes written building tables (flush + compaction rewrites). The
    /// ratio to `app_bytes_in` is write amplification.
    pub table_bytes_written: u64,
    /// Flash segments reclaimed after their tables died.
    pub segments_reclaimed: u64,
}

#[derive(Default)]
struct StatsInner {
    gets: AtomicU64,
    puts: AtomicU64,
    mm_ops: AtomicU64,
    ss_ops: AtomicU64,
    memtable_hits: AtomicU64,
    flushes: AtomicU64,
    compactions: AtomicU64,
    app_bytes_in: AtomicU64,
    table_bytes_written: AtomicU64,
    segments_reclaimed: AtomicU64,
}

impl StatsInner {
    /// Count one main-memory operation, mirroring it into the process-wide
    /// cost ledger. SS ops are not mirrored here: the flash device is the
    /// single attribution point for secondary-storage I/O.
    fn mm_op(&self) {
        self.mm_ops.fetch_add(1, Ordering::Relaxed);
        // SPAN: the lsm.get/lsm.put call site holds the open span; this
        // mirror only forwards the count to the ledger.
        dcs_telemetry::ledger().mm_op();
    }
}

struct State {
    memtable: Arc<Memtable>,
    /// `levels[0]` newest-first, overlapping; deeper levels sorted and
    /// non-overlapping.
    levels: Vec<Vec<Arc<SsTable>>>,
    /// Live tables per flash segment, for reclamation.
    seg_tables: HashMap<SegmentId, usize>,
}

/// Outcome of a non-blocking [`LsmTree::get_submit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmGet {
    /// Answered without device I/O (memtable hit, or every table filtered
    /// by fences and bloom filters).
    Ready(Option<Bytes>),
    /// Candidate-block reads are in flight; the token identifies this read
    /// in later [`LsmTree::poll_gets`] completions.
    Pending(u64),
}

/// A completed asynchronous read, reaped by [`LsmTree::poll_gets`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LsmFinishedGet {
    /// The token [`LsmTree::get_submit`] returned.
    pub token: u64,
    /// The read's final outcome.
    pub result: Result<Option<Bytes>, LsmError>,
}

/// One in-flight speculative read: every candidate table's block was
/// submitted at once, and the result is decided in table priority order
/// once all blocks are back.
struct PendingGet {
    key: Vec<u8>,
    /// Candidate tables newest-first, each paired with its block once read.
    candidates: Vec<(Arc<SsTable>, Option<Vec<u8>>)>,
    /// Outstanding ticket → candidate index.
    tickets: HashMap<u64, usize>,
    failure: Option<LsmError>,
}

#[derive(Default)]
struct AsyncGets {
    next_token: u64,
    pending: HashMap<u64, PendingGet>,
}

/// A leveled LSM tree over the simulated flash device. See the crate docs.
pub struct LsmTree {
    device: Arc<FlashDevice>,
    config: LsmConfig,
    state: RwLock<State>,
    next_table_id: AtomicU64,
    stats: StatsInner,
    /// Queue pair for asynchronous point reads.
    get_qp: IoQueuePair,
    /// Separate queue pair for compaction prefetch, so a compaction drain
    /// never reaps a point read's completion.
    compact_qp: IoQueuePair,
    async_gets: Mutex<AsyncGets>,
    /// Miss-ratio-curve profiler over the record-level read stream
    /// (memtable + block path together: what a bigger memory budget
    /// would have absorbed).
    mrc: Arc<dcs_telemetry::MrcProfiler>,
}

impl LsmTree {
    /// An empty tree on `device`.
    pub fn new(device: Arc<FlashDevice>, config: LsmConfig) -> Self {
        let levels = (0..config.max_levels).map(|_| Vec::new()).collect();
        LsmTree {
            get_qp: IoQueuePair::new(device.clone()),
            compact_qp: IoQueuePair::new(device.clone()),
            device,
            config,
            state: RwLock::new(State {
                memtable: Arc::new(Memtable::new()),
                levels,
                seg_tables: HashMap::new(),
            }),
            next_table_id: AtomicU64::new(0),
            stats: StatsInner::default(),
            async_gets: Mutex::new(AsyncGets::default()),
            mrc: dcs_telemetry::mrc().profiler("mrc.lsm"),
        }
    }

    /// The device underneath.
    pub fn device(&self) -> &Arc<FlashDevice> {
        &self.device
    }

    /// Counter snapshot.
    pub fn stats(&self) -> LsmStats {
        LsmStats {
            gets: self.stats.gets.load(Ordering::Relaxed),
            puts: self.stats.puts.load(Ordering::Relaxed),
            mm_ops: self.stats.mm_ops.load(Ordering::Relaxed),
            ss_ops: self.stats.ss_ops.load(Ordering::Relaxed),
            memtable_hits: self.stats.memtable_hits.load(Ordering::Relaxed),
            flushes: self.stats.flushes.load(Ordering::Relaxed),
            compactions: self.stats.compactions.load(Ordering::Relaxed),
            app_bytes_in: self.stats.app_bytes_in.load(Ordering::Relaxed),
            table_bytes_written: self.stats.table_bytes_written.load(Ordering::Relaxed),
            segments_reclaimed: self.stats.segments_reclaimed.load(Ordering::Relaxed),
        }
    }

    /// Write amplification so far: table bytes written per application byte.
    pub fn write_amplification(&self) -> f64 {
        let s = self.stats();
        if s.app_bytes_in == 0 {
            0.0
        } else {
            s.table_bytes_written as f64 / s.app_bytes_in as f64
        }
    }

    /// Upsert. A *blind* write: never reads secondary storage (§6.2).
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) -> Result<(), LsmError> {
        let (key, value) = (key.into(), value.into());
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .app_bytes_in
            .fetch_add((key.len() + value.len()) as u64, Ordering::Relaxed);
        let memtable = self.state.read().memtable.clone();
        memtable.put(key, value);
        self.maybe_flush()
    }

    /// Delete (blind tombstone).
    pub fn delete(&self, key: impl Into<Bytes>) -> Result<(), LsmError> {
        let key = key.into();
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .app_bytes_in
            .fetch_add(key.len() as u64, Ordering::Relaxed);
        let memtable = self.state.read().memtable.clone();
        memtable.delete(key);
        self.maybe_flush()
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Bytes>, LsmError> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let state = self.state.read();
        if let Some(answer) = state.memtable.get(key) {
            self.stats.memtable_hits.fetch_add(1, Ordering::Relaxed);
            self.stats.mm_op();
            self.mrc_record(key, answer.as_ref().map_or(0, |v| v.len()));
            return Ok(answer);
        }
        let mut did_io = false;
        let mut result = None;
        'levels: for (li, level) in state.levels.iter().enumerate() {
            if li == 0 {
                // Overlapping runs: newest first.
                for t in level {
                    let (got, io) = t.get(&self.device, key)?;
                    did_io |= io;
                    if got.is_some() {
                        result = got;
                        break 'levels;
                    }
                }
            } else {
                // Non-overlapping: at most one candidate.
                let idx = level.partition_point(|t| t.last_key.as_ref() < key);
                if let Some(t) = level.get(idx) {
                    if t.covers(key) {
                        let (got, io) = t.get(&self.device, key)?;
                        did_io |= io;
                        if got.is_some() {
                            result = got;
                            break 'levels;
                        }
                    }
                }
            }
        }
        drop(state);
        if did_io {
            self.stats.ss_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.mm_op();
        }
        let found = match result {
            Some(TableValue::Put(v)) => Some(v),
            Some(TableValue::Tombstone) | None => None,
        };
        self.mrc_record(key, found.as_ref().map_or(0, |v| v.len()));
        Ok(found)
    }

    /// Feed one record access into the MRC profiler: what the memtable +
    /// block path together would absorb at a different memory budget.
    /// `val_len` is 0 when the value is not in hand (absent key, read
    /// still in flight).
    fn mrc_record(&self, key: &[u8], val_len: usize) {
        self.mrc.record_key(key, (key.len() + val_len) as u64);
    }

    /// Begin a non-blocking point lookup. Memtable hits and bloom-filtered
    /// misses resolve immediately; otherwise the sparse-index blocks of
    /// *every* candidate table are submitted to the device queue pair in
    /// one batch (a speculative parallel read: extra read I/O traded for a
    /// single device round trip of latency) and the read resolves in a
    /// later [`LsmTree::poll_gets`].
    ///
    /// The read linearizes at submit: it answers from the tables and
    /// memtable as of this call.
    pub fn get_submit(&self, key: &[u8]) -> Result<LsmGet, LsmError> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let state = self.state.read();
        if let Some(answer) = state.memtable.get(key) {
            self.stats.memtable_hits.fetch_add(1, Ordering::Relaxed);
            self.stats.mm_op();
            self.mrc_record(key, answer.as_ref().map_or(0, |v| v.len()));
            return Ok(LsmGet::Ready(answer));
        }
        // Candidate tables newest-first, with the block each would read.
        let mut cands: Vec<(Arc<SsTable>, usize, usize)> = Vec::new();
        for (li, level) in state.levels.iter().enumerate() {
            if li == 0 {
                for t in level {
                    if let Some((s, e)) = t.block_interval(key) {
                        cands.push((t.clone(), s, e));
                    }
                }
            } else {
                let idx = level.partition_point(|t| t.last_key.as_ref() < key);
                if let Some(t) = level.get(idx) {
                    if let Some((s, e)) = t.block_interval(key) {
                        cands.push((t.clone(), s, e));
                    }
                }
            }
        }
        drop(state);
        self.mrc_record(key, 0);
        if cands.is_empty() {
            self.stats.mm_op();
            return Ok(LsmGet::Ready(None));
        }
        let token = {
            let mut gets = self.async_gets.lock();
            let t = gets.next_token;
            gets.next_token += 1;
            t
        };
        let reqs: Vec<IoRequest> = cands
            .iter()
            .map(|(t, s, e)| IoRequest {
                addr: t.block_addr(*s),
                len: e - s,
                tag: token,
            })
            .collect();
        match self.get_qp.submit_batch(&reqs) {
            Ok(tickets) => {
                let pending = PendingGet {
                    key: key.to_vec(),
                    candidates: cands.into_iter().map(|(t, _, _)| (t, None)).collect(),
                    tickets: tickets.iter().enumerate().map(|(i, t)| (t.0, i)).collect(),
                    failure: None,
                };
                self.async_gets.lock().pending.insert(token, pending);
                Ok(LsmGet::Pending(token))
            }
            // Device queue saturated: degrade to the blocking probe order
            // (stop at the first table that answers). Correctness never
            // depends on a free queue slot.
            Err(SubmitError::QueueFull { .. }) => {
                let mut result = None;
                for (t, s, e) in &cands {
                    let block = self.device.read(t.block_addr(*s), e - s)?;
                    if let Some(v) = SsTable::search_block(&block, key) {
                        result = Some(v);
                        break;
                    }
                }
                self.stats.ss_ops.fetch_add(1, Ordering::Relaxed);
                Ok(LsmGet::Ready(match result {
                    Some(TableValue::Put(v)) => Some(v),
                    Some(TableValue::Tombstone) | None => None,
                }))
            }
        }
    }

    /// Reap every asynchronous read whose candidate blocks have all
    /// arrived, resolving each in table priority order (newest candidate
    /// wins). Non-blocking; returns reads resolved.
    pub fn poll_gets(&self, out: &mut Vec<LsmFinishedGet>) -> usize {
        let mut comps = Vec::new();
        self.get_qp.poll_completions(&mut comps);
        if comps.is_empty() {
            return 0;
        }
        let mut resolved = 0;
        let mut gets = self.async_gets.lock();
        for c in comps {
            let Some(g) = gets.pending.get_mut(&c.tag) else {
                continue;
            };
            let Some(idx) = g.tickets.remove(&c.ticket.0) else {
                continue;
            };
            match c.result {
                Ok(buf) => g.candidates[idx].1 = Some(buf),
                Err(e) => {
                    g.failure.get_or_insert(e.into());
                }
            }
            if !g.tickets.is_empty() {
                continue;
            }
            let g = gets.pending.remove(&c.tag).expect("pending get present");
            let result = match g.failure {
                Some(e) => Err(e),
                None => {
                    self.stats.ss_ops.fetch_add(1, Ordering::Relaxed);
                    let found = g.candidates.iter().find_map(|(_, block)| {
                        SsTable::search_block(block.as_deref().expect("block read"), &g.key)
                    });
                    Ok(match found {
                        Some(TableValue::Put(v)) => Some(v),
                        Some(TableValue::Tombstone) | None => None,
                    })
                }
            };
            out.push(LsmFinishedGet {
                token: c.tag,
                result,
            });
            resolved += 1;
        }
        resolved
    }

    /// Asynchronous reads currently in flight.
    pub fn gets_inflight(&self) -> usize {
        self.async_gets.lock().pending.len()
    }

    /// Block (spinning out any wall-clock device latency) until every
    /// in-flight read resolves into `out`.
    pub fn drain_gets(&self, out: &mut Vec<LsmFinishedGet>) {
        while self.gets_inflight() > 0 {
            if self.poll_gets(out) == 0 {
                std::thread::yield_now();
            }
        }
    }

    /// Scan `[start, end)` in key order, merged across all components.
    pub fn scan(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Bytes, Bytes)>, LsmError> {
        let state = self.state.read();
        // Sources ordered newest → oldest; first occurrence of a key wins.
        let mut merged: std::collections::BTreeMap<Bytes, TableValue> =
            std::collections::BTreeMap::new();
        let mut absorb = |entries: Vec<(Bytes, TableValue)>| {
            for (k, v) in entries {
                merged.entry(k).or_insert(v);
            }
        };
        absorb(
            state
                .memtable
                .range_snapshot(start, end)
                .into_iter()
                .map(|(k, v)| (k, v.into()))
                .collect(),
        );
        for (li, level) in state.levels.iter().enumerate() {
            let _ = li; // L0 and deeper levels scan identically here
            for t in level.iter() {
                let in_range = match end {
                    Some(e) => t.overlaps(start, e),
                    None => t.last_key.as_ref() >= start,
                };
                if !in_range {
                    continue;
                }
                let all = t.read_all(&self.device)?;
                absorb(
                    all.into_iter()
                        .filter(|(k, _)| {
                            k.as_ref() >= start && end.map(|e| k.as_ref() < e).unwrap_or(true)
                        })
                        .collect(),
                );
            }
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| match v {
                TableValue::Put(b) => Some((k, b)),
                TableValue::Tombstone => None,
            })
            .collect())
    }

    /// Scan up to `limit` records from `start` in key order.
    ///
    /// Unlike [`LsmTree::scan`], the merge stops once `limit` live records
    /// are produced. Each overlapping run is still read once (the store
    /// keeps no open iterators), but per-source candidate sets are capped
    /// and widened only if tombstone shadowing starves the merge — so the
    /// CPU cost is O(sources · limit), not O(range size).
    pub fn scan_limited(
        &self,
        start: &[u8],
        limit: usize,
    ) -> Result<Vec<(Bytes, Bytes)>, LsmError> {
        let mut cap = limit.saturating_add(256);
        loop {
            let (result, truncated) = self.scan_with_cap(start, limit, cap)?;
            if result.len() >= limit || !truncated {
                return Ok(result);
            }
            cap = cap.saturating_mul(2);
        }
    }

    fn scan_with_cap(
        &self,
        start: &[u8],
        limit: usize,
        cap: usize,
    ) -> Result<(Vec<(Bytes, Bytes)>, bool), LsmError> {
        let state = self.state.read();
        // Candidate lists, newest source first; each is (entries, truncated).
        let mut sources: Vec<(Vec<(Bytes, TableValue)>, bool)> = Vec::new();
        let (mem, mem_trunc) = state.memtable.range_snapshot_capped(start, None, cap);
        sources.push((
            mem.into_iter().map(|(k, v)| (k, v.into())).collect(),
            mem_trunc,
        ));
        for (li, level) in state.levels.iter().enumerate() {
            for t in level {
                if t.last_key.as_ref() < start {
                    continue;
                }
                // For deeper (non-overlapping) levels only runs from the
                // covering one rightward matter; reading them lazily per
                // cap-round would complicate little and save less.
                let _ = li;
                let all = t.read_all(&self.device)?;
                let from = all.partition_point(|(k, _)| k.as_ref() < start);
                let slice = &all[from..];
                let truncated = slice.len() > cap;
                sources.push((slice.iter().take(cap).cloned().collect(), truncated));
            }
        }
        drop(state);
        // Keys at or past a truncated source's last key cannot be merged
        // confidently (the source may hold more below them).
        let horizon: Option<Bytes> = sources
            .iter()
            .filter(|(v, truncated)| *truncated && !v.is_empty())
            .map(|(v, _)| v.last().expect("non-empty").0.clone())
            .min();
        let any_truncated = horizon.is_some();
        // K-way merge with newest-source-wins, stopping at the limit.
        let mut idx = vec![0usize; sources.len()];
        let mut out = Vec::with_capacity(limit.min(1024));
        while out.len() < limit {
            // Smallest next key across sources; ties go to the newest.
            let mut best: Option<(usize, &Bytes)> = None;
            for (s, (entries, _)) in sources.iter().enumerate() {
                if let Some((k, _)) = entries.get(idx[s]) {
                    if best.map(|(_, bk)| k < bk).unwrap_or(true) {
                        best = Some((s, k));
                    }
                }
            }
            let Some((s, key)) = best else { break };
            if let Some(h) = &horizon {
                if key >= h {
                    break;
                }
            }
            let key = key.clone();
            let value = sources[s].0[idx[s]].1.clone();
            // Advance every source past this key (older duplicates lose).
            for (s2, (entries, _)) in sources.iter().enumerate() {
                while entries
                    .get(idx[s2])
                    .map(|(k, _)| *k == key)
                    .unwrap_or(false)
                {
                    idx[s2] += 1;
                }
            }
            if let TableValue::Put(v) = value {
                out.push((key, v));
            }
        }
        let starved = any_truncated && out.len() < limit;
        Ok((out, starved))
    }

    /// Flush the memtable if it is over its budget, then compact as needed.
    fn maybe_flush(&self) -> Result<(), LsmError> {
        if self.state.read().memtable.approx_bytes() < self.config.memtable_bytes {
            return Ok(());
        }
        let mut state = self.state.write();
        // Re-check under the write lock (another thread may have flushed).
        if state.memtable.approx_bytes() < self.config.memtable_bytes {
            return Ok(());
        }
        let _span =
            dcs_telemetry::span("lsm.memtable_rotate", dcs_telemetry::CostClass::Maintenance);
        dcs_telemetry::ledger().maintenance_op();
        let old = std::mem::replace(&mut state.memtable, Arc::new(Memtable::new()));
        let snapshot = old.snapshot();
        if snapshot.is_empty() {
            return Ok(());
        }
        let entries: Vec<(Bytes, TableValue)> =
            snapshot.into_iter().map(|(k, v)| (k, v.into())).collect();
        let table = self.build_table(&mut state, &entries)?;
        state.levels[0].insert(0, table);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.compact(&mut state)?;
        Ok(())
    }

    /// Force a flush regardless of size (tests / shutdown).
    pub fn flush(&self) -> Result<(), LsmError> {
        let mut state = self.state.write();
        let _span =
            dcs_telemetry::span("lsm.memtable_rotate", dcs_telemetry::CostClass::Maintenance);
        let old = std::mem::replace(&mut state.memtable, Arc::new(Memtable::new()));
        let snapshot = old.snapshot();
        if snapshot.is_empty() {
            return Ok(());
        }
        let entries: Vec<(Bytes, TableValue)> =
            snapshot.into_iter().map(|(k, v)| (k, v.into())).collect();
        let table = self.build_table(&mut state, &entries)?;
        state.levels[0].insert(0, table);
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        self.compact(&mut state)?;
        Ok(())
    }

    fn build_table(
        &self,
        state: &mut State,
        entries: &[(Bytes, TableValue)],
    ) -> Result<Arc<SsTable>, LsmError> {
        let id = self.next_table_id.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(SsTable::build(&self.device, id, entries)?);
        self.stats
            .table_bytes_written
            .fetch_add(table.len as u64, Ordering::Relaxed);
        *state.seg_tables.entry(table.segment()).or_insert(0) += 1;
        Ok(table)
    }

    fn retire_table(&self, state: &mut State, table: &Arc<SsTable>) {
        let seg = table.segment();
        if let Some(count) = state.seg_tables.get_mut(&seg) {
            *count -= 1;
            if *count == 0 {
                state.seg_tables.remove(&seg);
                self.device.trim_segment(seg);
                self.stats
                    .segments_reclaimed
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Level target size in bytes.
    fn level_target(&self, level: usize) -> usize {
        self.config.level_base_bytes * self.config.level_growth.pow(level.saturating_sub(1) as u32)
    }

    /// Run compactions until every level is within budget.
    fn compact(&self, state: &mut State) -> Result<(), LsmError> {
        loop {
            // L0 by run count.
            if state.levels[0].len() >= self.config.l0_compaction_trigger {
                self.compact_level(state, 0)?;
                continue;
            }
            // Deeper levels by byte budget.
            let mut worked = false;
            for li in 1..self.config.max_levels - 1 {
                let total: usize = state.levels[li].iter().map(|t| t.len).sum();
                if total > self.level_target(li) {
                    self.compact_level(state, li)?;
                    worked = true;
                    break;
                }
            }
            if !worked {
                return Ok(());
            }
        }
    }

    /// Merge level `li` (all of L0, or the oldest run of a deeper level)
    /// with the overlapping runs of level `li + 1`.
    fn compact_level(&self, state: &mut State, li: usize) -> Result<(), LsmError> {
        self.stats.compactions.fetch_add(1, Ordering::Relaxed);
        let _span = dcs_telemetry::span("lsm.compact", dcs_telemetry::CostClass::Maintenance);
        dcs_telemetry::ledger().maintenance_op();
        let upper: Vec<Arc<SsTable>> = if li == 0 {
            std::mem::take(&mut state.levels[0])
        } else {
            // Oldest run first (smallest id).
            let idx = state.levels[li]
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.id)
                .map(|(i, _)| i)
                .expect("level not empty");
            vec![state.levels[li].remove(idx)]
        };
        let first = upper
            .iter()
            .map(|t| t.first_key.clone())
            .min()
            .expect("upper non-empty");
        let last = upper
            .iter()
            .map(|t| t.last_key.clone())
            .max()
            .expect("upper non-empty");
        let target_level = li + 1;
        let (overlapping, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut state.levels[target_level])
            .into_iter()
            .partition(|t| t.overlaps(&first, &last));
        state.levels[target_level] = kept;

        // Merge: newest source wins per key. Upper L0 runs are newest-first
        // already; deeper sources are older than upper by construction.
        // Input runs are prefetched through the queue pair so the device
        // works on many reads at once instead of one blocking round trip
        // per table.
        let inputs: Vec<Arc<SsTable>> = upper.iter().chain(overlapping.iter()).cloned().collect();
        let contents = self.read_tables_prefetched(&inputs)?;
        let mut merged: std::collections::BTreeMap<Bytes, TableValue> =
            std::collections::BTreeMap::new();
        for all in contents {
            for (k, v) in all {
                merged.entry(k).or_insert(v);
            }
        }
        // Drop tombstones when nothing deeper can hold an older value.
        let deeper_has_data =
            (target_level + 1..self.config.max_levels).any(|l| !state.levels[l].is_empty());
        let entries: Vec<(Bytes, TableValue)> = merged
            .into_iter()
            .filter(|(_, v)| deeper_has_data || !matches!(v, TableValue::Tombstone))
            .collect();

        // Write output runs, split at the target size.
        let mut new_tables = Vec::new();
        let mut chunk: Vec<(Bytes, TableValue)> = Vec::new();
        let mut chunk_bytes = 0usize;
        for (k, v) in entries {
            chunk_bytes += k.len()
                + match &v {
                    TableValue::Put(b) => b.len(),
                    TableValue::Tombstone => 0,
                };
            chunk.push((k, v));
            if chunk_bytes >= self.config.table_target_bytes {
                new_tables.push(self.build_table(state, &chunk)?);
                chunk.clear();
                chunk_bytes = 0;
            }
        }
        if !chunk.is_empty() {
            new_tables.push(self.build_table(state, &chunk)?);
        }
        // Install, keeping the level sorted by first key.
        state.levels[target_level].extend(new_tables);
        state.levels[target_level].sort_by(|a, b| a.first_key.cmp(&b.first_key));
        // Retire inputs.
        for t in upper.iter().chain(overlapping.iter()) {
            self.retire_table(state, t);
        }
        Ok(())
    }

    /// Read every table's full run through the compaction queue pair:
    /// batches are submitted as deep as the device queue allows (one
    /// doorbell charge per batch), completions reaped as they land. Falls
    /// back to smaller batches — ultimately single submissions plus a
    /// reaping spin — when the queue is contended.
    fn read_tables_prefetched(
        &self,
        tables: &[Arc<SsTable>],
    ) -> Result<Vec<Vec<(Bytes, TableValue)>>, LsmError> {
        let mut results: Vec<Option<Vec<(Bytes, TableValue)>>> =
            (0..tables.len()).map(|_| None).collect();
        let mut tickets: HashMap<u64, usize> = HashMap::new();
        let mut next = 0usize;
        let mut first_err: Option<LsmError> = None;
        let mut comps = Vec::new();
        while next < tables.len() || !tickets.is_empty() {
            // Submit the largest batch that fits under the queue depth.
            let mut chunk = tables.len() - next;
            while chunk > 0 {
                let reqs: Vec<IoRequest> = tables[next..next + chunk]
                    .iter()
                    .enumerate()
                    .map(|(i, t)| IoRequest {
                        addr: t.base_addr(),
                        len: t.len,
                        tag: (next + i) as u64,
                    })
                    .collect();
                match self.compact_qp.submit_batch(&reqs) {
                    Ok(ts) => {
                        for (i, ticket) in ts.iter().enumerate() {
                            tickets.insert(ticket.0, next + i);
                        }
                        next += chunk;
                        chunk = tables.len() - next;
                    }
                    Err(SubmitError::QueueFull { .. }) => chunk /= 2,
                }
            }
            comps.clear();
            if self.compact_qp.poll_completions(&mut comps) == 0 && !tickets.is_empty() {
                std::thread::yield_now();
            }
            for c in comps.drain(..) {
                let Some(idx) = tickets.remove(&c.ticket.0) else {
                    continue;
                };
                match c.result {
                    Ok(buf) => results[idx] = Some(SsTable::parse_all(&buf, tables[idx].entries)),
                    Err(e) => {
                        // Finish reaping what is in flight, then fail.
                        first_err.get_or_insert(e.into());
                        next = tables.len();
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every submitted read resolved"))
            .collect())
    }

    /// Number of runs per level (diagnostics).
    pub fn level_shape(&self) -> Vec<usize> {
        self.state.read().levels.iter().map(|l| l.len()).collect()
    }

    /// Total bytes held in tables.
    pub fn table_bytes(&self) -> usize {
        self.state
            .read()
            .levels
            .iter()
            .flatten()
            .map(|t| t.len)
            .sum()
    }

    /// In-memory footprint (memtable payload).
    pub fn memtable_bytes(&self) -> usize {
        self.state.read().memtable.approx_bytes()
    }

    /// Structural audit: walks every SSTable and checks the invariants the
    /// read path silently relies on. Returns a summary on success and the
    /// first violation found otherwise. O(total table bytes) — a test/debug
    /// tool, not a production call.
    ///
    /// Checked invariants:
    /// * the level vector has exactly `max_levels` levels;
    /// * every table's entries are strictly ascending, match its recorded
    ///   `first_key`/`last_key` fences and entry count, and every stored key
    ///   passes the table's own bloom filter (a false *negative* would make
    ///   the read path skip live data);
    /// * L1+ levels are sorted by first key and non-overlapping (the
    ///   `partition_point` lookup depends on both);
    /// * `seg_tables` refcounts equal a fresh recount of live tables per
    ///   segment (drift would trim segments still holding live tables, or
    ///   leak dead ones forever).
    pub fn audit(&self) -> Result<LsmAuditReport, String> {
        let state = self.state.read();
        if state.levels.len() != self.config.max_levels {
            return Err(format!(
                "level vector has {} levels, config says {}",
                state.levels.len(),
                self.config.max_levels
            ));
        }
        let mut report = LsmAuditReport::default();
        let mut seg_recount: HashMap<SegmentId, usize> = HashMap::new();
        for (li, level) in state.levels.iter().enumerate() {
            for t in level {
                report.tables += 1;
                *seg_recount.entry(t.segment()).or_insert(0) += 1;
                let all = t
                    .read_all(&self.device)
                    .map_err(|e| format!("L{li} table {}: read failed: {e}", t.id))?;
                if all.len() != t.entries {
                    return Err(format!(
                        "L{li} table {}: {} entries read, header says {}",
                        t.id,
                        all.len(),
                        t.entries
                    ));
                }
                let (Some(first), Some(last)) = (all.first(), all.last()) else {
                    return Err(format!("L{li} table {}: empty", t.id));
                };
                if first.0 != t.first_key || last.0 != t.last_key {
                    return Err(format!(
                        "L{li} table {}: fence keys disagree with contents",
                        t.id
                    ));
                }
                for w in all.windows(2) {
                    if w[0].0 >= w[1].0 {
                        return Err(format!(
                            "L{li} table {}: keys not strictly ascending at {:?}",
                            t.id, w[1].0
                        ));
                    }
                }
                for (k, v) in &all {
                    if !t.bloom_may_contain(k) {
                        return Err(format!(
                            "L{li} table {}: bloom filter rejects stored key {k:?}",
                            t.id
                        ));
                    }
                    report.entries += 1;
                    if matches!(v, TableValue::Tombstone) {
                        report.tombstones += 1;
                    }
                }
            }
            if li >= 1 {
                for w in level.windows(2) {
                    if w[0].first_key > w[1].first_key {
                        return Err(format!("L{li}: runs not sorted by first key"));
                    }
                    if w[0].last_key >= w[1].first_key {
                        return Err(format!(
                            "L{li}: runs overlap ({:?} .. {:?} vs {:?} ..)",
                            w[0].first_key, w[0].last_key, w[1].first_key
                        ));
                    }
                }
            }
        }
        if seg_recount != state.seg_tables {
            return Err(format!(
                "segment refcounts diverge: recounted {} segments, tracked {}",
                seg_recount.len(),
                state.seg_tables.len()
            ));
        }
        report.memtable_entries = state.memtable.len();
        Ok(report)
    }
}

/// Summary returned by a passing [`LsmTree::audit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsmAuditReport {
    /// Live SSTables across all levels.
    pub tables: usize,
    /// Entries stored in those tables (including tombstones).
    pub entries: usize,
    /// Tombstones among them.
    pub tombstones: usize,
    /// Entries currently in the memtable.
    pub memtable_entries: usize,
}

impl std::fmt::Debug for LsmTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LsmTree")
            .field("levels", &self.level_shape())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_flashsim::DeviceConfig;

    fn test_tree() -> LsmTree {
        let device = Arc::new(FlashDevice::new(DeviceConfig {
            segment_count: 1024,
            ..DeviceConfig::small_test()
        }));
        LsmTree::new(
            device,
            LsmConfig {
                memtable_bytes: 2 << 10,
                level_base_bytes: 8 << 10,
                table_target_bytes: 4 << 10,
                ..LsmConfig::default()
            },
        )
    }

    fn kv(i: u32) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:06}")),
            Bytes::from(format!("value-{i}")),
        )
    }

    #[test]
    fn put_get_through_memtable() {
        let t = test_tree();
        t.put(Bytes::from("a"), Bytes::from("1")).unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(Bytes::from("1")));
        assert_eq!(t.get(b"b").unwrap(), None);
        assert_eq!(t.stats().memtable_hits, 1);
    }

    #[test]
    fn survives_flush_and_compaction() {
        let t = test_tree();
        let n = 5000u32;
        for i in 0..n {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        let s = t.stats();
        assert!(s.flushes > 2, "flushes {}", s.flushes);
        assert!(s.compactions > 0, "compactions {}", s.compactions);
        for i in (0..n).step_by(53) {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k).unwrap(), Some(v), "key {i}");
        }
    }

    #[test]
    fn overwrites_take_latest_across_levels() {
        let t = test_tree();
        for round in 0..5u32 {
            for i in 0..500u32 {
                t.put(kv(i).0, Bytes::from(format!("r{round}-{i}")))
                    .unwrap();
            }
            t.flush().unwrap();
        }
        for i in (0..500u32).step_by(17) {
            assert_eq!(
                t.get(&kv(i).0).unwrap(),
                Some(Bytes::from(format!("r4-{i}"))),
                "key {i}"
            );
        }
    }

    #[test]
    fn deletes_shadow_older_levels() {
        let t = test_tree();
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        t.flush().unwrap();
        for i in (0..1000u32).step_by(2) {
            t.delete(kv(i).0).unwrap();
        }
        t.flush().unwrap();
        for i in 0..1000u32 {
            let got = t.get(&kv(i).0).unwrap();
            if i % 2 == 0 {
                assert_eq!(got, None, "key {i} should be deleted");
            } else {
                assert_eq!(got, Some(kv(i).1), "key {i} should live");
            }
        }
    }

    #[test]
    fn blind_updates_do_no_reads() {
        let t = test_tree();
        for i in 0..2000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        t.flush().unwrap();
        let reads_before = t.device().stats().reads;
        let compactions_before = t.stats().compactions;
        // Blind overwrites of flushed keys: no device READS except those
        // caused by compaction merging.
        for i in 0..100u32 {
            t.put(kv(i).0, Bytes::from("new")).unwrap();
        }
        if t.stats().compactions == compactions_before {
            assert_eq!(
                t.device().stats().reads,
                reads_before,
                "blind updates must not read"
            );
        }
    }

    #[test]
    fn write_amplification_is_tracked() {
        let t = test_tree();
        for i in 0..4000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        let wa = t.write_amplification();
        assert!(wa > 1.0, "write amp {wa} should exceed 1 after compactions");
        assert!(wa < 50.0, "write amp {wa} implausible");
    }

    #[test]
    fn scan_merges_all_components() {
        let t = test_tree();
        for i in 0..300u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        t.flush().unwrap();
        t.put(kv(5).0, Bytes::from("fresh")).unwrap();
        t.delete(kv(6).0).unwrap();
        let got = t.scan(&kv(0).0, Some(&kv(10).0)).unwrap();
        assert_eq!(got.len(), 9, "10 keys minus 1 deleted");
        assert_eq!(got[5].1, Bytes::from("fresh"));
        assert!(got.iter().all(|(k, _)| k != &kv(6).0));
        // Full scan covers everything.
        let all = t.scan(b"", None).unwrap();
        assert_eq!(all.len(), 299);
    }

    #[test]
    fn scan_limited_matches_full_scan_prefix() {
        let t = test_tree();
        for i in 0..3000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        // Tombstone a band right after the start point to force shadowing.
        for i in 100..160u32 {
            t.delete(kv(i).0).unwrap();
        }
        t.flush().unwrap();
        let limited = t.scan_limited(&kv(50).0, 200).unwrap();
        let full = t.scan(&kv(50).0, None).unwrap();
        assert_eq!(limited.len(), 200);
        assert_eq!(&limited[..], &full[..200], "prefix mismatch");
        // Exhaustion case: limit exceeds remaining records.
        let tail = t.scan_limited(&kv(2990).0, 500).unwrap();
        assert_eq!(tail.len(), 10);
    }

    #[test]
    fn scan_limited_empty_and_past_end() {
        let t = test_tree();
        assert!(t.scan_limited(b"", 10).unwrap().is_empty());
        for i in 0..50u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        assert!(t.scan_limited(b"zzzz", 10).unwrap().is_empty());
        assert_eq!(t.scan_limited(b"", 10).unwrap().len(), 10);
    }

    #[test]
    fn segments_reclaimed_after_compaction() {
        let device = Arc::new(FlashDevice::new(DeviceConfig {
            segment_bytes: 8 << 10,
            segment_count: 512,
            ..DeviceConfig::small_test()
        }));
        let t = LsmTree::new(
            device,
            LsmConfig {
                memtable_bytes: 2 << 10,
                level_base_bytes: 8 << 10,
                table_target_bytes: 4 << 10,
                ..LsmConfig::default()
            },
        );
        for i in 0..20_000u32 {
            t.put(kv(i % 2000).0, Bytes::from(format!("v{i}"))).unwrap();
        }
        assert!(
            t.stats().segments_reclaimed > 0,
            "dead segments should be trimmed"
        );
    }

    #[test]
    fn level_shape_is_leveled() {
        let t = test_tree();
        for i in 0..10_000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        let shape = t.level_shape();
        assert!(
            shape[0] < t.config.l0_compaction_trigger,
            "L0 over trigger: {shape:?}"
        );
        assert!(
            shape.iter().skip(1).any(|&n| n > 0),
            "no deep levels: {shape:?}"
        );
    }

    #[test]
    fn audit_passes_through_flush_and_compaction() {
        let t = test_tree();
        t.audit().unwrap();
        for i in 0..5000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        for i in (0..5000u32).step_by(3) {
            t.delete(kv(i).0).unwrap();
        }
        t.flush().unwrap();
        let report = t.audit().unwrap();
        assert!(report.tables > 0, "flushed data should live in tables");
        assert!(report.entries > 0);
        assert!(t.stats().compactions > 0, "scenario should compact");
    }

    #[test]
    fn async_get_matches_sync_across_levels() {
        let t = test_tree();
        for i in 0..3000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        for i in (0..3000u32).step_by(7) {
            t.delete(kv(i).0).unwrap();
        }
        t.flush().unwrap();
        // Submit a window of reads, then poll them all to completion and
        // compare with the blocking path.
        let mut expected = HashMap::new();
        let mut pending = HashMap::new();
        for i in (0..3000u32).step_by(111) {
            let (k, _) = kv(i);
            match t.get_submit(&k).unwrap() {
                LsmGet::Ready(v) => {
                    assert_eq!(v, t.get(&k).unwrap(), "key {i} (ready)");
                }
                LsmGet::Pending(token) => {
                    expected.insert(token, t.get(&k).unwrap());
                    pending.insert(token, i);
                }
            }
        }
        assert!(!pending.is_empty(), "flushed keys should need I/O");
        let mut out = Vec::new();
        t.drain_gets(&mut out);
        assert_eq!(out.len(), pending.len());
        for f in out {
            let i = pending[&f.token];
            assert_eq!(f.result.unwrap(), expected[&f.token], "key {i}");
        }
        assert_eq!(t.gets_inflight(), 0);
    }

    #[test]
    fn async_get_tombstone_shadows_older_level() {
        let t = test_tree();
        for i in 0..500u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        t.flush().unwrap();
        t.delete(kv(42).0).unwrap();
        t.flush().unwrap();
        let mut out = Vec::new();
        match t.get_submit(&kv(42).0).unwrap() {
            LsmGet::Ready(v) => assert_eq!(v, None),
            LsmGet::Pending(token) => {
                t.drain_gets(&mut out);
                let f = out.iter().find(|f| f.token == token).expect("completed");
                assert_eq!(f.result.clone().unwrap(), None, "tombstone must win");
            }
        }
    }

    #[test]
    fn speculative_reads_raise_io_depth() {
        let t = test_tree();
        for i in 0..4000u32 {
            let (k, v) = kv(i);
            t.put(k, v).unwrap();
        }
        t.flush().unwrap();
        let mut tokens = 0;
        for i in (0..4000u32).step_by(301) {
            if let LsmGet::Pending(_) = t.get_submit(&kv(i).0).unwrap() {
                tokens += 1;
            }
        }
        let mut out = Vec::new();
        t.drain_gets(&mut out);
        assert_eq!(out.len(), tokens);
        // Several block reads per submit window were in flight at once.
        assert!(
            t.device().stats().io_depth.max > 1,
            "speculative submits should overlap I/O: {:?}",
            t.device().stats().io_depth.max
        );
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let t = Arc::new(test_tree());
        let mut handles = Vec::new();
        for tid in 0..4u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u32 {
                    let id = tid * 2000 + i;
                    t.put(
                        Bytes::from(format!("c{id:07}")),
                        Bytes::from(format!("v{id}")),
                    )
                    .unwrap();
                }
            }));
        }
        for tid in 0..2u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u32 {
                    let _ = t.get(format!("c{:07}", i * 3 + tid).as_bytes()).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for id in (0..8000u32).step_by(97) {
            assert_eq!(
                t.get(format!("c{id:07}").as_bytes()).unwrap(),
                Some(Bytes::from(format!("v{id}"))),
                "key {id}"
            );
        }
    }
}
