//! A log-structured merge tree in the style of RocksDB / LevelDB.
//!
//! The cost/performance paper (§1.3, §6) uses RocksDB as its second example
//! of a modern data caching system: like Deuteronomy it is log-structured
//! (all secondary-storage writes are large sequential appends), accepts
//! **blind updates** into its in-memory tree without reading secondary
//! storage (§6.2), and its in-memory tree doubles as a **record cache**
//! (§6.3). This crate implements that system over the simulated flash
//! device:
//!
//! * [`Memtable`] — the sorted in-memory tree where all updates land.
//! * [`SsTable`] — immutable sorted runs on flash, each written with a
//!   single device append; per-table bloom filters and sparse indexes keep
//!   lookups to at most one device read per consulted table.
//! * [`LsmTree`] — leveled organization: L0 collects flushed memtables
//!   (overlapping, searched newest-first); L1+ are non-overlapping runs
//!   merged by compaction, with a configurable level-size growth factor.
//!
//! Write amplification, device I/O counts, and bloom-filter effectiveness
//! are all surfaced through [`LsmStats`] so the §6 experiments can compare
//! the LSM's write-shrinking behaviour with LLAMA's.
//!
//! ```
//! use dcs_lsm::{LsmConfig, LsmTree};
//! use dcs_flashsim::{DeviceConfig, FlashDevice};
//! use std::sync::Arc;
//!
//! let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
//! let lsm = LsmTree::new(device, LsmConfig::default());
//! lsm.put(b"k".to_vec(), b"v".to_vec()).unwrap();
//! assert_eq!(lsm.get(b"k").unwrap().as_deref(), Some(&b"v"[..]));
//! ```

mod bloom;
mod lsm;
mod memtable;
mod sstable;
mod sync;

pub use bloom::BloomFilter;
pub use lsm::{LsmAuditReport, LsmConfig, LsmError, LsmFinishedGet, LsmGet, LsmStats, LsmTree};
pub use memtable::Memtable;
pub use sstable::SsTable;
