//! Synchronization facade, re-exported from the workspace-shared
//! `dcs-syncshim`: `parking_lot` / `std::sync::atomic` in normal builds,
//! the `dcs-check` instrumented shims when the `check` feature is on (the
//! feature forwards to `dcs-syncshim/check`). The shims turn every lock
//! acquisition and atomic access into a schedule point of the deterministic
//! interleaving checker; see `crates/check`.
//!
//! Stats counters deliberately stay on plain `std` atomics (see
//! `lsm.rs`) — instrumenting monotonic counters would only inflate the
//! schedule space without adding any interleaving of interest.

pub use dcs_syncshim::atomic::{AtomicUsize, Ordering};
pub use dcs_syncshim::pl::{Mutex, RwLock};
