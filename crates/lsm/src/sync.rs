//! Synchronization facade: `parking_lot` / `std::sync::atomic` in normal
//! builds, the `dcs-check` instrumented shims when the `check` feature is
//! on. The shims turn every lock acquisition and atomic access into a
//! schedule point of the deterministic interleaving checker; see
//! `crates/check`.
//!
//! Stats counters deliberately stay on plain `std` atomics (see
//! `lsm.rs`) — instrumenting monotonic counters would only inflate the
//! schedule space without adding any interleaving of interest.

#[cfg(feature = "check")]
pub use dcs_check::sync::pl::RwLock;
#[cfg(feature = "check")]
pub use dcs_check::sync::{AtomicUsize, Ordering};

#[cfg(not(feature = "check"))]
pub use parking_lot::RwLock;
#[cfg(not(feature = "check"))]
pub use std::sync::atomic::{AtomicUsize, Ordering};
