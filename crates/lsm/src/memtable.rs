//! The in-memory tree where all updates are first "accepted" (§6.1).

use crate::sync::{AtomicUsize, Ordering, RwLock};
use bytes::Bytes;
use std::collections::BTreeMap;

/// A record state in the memtable: a value or a tombstone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MemValue {
    Put(Bytes),
    Tombstone,
}

/// Sorted in-memory write buffer.
///
/// All updates — including blind updates to keys whose current value lives
/// on flash — land here without any read I/O (§6.2), and reads of recently
/// written keys are served from here without I/O (the record-cache effect,
/// §6.3).
pub struct Memtable {
    map: RwLock<BTreeMap<Bytes, MemValue>>,
    bytes: AtomicUsize,
}

impl Memtable {
    /// An empty memtable.
    pub fn new() -> Self {
        Memtable {
            map: RwLock::new(BTreeMap::new()),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Upsert a value.
    pub fn put(&self, key: Bytes, value: Bytes) {
        let (klen, vlen) = (key.len(), value.len());
        let mut map = self.map.write();
        match map.insert(key, MemValue::Put(value)) {
            None => {
                self.bytes.fetch_add(klen + vlen, Ordering::Relaxed);
            }
            Some(MemValue::Tombstone) => {
                self.bytes.fetch_add(vlen, Ordering::Relaxed);
            }
            Some(MemValue::Put(old)) => {
                self.bytes.fetch_add(vlen, Ordering::Relaxed);
                self.bytes.fetch_sub(old.len(), Ordering::Relaxed);
            }
        }
    }

    /// Record a deletion (tombstone).
    pub fn delete(&self, key: Bytes) {
        let delta = key.len();
        let mut map = self.map.write();
        if map.insert(key, MemValue::Tombstone).is_none() {
            self.bytes.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Look a key up. `None` = not present here (check lower levels);
    /// `Some(None)` = tombstoned; `Some(Some(v))` = live value.
    pub fn get(&self, key: &[u8]) -> Option<Option<Bytes>> {
        let map = self.map.read();
        map.get(key).map(|v| match v {
            MemValue::Put(b) => Some(b.clone()),
            MemValue::Tombstone => None,
        })
    }

    /// Approximate payload bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the contents in key order (for flushing).
    pub(crate) fn snapshot(&self) -> Vec<(Bytes, MemValue)> {
        self.map
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Range snapshot `[start, end)` for scans.
    pub(crate) fn range_snapshot(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Vec<(Bytes, MemValue)> {
        self.range_snapshot_capped(start, end, usize::MAX).0
    }

    /// Range snapshot bounded to `cap` items; the second value reports
    /// whether the snapshot was truncated by the cap.
    pub(crate) fn range_snapshot_capped(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        cap: usize,
    ) -> (Vec<(Bytes, MemValue)>, bool) {
        let map = self.map.read();
        let mut out = Vec::new();
        let mut truncated = false;
        for (k, v) in map
            .range(Bytes::copy_from_slice(start)..)
            .take_while(|(k, _)| end.map(|e| k.as_ref() < e).unwrap_or(true))
        {
            if out.len() >= cap {
                truncated = true;
                break;
            }
            out.push((k.clone(), v.clone()));
        }
        (out, truncated)
    }
}

impl Default for Memtable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn put_get_delete() {
        let m = Memtable::new();
        assert_eq!(m.get(b"k"), None);
        m.put(b("k"), b("v"));
        assert_eq!(m.get(b"k"), Some(Some(b("v"))));
        m.delete(b("k"));
        assert_eq!(m.get(b"k"), Some(None));
    }

    #[test]
    fn snapshot_is_sorted() {
        let m = Memtable::new();
        m.put(b("c"), b("3"));
        m.put(b("a"), b("1"));
        m.put(b("b"), b("2"));
        let snap = m.snapshot();
        let keys: Vec<_> = snap.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec![b("a"), b("b"), b("c")]);
    }

    #[test]
    fn bytes_grow_with_content() {
        let m = Memtable::new();
        assert_eq!(m.approx_bytes(), 0);
        m.put(b("key"), b("value"));
        assert_eq!(m.approx_bytes(), 8);
        m.put(b("key"), b("longer-value"));
        assert!(m.approx_bytes() >= 12);
    }

    #[test]
    fn range_snapshot_bounds() {
        let m = Memtable::new();
        for i in 0..10u32 {
            m.put(Bytes::from(format!("k{i}")), b("v"));
        }
        let r = m.range_snapshot(b"k3", Some(b"k7"));
        assert_eq!(r.len(), 4);
        assert_eq!(r[0].0, b("k3"));
        assert_eq!(r[3].0, b("k6"));
    }
}
