//! Immutable sorted runs on flash.

use crate::bloom::BloomFilter;
use crate::memtable::MemValue;
use bytes::Bytes;
use dcs_flashsim::{FlashAddress, FlashDevice};

/// Entries per sparse-index interval.
const INDEX_INTERVAL: usize = 16;

/// Bits per key in the bloom filter (RocksDB default).
const BLOOM_BITS_PER_KEY: usize = 10;

/// An entry as stored in a table: tombstones must be persisted so newer
/// levels can shadow older values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TableValue {
    Put(Bytes),
    Tombstone,
}

impl From<MemValue> for TableValue {
    fn from(v: MemValue) -> Self {
        match v {
            MemValue::Put(b) => TableValue::Put(b),
            MemValue::Tombstone => TableValue::Tombstone,
        }
    }
}

/// An immutable sorted run. Data lives on flash (one device append); the
/// bloom filter and a sparse index stay in memory, as in RocksDB's
/// table-cache steady state.
pub struct SsTable {
    /// Where the serialized run begins.
    addr: FlashAddress,
    /// Serialized length in bytes.
    pub(crate) len: usize,
    /// First key in the run.
    pub(crate) first_key: Bytes,
    /// Last key in the run.
    pub(crate) last_key: Bytes,
    /// Number of entries.
    pub(crate) entries: usize,
    bloom: BloomFilter,
    /// `(key, byte offset)` every [`INDEX_INTERVAL`] entries.
    index: Vec<(Bytes, u32)>,
    /// Monotone id for age ordering (newer = larger).
    pub(crate) id: u64,
}

fn push_entry(out: &mut Vec<u8>, key: &[u8], value: &TableValue) {
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    match value {
        TableValue::Put(v) => {
            out.push(0);
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            out.extend_from_slice(v);
        }
        TableValue::Tombstone => out.push(1),
    }
}

fn read_entry(buf: &[u8], pos: &mut usize) -> Option<(Bytes, TableValue)> {
    if *pos + 4 > buf.len() {
        return None;
    }
    let klen = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().ok()?) as usize;
    *pos += 4;
    let key = Bytes::copy_from_slice(buf.get(*pos..*pos + klen)?);
    *pos += klen;
    let tag = *buf.get(*pos)?;
    *pos += 1;
    let value = match tag {
        0 => {
            let vlen = u32::from_le_bytes(buf.get(*pos..*pos + 4)?.try_into().ok()?) as usize;
            *pos += 4;
            let v = Bytes::copy_from_slice(buf.get(*pos..*pos + vlen)?);
            *pos += vlen;
            TableValue::Put(v)
        }
        1 => TableValue::Tombstone,
        _ => return None,
    };
    Some((key, value))
}

impl SsTable {
    /// Build and persist a run from sorted entries. One device append.
    pub(crate) fn build(
        device: &FlashDevice,
        id: u64,
        entries: &[(Bytes, TableValue)],
    ) -> Result<SsTable, dcs_flashsim::DeviceError> {
        assert!(!entries.is_empty(), "empty SSTable");
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "unsorted run");
        let mut data = Vec::new();
        let mut bloom = BloomFilter::new(entries.len(), BLOOM_BITS_PER_KEY);
        let mut index = Vec::new();
        for (i, (k, v)) in entries.iter().enumerate() {
            if i % INDEX_INTERVAL == 0 {
                index.push((k.clone(), data.len() as u32));
            }
            bloom.insert(k);
            push_entry(&mut data, k, v);
        }
        let addr = device.append(&data)?;
        Ok(SsTable {
            addr,
            len: data.len(),
            first_key: entries[0].0.clone(),
            last_key: entries[entries.len() - 1].0.clone(),
            entries: entries.len(),
            bloom,
            index,
            id,
        })
    }

    /// Whether `key` falls within this run's key range.
    /// Whether the bloom filter admits `key` (audit support: every key
    /// actually stored must pass its own filter).
    pub(crate) fn bloom_may_contain(&self, key: &[u8]) -> bool {
        self.bloom.may_contain(key)
    }

    pub(crate) fn covers(&self, key: &[u8]) -> bool {
        self.first_key.as_ref() <= key && key <= self.last_key.as_ref()
    }

    /// Whether this run's range overlaps `[first, last]`.
    pub(crate) fn overlaps(&self, first: &[u8], last: &[u8]) -> bool {
        !(self.last_key.as_ref() < first || last < self.first_key.as_ref())
    }

    /// The byte interval `[start, end)` of the sparse-index block that
    /// could hold `key`, or `None` when the range fence or bloom filter
    /// proves the key absent without I/O. Feeds both the blocking
    /// [`SsTable::get`] and the async submit path, which turns the interval
    /// into an [`dcs_flashsim::IoRequest`] via [`SsTable::block_addr`].
    pub(crate) fn block_interval(&self, key: &[u8]) -> Option<(usize, usize)> {
        if !self.covers(key) || !self.bloom.may_contain(key) {
            return None;
        }
        // Sparse index: find the interval whose first key ≤ key.
        let slot = self
            .index
            .partition_point(|(k, _)| k.as_ref() <= key)
            .saturating_sub(1);
        let start = self.index[slot].1 as usize;
        let end = self
            .index
            .get(slot + 1)
            .map(|(_, off)| *off as usize)
            .unwrap_or(self.len);
        Some((start, end))
    }

    /// Flash address of byte `start` within this run.
    pub(crate) fn block_addr(&self, start: usize) -> FlashAddress {
        FlashAddress {
            segment: self.addr.segment,
            offset: self.addr.offset + start as u32,
        }
    }

    /// Address of the run's first byte (whole-run reads).
    pub(crate) fn base_addr(&self) -> FlashAddress {
        self.addr
    }

    /// Search one sparse-index block (as read from the device) for `key`.
    pub(crate) fn search_block(block: &[u8], key: &[u8]) -> Option<TableValue> {
        let mut pos = 0usize;
        while let Some((k, v)) = read_entry(block, &mut pos) {
            if k.as_ref() == key {
                return Some(v);
            }
            if k.as_ref() > key {
                break;
            }
        }
        None
    }

    /// Point lookup: bloom check, then at most one device read of the
    /// sparse-index interval containing the key.
    ///
    /// Returns `(result, did_io)`.
    pub(crate) fn get(
        &self,
        device: &FlashDevice,
        key: &[u8],
    ) -> Result<(Option<TableValue>, bool), dcs_flashsim::DeviceError> {
        let Some((start, end)) = self.block_interval(key) else {
            return Ok((None, false));
        };
        let block = device.read(self.block_addr(start), end - start)?;
        Ok((Self::search_block(&block, key), true))
    }

    /// Decode a whole serialized run (as read from the device).
    pub(crate) fn parse_all(buf: &[u8], capacity: usize) -> Vec<(Bytes, TableValue)> {
        let mut out = Vec::with_capacity(capacity);
        let mut pos = 0usize;
        while let Some(e) = read_entry(buf, &mut pos) {
            out.push(e);
        }
        out
    }

    /// Read the whole run back (for compaction and scans).
    pub(crate) fn read_all(
        &self,
        device: &FlashDevice,
    ) -> Result<Vec<(Bytes, TableValue)>, dcs_flashsim::DeviceError> {
        let buf = device.read(self.addr, self.len)?;
        Ok(Self::parse_all(&buf, self.entries))
    }

    /// The flash segment holding this run.
    pub(crate) fn segment(&self) -> dcs_flashsim::SegmentId {
        self.addr.segment
    }
}

impl std::fmt::Debug for SsTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsTable")
            .field("id", &self.id)
            .field("entries", &self.entries)
            .field("bytes", &self.len)
            .field("first", &self.first_key)
            .field("last", &self.last_key)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_flashsim::DeviceConfig;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    fn sample_entries(n: u32) -> Vec<(Bytes, TableValue)> {
        (0..n)
            .map(|i| {
                let v = if i % 10 == 9 {
                    TableValue::Tombstone
                } else {
                    TableValue::Put(Bytes::from(format!("value{i}")))
                };
                (Bytes::from(format!("key{i:05}")), v)
            })
            .collect()
    }

    #[test]
    fn build_and_point_lookup() {
        let device = FlashDevice::new(DeviceConfig::small_test());
        let entries = sample_entries(200);
        let t = SsTable::build(&device, 1, &entries).unwrap();
        assert_eq!(device.stats().writes, 1, "one append per table");
        for (k, v) in &entries {
            let (got, _io) = t.get(&device, k).unwrap();
            assert_eq!(got.as_ref(), Some(v), "key {k:?}");
        }
    }

    #[test]
    fn absent_keys_mostly_skip_io() {
        let device = FlashDevice::new(DeviceConfig::small_test());
        let t = SsTable::build(&device, 1, &sample_entries(500)).unwrap();
        let reads_before = device.stats().reads;
        let mut ios = 0;
        for i in 0..500u32 {
            let (got, io) = t.get(&device, format!("nope{i:05}").as_bytes()).unwrap();
            assert_eq!(got, None);
            if io {
                ios += 1;
            }
        }
        // Out-of-range keys are free; in-range absent keys are mostly
        // filtered by the bloom filter.
        assert!(ios < 30, "{ios} I/Os for absent keys");
        assert_eq!(device.stats().reads - reads_before, ios as u64);
    }

    #[test]
    fn in_range_absent_key() {
        let device = FlashDevice::new(DeviceConfig::small_test());
        let entries = vec![
            (b("a"), TableValue::Put(b("1"))),
            (b("c"), TableValue::Put(b("3"))),
        ];
        let t = SsTable::build(&device, 1, &entries).unwrap();
        let (got, _) = t.get(&device, b"b").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn read_all_roundtrip() {
        let device = FlashDevice::new(DeviceConfig::small_test());
        let entries = sample_entries(100);
        let t = SsTable::build(&device, 3, &entries).unwrap();
        assert_eq!(t.read_all(&device).unwrap(), entries);
    }

    #[test]
    fn covers_and_overlaps() {
        let device = FlashDevice::new(DeviceConfig::small_test());
        let entries = vec![
            (b("f"), TableValue::Put(b("1"))),
            (b("m"), TableValue::Put(b("2"))),
        ];
        let t = SsTable::build(&device, 1, &entries).unwrap();
        assert!(t.covers(b"f") && t.covers(b"m") && t.covers(b"j"));
        assert!(!t.covers(b"e") && !t.covers(b"n"));
        assert!(t.overlaps(b"a", b"g"));
        assert!(t.overlaps(b"l", b"z"));
        assert!(!t.overlaps(b"a", b"e"));
        assert!(!t.overlaps(b"n", b"z"));
    }
}
