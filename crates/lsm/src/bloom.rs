//! A standard Bloom filter with double hashing.

/// Bloom filter sized at construction for an expected key count and
/// bits-per-key budget (RocksDB's default is 10 bits/key ≈ 1 % FPR).
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    nbits: usize,
    k: u32,
}

fn hash2(key: &[u8]) -> (u64, u64) {
    // Two independent FNV-1a variants; double hashing g_i = h1 + i*h2.
    let (mut h1, mut h2) = (0xCBF2_9CE4_8422_2325u64, 0x9E37_79B9_7F4A_7C15u64);
    for &b in key {
        h1 = (h1 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        h2 = (h2 ^ b as u64).wrapping_mul(0x0000_0100_0000_0193);
    }
    (h1, h2 | 1)
}

impl BloomFilter {
    /// A filter for about `expected` keys at `bits_per_key` bits each.
    pub fn new(expected: usize, bits_per_key: usize) -> Self {
        let nbits = (expected.max(1) * bits_per_key).max(64);
        let k = ((bits_per_key as f64) * 0.69).round().clamp(1.0, 30.0) as u32;
        BloomFilter {
            bits: vec![0u64; nbits.div_ceil(64)],
            nbits,
            k,
        }
    }

    /// Add a key.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = hash2(key);
        for i in 0..self.k {
            let bit = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.nbits as u64) as usize;
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
    }

    /// Whether the key *may* be present (false = definitely absent).
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = hash2(key);
        (0..self.k).all(|i| {
            let bit = (h1.wrapping_add(h2.wrapping_mul(i as u64)) % self.nbits as u64) as usize;
            self.bits[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the filter in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            f.insert(format!("key{i}").as_bytes());
        }
        for i in 0..1000u32 {
            assert!(f.may_contain(format!("key{i}").as_bytes()), "fn on {i}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut f = BloomFilter::new(10_000, 10);
        for i in 0..10_000u32 {
            f.insert(format!("present{i}").as_bytes());
        }
        let fps = (0..10_000u32)
            .filter(|i| f.may_contain(format!("absent{i}").as_bytes()))
            .count();
        let rate = fps as f64 / 10_000.0;
        assert!(rate < 0.03, "FPR {rate} too high for 10 bits/key");
    }

    #[test]
    fn empty_filter_rejects() {
        let f = BloomFilter::new(100, 10);
        assert!(!f.may_contain(b"anything"));
    }

    #[test]
    fn tiny_expected_count_works() {
        let mut f = BloomFilter::new(0, 10);
        f.insert(b"x");
        assert!(f.may_contain(b"x"));
    }
}
