//! SPDK-style asynchronous I/O engine: submission/completion queue pairs.
//!
//! The paper's cost argument (§7.1) is that a data caching system only
//! reaches "as fast as the hardware allows" when secondary-storage accesses
//! are *submitted* and *polled* rather than blocked on: the thread keeps
//! doing useful work while the device services the I/O, and a batch of
//! submissions shares one doorbell, amortizing the per-I/O submit CPU that
//! dominates R on the OS path. [`IoQueuePair`] is that model over the
//! simulated device:
//!
//! * [`IoQueuePair::submit`] / [`IoQueuePair::submit_batch`] latch the read
//!   at submit time (simulated DMA — a concurrent GC relocation or trim
//!   cannot corrupt an in-flight read), occupy a device queue slot, and
//!   return an [`IoTicket`]. A batch charges the submit-path CPU **once**.
//! * In-flight commands are bounded by [`crate::DeviceConfig::queue_depth`];
//!   a full queue refuses with [`SubmitError::QueueFull`] and the caller
//!   degrades to the blocking path.
//! * [`IoQueuePair::poll_completions`] reaps whatever is wall-clock ready,
//!   charging completion CPU and advancing the virtual clock per I/O —
//!   exactly the costs the blocking [`crate::FlashDevice::read`] charges,
//!   just off the caller's critical path.
//!
//! The queue pair is thread-safe (shared `&self`), but the intended shape
//! is per-shard/per-store single ownership, as in SPDK. The internal lock
//! routes through `dcs-syncshim`, so the `check` feature lets the
//! deterministic scheduler explore concurrent submit vs. poll.

use crate::device::{DeviceError, FlashAddress, FlashDevice, PendingRead};
use crate::sync::pl::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// One read command for [`IoQueuePair::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Where to read.
    pub addr: FlashAddress,
    /// How many bytes.
    pub len: usize,
    /// Caller cookie, echoed in the completion (e.g. a fetch-state id).
    pub tag: u64,
}

/// Handle for one submitted command, unique within its queue pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoTicket(pub u64);

/// One reaped completion.
#[derive(Debug)]
pub struct IoCompletion {
    /// The ticket [`IoQueuePair::submit`] returned.
    pub ticket: IoTicket,
    /// The request's cookie.
    pub tag: u64,
    /// The read's outcome (latched at submit; errors mirror the blocking
    /// path's).
    pub result: Result<Vec<u8>, DeviceError>,
}

/// Submission refusals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The submission queue is at the device queue depth; poll first (or
    /// fall back to a blocking read).
    QueueFull {
        /// The configured bound that was hit.
        queue_depth: usize,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { queue_depth } => {
                write!(f, "submission queue full (queue depth {queue_depth})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

struct QpInner {
    /// In-flight commands in submission order. The simulated device is a
    /// single-server queue, so completions are reaped FIFO.
    pending: VecDeque<(IoTicket, u64, PendingRead)>,
    next_ticket: u64,
}

/// A submission/completion queue pair bound to one device.
pub struct IoQueuePair {
    device: Arc<FlashDevice>,
    inner: Mutex<QpInner>,
}

impl IoQueuePair {
    /// A fresh queue pair on `device` (any number may coexist; each is
    /// independently bounded by the device queue depth).
    pub fn new(device: Arc<FlashDevice>) -> Self {
        IoQueuePair {
            device,
            inner: Mutex::new(QpInner {
                pending: VecDeque::new(),
                next_ticket: 1,
            }),
        }
    }

    /// The device this queue pair talks to.
    pub fn device(&self) -> &Arc<FlashDevice> {
        &self.device
    }

    /// Commands submitted but not yet reaped.
    pub fn inflight(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Submit one read. Charges one submit-path CPU cost.
    pub fn submit(&self, req: IoRequest) -> Result<IoTicket, SubmitError> {
        self.submit_inner(&[req], true).map(|mut v| v.remove(0))
    }

    /// Submit a batch of reads, charging the submit-path CPU **once** for
    /// the whole batch — the amortization behind the paper's R reduction.
    /// All-or-nothing: if the batch does not fit under the queue depth,
    /// nothing is submitted.
    pub fn submit_batch(&self, reqs: &[IoRequest]) -> Result<Vec<IoTicket>, SubmitError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        self.submit_inner(reqs, false)
    }

    fn submit_inner(
        &self,
        reqs: &[IoRequest],
        per_request_submit_cost: bool,
    ) -> Result<Vec<IoTicket>, SubmitError> {
        let _span =
            crate::stats::service_span("flashsim.qp.submit", dcs_telemetry::CostClass::SsRead);
        let queue_depth = self.device.config().queue_depth.max(1);
        let mut inner = self.inner.lock();
        if inner.pending.len() + reqs.len() > queue_depth {
            return Err(SubmitError::QueueFull { queue_depth });
        }
        if !per_request_submit_cost {
            // One doorbell for the whole batch.
            self.device.charge_submit();
        }
        let mut tickets = Vec::with_capacity(reqs.len());
        for req in reqs {
            let pending = self
                .device
                .submit_read(req.addr, req.len, per_request_submit_cost);
            let ticket = IoTicket(inner.next_ticket);
            inner.next_ticket += 1;
            inner.pending.push_back((ticket, req.tag, pending));
            tickets.push(ticket);
        }
        Ok(tickets)
    }

    /// Reap every wall-clock-ready completion into `out`, returning how
    /// many were reaped. Non-blocking: with wall latency configured, an
    /// immature completion stays queued (FIFO, so nothing behind it is
    /// reaped early either — the simulated device services in order).
    pub fn poll_completions(&self, out: &mut Vec<IoCompletion>) -> usize {
        let mut reaped = Vec::new();
        {
            let mut inner = self.inner.lock();
            while inner
                .pending
                .front()
                .map(|(_, _, p)| p.wall_ready())
                .unwrap_or(false)
            {
                reaped.push(inner.pending.pop_front().expect("front exists"));
            }
        }
        // Completion costs are charged outside the queue lock: pollers and
        // submitters should contend on the queue, not on CPU emulation.
        let n = reaped.len();
        let _span = if n > 0 {
            Some(crate::stats::service_span(
                "flashsim.qp.poll",
                dcs_telemetry::CostClass::SsRead,
            ))
        } else {
            None
        };
        for (ticket, tag, pending) in reaped {
            out.push(IoCompletion {
                ticket,
                tag,
                result: self.device.complete_read(pending),
            });
        }
        n
    }

    /// Block (sleeping out wall latency) until every in-flight command has
    /// completed, reaping into `out`. For shutdown paths and bulk
    /// prefetchers that want the whole batch.
    pub fn drain(&self, out: &mut Vec<IoCompletion>) {
        loop {
            let head = { self.inner.lock().pending.pop_front() };
            match head {
                None => return,
                Some((ticket, tag, pending)) => {
                    pending.wall_wait();
                    out.push(IoCompletion {
                        ticket,
                        tag,
                        result: self.device.complete_read(pending),
                    });
                }
            }
        }
    }
}

impl std::fmt::Debug for IoQueuePair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoQueuePair")
            .field("inflight", &self.inflight())
            .field("queue_depth", &self.device.config().queue_depth)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::path::IoPathKind;

    fn device() -> Arc<FlashDevice> {
        Arc::new(FlashDevice::new(DeviceConfig::small_test()))
    }

    #[test]
    fn submit_poll_roundtrip() {
        let d = device();
        let a = d.append(b"async-bytes").unwrap();
        let qp = IoQueuePair::new(d.clone());
        let t = qp
            .submit(IoRequest {
                addr: a,
                len: 11,
                tag: 7,
            })
            .unwrap();
        assert_eq!(qp.inflight(), 1);
        let mut out = Vec::new();
        assert_eq!(qp.poll_completions(&mut out), 1);
        assert_eq!(out[0].ticket, t);
        assert_eq!(out[0].tag, 7);
        assert_eq!(out[0].result.as_deref().unwrap(), b"async-bytes");
        assert_eq!(qp.inflight(), 0);
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn queue_depth_bounds_inflight() {
        let d = Arc::new(FlashDevice::new(DeviceConfig {
            queue_depth: 2,
            ..DeviceConfig::small_test()
        }));
        let a = d.append(b"x").unwrap();
        let qp = IoQueuePair::new(d);
        let req = IoRequest {
            addr: a,
            len: 1,
            tag: 0,
        };
        qp.submit(req).unwrap();
        qp.submit(req).unwrap();
        assert_eq!(
            qp.submit(req),
            Err(SubmitError::QueueFull { queue_depth: 2 })
        );
        let mut out = Vec::new();
        qp.poll_completions(&mut out);
        assert_eq!(out.len(), 2);
        qp.submit(req).unwrap();
    }

    #[test]
    fn batch_charges_submit_once() {
        let mk = || {
            Arc::new(FlashDevice::new(DeviceConfig {
                io_path: IoPathKind::UserLevel.model(),
                queue_depth: 16,
                ..DeviceConfig::small_test()
            }))
        };
        // A batch rings the doorbell once; per-request submission rings it
        // per I/O. Observable via the device's submit-charge counter.
        let d_batch = mk();
        let a = d_batch.append(b"abcdefgh").unwrap();
        let reqs: Vec<IoRequest> = (0..8)
            .map(|i| IoRequest {
                addr: a,
                len: 8,
                tag: i,
            })
            .collect();
        let qp = IoQueuePair::new(d_batch.clone());
        let before = d_batch.stats().submit_charges;
        qp.submit_batch(&reqs).unwrap();
        let batched_charges = d_batch.stats().submit_charges - before;
        assert_eq!(batched_charges, 1);

        let d_each = mk();
        let a2 = d_each.append(b"abcdefgh").unwrap();
        let qp2 = IoQueuePair::new(d_each.clone());
        let before = d_each.stats().submit_charges;
        for i in 0..8 {
            qp2.submit(IoRequest {
                addr: a2,
                len: 8,
                tag: i,
            })
            .unwrap();
        }
        let each_charges = d_each.stats().submit_charges - before;
        assert_eq!(each_charges, 8);
        let mut out = Vec::new();
        qp.drain(&mut out);
        qp2.drain(&mut out);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn errors_complete_without_io_accounting() {
        let d = device();
        let a = d.append(b"data").unwrap();
        let qp = IoQueuePair::new(d.clone());
        qp.submit(IoRequest {
            addr: FlashAddress {
                segment: 63,
                offset: 0,
            },
            len: 4,
            tag: 1,
        })
        .unwrap();
        qp.submit(IoRequest {
            addr: a,
            len: 4,
            tag: 2,
        })
        .unwrap();
        let mut out = Vec::new();
        qp.poll_completions(&mut out);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0].result, Err(DeviceError::BadAddress(_))));
        assert_eq!(out[1].result.as_deref().unwrap(), b"data");
        // Only the successful read is accounted, like the blocking path.
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn dma_latched_at_submit_survives_trim() {
        let d = Arc::new(FlashDevice::new(DeviceConfig {
            segment_count: 4,
            ..DeviceConfig::small_test()
        }));
        let a = d.append(b"latched").unwrap();
        d.seal_open_segment();
        let qp = IoQueuePair::new(d.clone());
        qp.submit(IoRequest {
            addr: a,
            len: 7,
            tag: 0,
        })
        .unwrap();
        // GC trims the segment while the read is in flight.
        d.trim_segment(a.segment);
        let mut out = Vec::new();
        qp.poll_completions(&mut out);
        assert_eq!(out[0].result.as_deref().unwrap(), b"latched");
    }

    #[test]
    fn io_depth_histogram_sees_concurrency() {
        let d = device();
        let a = d.append(b"dddddddd").unwrap();
        let base_max = d.stats().io_depth.max;
        assert!(base_max <= 1, "appends alone are depth 1");
        let qp = IoQueuePair::new(d.clone());
        for i in 0..4 {
            qp.submit(IoRequest {
                addr: a,
                len: 8,
                tag: i,
            })
            .unwrap();
        }
        let depth = d.stats().io_depth;
        assert_eq!(depth.max, 4);
        assert!(depth.mean() > 1.0);
        let mut out = Vec::new();
        qp.drain(&mut out);
        assert_eq!(d.stats().reads, 4);
    }

    #[test]
    fn wall_latency_delays_visibility_not_correctness() {
        let d = Arc::new(FlashDevice::new(DeviceConfig {
            wall_read_latency: 20_000_000, // 20 ms
            ..DeviceConfig::small_test()
        }));
        let a = d.append(b"slow").unwrap();
        let qp = IoQueuePair::new(d.clone());
        qp.submit(IoRequest {
            addr: a,
            len: 4,
            tag: 0,
        })
        .unwrap();
        let mut out = Vec::new();
        assert_eq!(qp.poll_completions(&mut out), 0, "not wall-ready yet");
        qp.drain(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].result.as_deref().unwrap(), b"slow");
    }
}
