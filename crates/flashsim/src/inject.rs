//! Deterministic failure injection.

use std::sync::atomic::{AtomicU64, Ordering};

/// Probability is stored in fixed point (per 2^32) so the injector needs no
/// floating-point atomics.
const PROB_SCALE: f64 = (1u64 << 32) as f64;

/// Injects simulated media failures into a [`crate::FlashDevice`].
///
/// Failures are driven by a deterministic xorshift RNG so tests reproduce
/// exactly: the same seed and call sequence yields the same failures.
#[derive(Debug)]
pub struct FailureInjector {
    /// Read-failure probability in per-2^32 fixed point. 0 = disabled.
    read_fail: AtomicU64,
    rng_state: AtomicU64,
}

impl FailureInjector {
    /// An injector that never fails anything.
    pub fn disabled() -> Self {
        FailureInjector {
            read_fail: AtomicU64::new(0),
            rng_state: AtomicU64::new(0x853C_49E6_748F_EA9B),
        }
    }

    /// Fail reads with probability `p` (0.0–1.0), seeded deterministically.
    pub fn failing_reads(p: f64, seed: u64) -> Self {
        FailureInjector {
            read_fail: AtomicU64::new((p.clamp(0.0, 1.0) * PROB_SCALE) as u64),
            rng_state: AtomicU64::new(seed | 1),
        }
    }

    /// Adopt another injector's settings in place (used by
    /// `FlashDevice::set_injector`, which cannot replace the field behind a
    /// shared reference).
    pub(crate) fn replace_with(&self, other: FailureInjector) {
        self.read_fail
            .store(other.read_fail.load(Ordering::SeqCst), Ordering::SeqCst);
        self.rng_state
            .store(other.rng_state.load(Ordering::SeqCst), Ordering::SeqCst);
    }

    fn next_u32(&self) -> u32 {
        let mut x = self.rng_state.load(Ordering::Relaxed);
        loop {
            let mut y = x;
            y ^= y << 13;
            y ^= y >> 7;
            y ^= y << 17;
            match self
                .rng_state
                .compare_exchange_weak(x, y, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return (y >> 16) as u32,
                Err(actual) => x = actual,
            }
        }
    }

    /// Roll the dice for a read failure.
    pub fn should_fail_read(&self) -> bool {
        let p = self.read_fail.load(Ordering::Relaxed);
        p != 0 && (self.next_u32() as u64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_never_fails() {
        let inj = FailureInjector::disabled();
        assert!(!(0..10_000).any(|_| inj.should_fail_read()));
    }

    #[test]
    fn certain_always_fails() {
        let inj = FailureInjector::failing_reads(1.0, 7);
        assert!((0..1_000).all(|_| inj.should_fail_read()));
    }

    #[test]
    fn partial_probability_is_partial() {
        let inj = FailureInjector::failing_reads(0.3, 12345);
        let fails = (0..100_000).filter(|_| inj.should_fail_read()).count();
        let rate = fails as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = FailureInjector::failing_reads(0.5, 99);
        let b = FailureInjector::failing_reads(0.5, 99);
        let seq_a: Vec<bool> = (0..100).map(|_| a.should_fail_read()).collect();
        let seq_b: Vec<bool> = (0..100).map(|_| b.should_fail_read()).collect();
        assert_eq!(seq_a, seq_b);
    }
}
