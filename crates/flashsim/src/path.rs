//! I/O execution-path cost model.
//!
//! The paper's central performance parameter is `R`, the ratio of CPU time a
//! core spends completing a secondary-storage (SS) operation to the CPU time
//! of a main-memory (MM) operation. §7.1.1 shows `R` is an engineering knob:
//! moving the I/O path from the OS kernel to user level (SPDK) cut the path
//! by about a third and dropped `R` from ≈9 to ≈5.8.
//!
//! This module makes that path length *real CPU work* so that benchmarks on
//! this substrate measure a genuine `R` rather than assuming one. The work
//! loop is a data-dependent xorshift mix that the optimizer cannot elide or
//! vectorize away; one "work unit" is a handful of ALU instructions.

use std::hint::black_box;
use std::time::Instant;

/// Execute `units` of calibrated, optimizer-proof CPU work.
///
/// Returns a value derived from the computation so callers can `black_box`
/// it; the function already does so internally.
#[inline(never)]
pub fn do_cpu_work(units: u64) -> u64 {
    let mut x: u64 = 0x9E37_79B9_7F4A_7C15 ^ black_box(units);
    for i in 0..units {
        // xorshift* step: serial dependency chain, ~4-5 ALU ops per unit.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        x = x.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(i);
    }
    black_box(x)
}

/// Measure how many work units this machine executes per second.
///
/// Used by calibration harnesses to translate the path models below into
/// expected wall-clock costs.
pub fn calibrate_work_rate() -> f64 {
    const UNITS: u64 = 2_000_000;
    // Warm up, then measure.
    black_box(do_cpu_work(UNITS / 10));
    let start = Instant::now();
    black_box(do_cpu_work(UNITS));
    let elapsed = start.elapsed().as_secs_f64();
    UNITS as f64 / elapsed
}

/// The software stack an I/O traverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPathKind {
    /// Conventional path: syscall, kernel block layer, interrupt-driven
    /// completion, thread context switch. The paper's "before" case (R ≈ 9).
    OsKernel,
    /// User-level path à la Intel SPDK: polled completion in user mode, no
    /// protection-boundary crossing. The paper reports ≈1/3 shorter,
    /// giving R ≈ 5.8 (§7.1.1).
    UserLevel,
    /// Hypothetical zero-cost path: only the unavoidable cache-miss work of
    /// touching the transferred buffer. Useful as an ablation lower bound.
    Free,
}

impl IoPathKind {
    /// The default work-unit budget for this path kind.
    ///
    /// Values are calibration targets, not constants of nature: together
    /// with the unavoidable software cost of a page fetch (read, decode,
    /// install — about twice an MM operation on the reference machine),
    /// they put the measured `R` near the paper's: ≈9 for
    /// [`IoPathKind::OsKernel`] and ≈5.8 for [`IoPathKind::UserLevel`]
    /// (§7.1.1). `dcs-bench`'s `calibrate` binary measures the actual
    /// per-unit cost of the current machine.
    pub fn model(self) -> IoPathModel {
        match self {
            // Submission (syscall entry, request marshalling) plus
            // completion (interrupt, context switch back); ~3:2 split.
            IoPathKind::OsKernel => IoPathModel {
                kind: self,
                submit_units: 2_600,
                complete_units: 1_750,
            },
            // User-level (SPDK-style) polled completion: no protection
            // boundary, no thread switch.
            IoPathKind::UserLevel => IoPathModel {
                kind: self,
                submit_units: 1_300,
                complete_units: 875,
            },
            IoPathKind::Free => IoPathModel {
                kind: self,
                submit_units: 0,
                complete_units: 0,
            },
        }
    }
}

/// A concrete I/O execution-path cost: CPU work burned at submission and at
/// completion of every device I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPathModel {
    /// Which stack this models (for reporting).
    pub kind: IoPathKind,
    /// Work units executed when the I/O is issued.
    pub submit_units: u64,
    /// Work units executed when the I/O completes.
    pub complete_units: u64,
}

impl IoPathModel {
    /// Total per-I/O CPU work units.
    pub fn total_units(&self) -> u64 {
        self.submit_units + self.complete_units
    }

    /// Run the submission-side work.
    #[inline]
    pub fn run_submit(&self) {
        if self.submit_units > 0 {
            black_box(do_cpu_work(self.submit_units));
        }
    }

    /// Run the completion-side work.
    #[inline]
    pub fn run_complete(&self) {
        if self.complete_units > 0 {
            black_box(do_cpu_work(self.complete_units));
        }
    }

    /// A model scaled by `factor` (e.g. 0.5 = half the path length). Useful
    /// for the Figure 7 sweep over I/O execution cost.
    pub fn scaled(&self, factor: f64) -> IoPathModel {
        IoPathModel {
            kind: self.kind,
            submit_units: (self.submit_units as f64 * factor).round() as u64,
            complete_units: (self.complete_units as f64 * factor).round() as u64,
        }
    }
}

impl Default for IoPathModel {
    fn default() -> Self {
        IoPathKind::UserLevel.model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_is_deterministic() {
        assert_eq!(do_cpu_work(1000), do_cpu_work(1000));
        assert_ne!(do_cpu_work(1000), do_cpu_work(1001));
    }

    #[test]
    fn user_path_is_substantially_shorter() {
        // §7.1.1: SPDK removed about a third of the *total* SS execution
        // path. The path-model units alone are a larger fraction because
        // part of the SS path (fetch, decode, install) is fixed software
        // cost; the end-to-end ratio is validated by the fig7 harness.
        let os = IoPathKind::OsKernel.model();
        let user = IoPathKind::UserLevel.model();
        let ratio = user.total_units() as f64 / os.total_units() as f64;
        assert!((0.4..0.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn free_path_is_zero() {
        assert_eq!(IoPathKind::Free.model().total_units(), 0);
    }

    #[test]
    fn scaled_rounds() {
        let m = IoPathKind::OsKernel.model().scaled(0.5);
        assert_eq!(m.submit_units, 1_300);
        assert_eq!(m.complete_units, 875);
    }

    #[test]
    fn calibration_is_positive() {
        let rate = calibrate_work_rate();
        assert!(rate > 1e5, "work rate {rate} implausibly low");
    }

    #[test]
    fn longer_path_takes_longer() {
        // Sanity-check that work actually scales with units, coarsely.
        let t = |units| {
            let start = std::time::Instant::now();
            for _ in 0..50 {
                black_box(do_cpu_work(units));
            }
            start.elapsed()
        };
        let short = t(1_000);
        let long = t(50_000);
        assert!(
            long > short,
            "50x work not slower: short={short:?} long={long:?}"
        );
    }
}
