//! Device configuration.

use crate::path::IoPathModel;
use crate::Nanos;
use serde::{Deserialize, Serialize};

/// Configuration of a simulated flash device.
///
/// Defaults model the paper's drive: a 0.5 TB Samsung flash SSD rated at
/// 2·10⁵ IOPS with ~80 µs read latency (§4.1). Capacity is expressed in
/// erase segments because flash is trimmed in segment units; the
/// log-structured store above allocates and garbage-collects whole segments.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Size of one erase segment in bytes.
    pub segment_bytes: usize,
    /// Number of segments the device can hold (capacity = product).
    pub segment_count: usize,
    /// Device-side latency of a read I/O (virtual time).
    pub read_latency: Nanos,
    /// Device-side latency of a write I/O (virtual time).
    pub write_latency: Nanos,
    /// Maximum I/O operations per second the device can service. Models the
    /// single-server queue the paper's IOPS term comes from.
    pub max_iops: f64,
    /// CPU cost of the host I/O execution path, charged per I/O.
    #[serde(skip, default)]
    pub io_path: IoPathModel,
    /// Whether blocking reads advance the shared virtual clock to the I/O
    /// completion time. Disable for pure CPU-cost measurements where the
    /// clock is driven externally.
    pub advance_clock_on_io: bool,
    /// Device submission-queue depth: the most read I/Os one
    /// [`crate::IoQueuePair`] may have in flight. Submissions past this
    /// bound are refused with [`crate::SubmitError::QueueFull`]; callers
    /// fall back to blocking (the bounded-SQ degradation mode).
    pub queue_depth: usize,
    /// *Wall-clock* latency of a read I/O, in nanoseconds (0 = none).
    ///
    /// The virtual clock models cost accounting; this knob additionally
    /// delays completion visibility in real time, so experiments about
    /// *overlap* (does a slow miss block unrelated work?) observe genuine
    /// concurrency. Blocking reads sleep it; async completions only become
    /// pollable once it has elapsed.
    pub wall_read_latency: Nanos,
}

impl DeviceConfig {
    /// The paper's §4.1 drive: 0.5 TB, 200 K IOPS. Segment size 4 MiB.
    pub fn paper_ssd() -> Self {
        DeviceConfig {
            segment_bytes: 4 << 20,
            segment_count: 128 * 1024, // 512 GiB
            read_latency: 80_000,      // 80 µs
            write_latency: 100_000,
            max_iops: 2.0e5,
            io_path: IoPathModel::default(),
            advance_clock_on_io: true,
            queue_depth: 32,
            wall_read_latency: 0,
        }
    }

    /// A small device for unit tests: 64 segments of 64 KiB.
    pub fn small_test() -> Self {
        DeviceConfig {
            segment_bytes: 64 << 10,
            segment_count: 64,
            read_latency: 1_000,
            write_latency: 1_000,
            max_iops: 1.0e6,
            io_path: crate::path::IoPathKind::Free.model(),
            advance_clock_on_io: true,
            queue_depth: 8,
            wall_read_latency: 0,
        }
    }

    /// Total device capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.segment_bytes as u64 * self.segment_count as u64
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::paper_ssd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ssd_capacity_is_half_tb() {
        let c = DeviceConfig::paper_ssd();
        assert_eq!(c.capacity_bytes(), 512 << 30);
    }

    #[test]
    fn small_test_is_small() {
        let c = DeviceConfig::small_test();
        assert_eq!(c.capacity_bytes(), 4 << 20);
    }
}
