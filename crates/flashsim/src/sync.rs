//! Synchronization facade for the I/O engine.
//!
//! Re-exports [`dcs_syncshim`]'s parking_lot-shaped primitives so the
//! queue-pair state is visible to the deterministic interleaving checker
//! when the `check` feature is enabled.

pub use dcs_syncshim::pl;
