//! Device accounting.
//!
//! The achieved-io-depth histogram is the shared
//! [`dcs_telemetry::Histogram`] — this crate used to carry its own
//! linear-bucket copy (`IoDepthStats`), one of the two duplicated
//! histogram implementations `dcs-telemetry` replaced. Snapshots are
//! [`HistogramSnapshot`]: power-of-two buckets, exact merge across
//! devices, interpolated percentiles.

use crate::Nanos;
use dcs_telemetry::{CostClass, Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters.
pub(crate) struct StatsInner {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    trims: AtomicU64,
    syncs: AtomicU64,
    injected_failures: AtomicU64,
    submit_charges: AtomicU64,
    depth: Histogram,
}

impl Default for StatsInner {
    fn default() -> Self {
        StatsInner {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            trims: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            injected_failures: AtomicU64::new(0),
            submit_charges: AtomicU64::new(0),
            depth: Histogram::new(),
        }
    }
}

impl StatsInner {
    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        // The device is the single point every secondary-storage read
        // funnels through; attribute the paper's SS execution term here
        // so no layer above can double-count it.
        // SPAN: the device's completion path holds the open
        // flashsim.read service span for this request.
        dcs_telemetry::ledger().ss_read();
    }
    pub(crate) fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        // SPAN: the device's completion path holds the open
        // flashsim.write service span for this request.
        dcs_telemetry::ledger().ss_write();
    }
    pub(crate) fn record_trim(&self) {
        self.trims.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_sync(&self) {
        self.syncs.fetch_add(1, Ordering::Relaxed);
    }
    pub(crate) fn record_injected_failure(&self) {
        self.injected_failures.fetch_add(1, Ordering::Relaxed);
    }
    /// Record one execution of the submit-path CPU cost. A batch submission
    /// records once for many I/Os — the amortization the counter exposes.
    pub(crate) fn record_submit_charge(&self) {
        self.submit_charges.fetch_add(1, Ordering::Relaxed);
    }
    /// Record the achieved io depth observed while scheduling one I/O:
    /// how many I/Os (including this one) the device held concurrently.
    pub(crate) fn record_depth(&self, depth: u64) {
        self.depth.record(depth.max(1));
    }

    pub(crate) fn snapshot(&self, now: Nanos, busy_until: Nanos) -> DeviceStats {
        DeviceStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            trims: self.trims.load(Ordering::Relaxed),
            syncs: self.syncs.load(Ordering::Relaxed),
            injected_failures: self.injected_failures.load(Ordering::Relaxed),
            submit_charges: self.submit_charges.load(Ordering::Relaxed),
            virtual_now: now,
            busy_until,
            io_depth: self.depth.snapshot(),
        }
    }
}

/// A traced span for one device-service action. Shows up nested under
/// whatever request/maintenance span is open on the calling thread.
pub(crate) fn service_span(name: &'static str, class: CostClass) -> dcs_telemetry::Span {
    dcs_telemetry::span(name, class)
}

/// A point-in-time snapshot of device activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DeviceStats {
    /// Read I/Os completed.
    pub reads: u64,
    /// Write I/Os completed.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Segments trimmed (erased).
    pub trims: u64,
    /// Sync barriers issued.
    pub syncs: u64,
    /// Reads failed by the failure injector.
    pub injected_failures: u64,
    /// Submit-path CPU charges executed. Equal to `total_ios` for blocking
    /// callers; smaller when batched submission amortizes the doorbell.
    pub submit_charges: u64,
    /// Virtual clock at snapshot time.
    pub virtual_now: Nanos,
    /// Virtual time until which the device queue is occupied.
    pub busy_until: Nanos,
    /// Achieved-io-depth histogram (cumulative since device creation):
    /// one sample per scheduled I/O, recording how many I/Os the device
    /// held concurrently. A blocking caller produces a flat depth-1
    /// line; an async submitter driving the queue pair shows the real
    /// concurrency the paper's SPDK-style engine is meant to create.
    pub io_depth: HistogramSnapshot,
}

impl DeviceStats {
    /// Total I/O count.
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Achieved IOPS over the virtual-time window so far.
    pub fn achieved_iops(&self) -> f64 {
        if self.virtual_now == 0 {
            return 0.0;
        }
        self.total_ios() as f64 / (self.virtual_now as f64 / 1e9)
    }

    /// Difference between two snapshots (self - earlier).
    pub fn delta(&self, earlier: &DeviceStats) -> DeviceStats {
        DeviceStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            bytes_read: self.bytes_read - earlier.bytes_read,
            bytes_written: self.bytes_written - earlier.bytes_written,
            trims: self.trims - earlier.trims,
            syncs: self.syncs - earlier.syncs,
            injected_failures: self.injected_failures - earlier.injected_failures,
            submit_charges: self.submit_charges - earlier.submit_charges,
            virtual_now: self.virtual_now,
            busy_until: self.busy_until,
            // Like virtual_now/busy_until, the histogram is carried
            // cumulatively rather than differenced.
            io_depth: self.io_depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let inner = StatsInner::default();
        inner.record_read(100);
        inner.record_write(200);
        let s1 = inner.snapshot(1_000_000_000, 0);
        inner.record_read(50);
        let s2 = inner.snapshot(2_000_000_000, 0);
        let d = s2.delta(&s1);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 0);
        assert_eq!(d.bytes_read, 50);
    }

    #[test]
    fn achieved_iops() {
        let inner = StatsInner::default();
        for _ in 0..100 {
            inner.record_read(1);
        }
        let s = inner.snapshot(crate::secs(2.0), 0);
        assert!((s.achieved_iops() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_zero_iops() {
        let s = DeviceStats::default();
        assert_eq!(s.achieved_iops(), 0.0);
    }

    #[test]
    fn depth_histogram_is_shared_type() {
        let inner = StatsInner::default();
        inner.record_depth(1);
        inner.record_depth(4);
        inner.record_depth(4);
        let s = inner.snapshot(0, 0);
        assert_eq!(s.io_depth.count, 3);
        assert_eq!(s.io_depth.max, 4);
        assert!((s.io_depth.mean() - 3.0).abs() < 1e-9);
        // Merging two devices' histograms is exact.
        let mut merged = s.io_depth;
        merged.merge(&s.io_depth);
        assert_eq!(merged.count, 6);
    }
}
