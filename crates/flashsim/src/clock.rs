//! A shared virtual clock.

use crate::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically non-decreasing virtual clock, shared by a device and its
/// clients.
///
/// The clock is advanced *explicitly* by workload drivers: simulated
/// experiments step it by the inter-arrival time of operations (e.g. to model
/// a page accessed every `Ti` seconds) and the device moves it forward when a
/// blocking I/O completes. Using virtual time keeps the paper's breakeven
/// analysis — intervals of 45 seconds and more — runnable in milliseconds of
/// wall-clock time, deterministically.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A new clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now(&self) -> Nanos {
        self.now.load(Ordering::SeqCst)
    }

    /// Advance the clock by `delta` nanoseconds, returning the new time.
    pub fn advance(&self, delta: Nanos) -> Nanos {
        self.now.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// Move the clock forward to at least `target`. Never moves backward.
    /// Returns the (possibly larger) resulting time.
    pub fn advance_to(&self, target: Nanos) -> Nanos {
        let mut cur = self.now.load(Ordering::SeqCst);
        while cur < target {
            match self
                .now
                .compare_exchange_weak(cur, target, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return target,
                Err(actual) => cur = actual,
            }
        }
        cur
    }

    /// Current virtual time in (fractional) seconds.
    pub fn now_secs(&self) -> f64 {
        self.now() as f64 / 1e9
    }

    /// Install this clock as the process-wide `dcs-telemetry` span time
    /// source, so traces are stamped in virtual nanoseconds. Meant for
    /// single-device simulations; multi-device runs (one clock per
    /// shard) should stay on telemetry's monotonic real-clock fallback.
    pub fn install_telemetry_clock(&self) {
        let now = Arc::clone(&self.now);
        dcs_telemetry::set_time_source(move || now.load(Ordering::SeqCst));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(VirtualClock::new().now(), 0);
    }

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        assert_eq!(c.advance(5), 5);
        assert_eq!(c.advance(10), 15);
        assert_eq!(c.now(), 15);
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = VirtualClock::new();
        c.advance_to(100);
        assert_eq!(c.now(), 100);
        // Backward target is a no-op.
        assert_eq!(c.advance_to(50), 100);
        assert_eq!(c.now(), 100);
    }

    #[test]
    fn clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now(), 42);
    }

    #[test]
    fn concurrent_advance_to_is_max() {
        let c = VirtualClock::new();
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for j in 0..1000u64 {
                    c.advance_to(i * 1000 + j);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now(), 7 * 1000 + 999);
    }

    #[test]
    fn now_secs_scales() {
        let c = VirtualClock::new();
        c.advance(1_500_000_000);
        assert!((c.now_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn installs_as_telemetry_time_source() {
        let c = VirtualClock::new();
        c.advance(123_456);
        c.install_telemetry_clock();
        assert_eq!(dcs_telemetry::now_nanos(), 123_456);
        c.advance(1_000);
        assert_eq!(dcs_telemetry::now_nanos(), 124_456);
        dcs_telemetry::clear_time_source();
    }
}
