//! A simulated flash SSD for data-caching-system experiments.
//!
//! The paper's analysis ("Cost/Performance in Modern Data Stores", DaMoN'18)
//! was run against a Samsung flash SSD and Intel SPDK user-level I/O. Neither
//! is available here, so this crate provides the closest synthetic
//! equivalent that exercises the same code paths:
//!
//! * **An append-only flash device** ([`FlashDevice`]) with segmented
//!   storage, trim/erase of whole segments (as real flash requires), bounded
//!   capacity, and per-I/O accounting.
//! * **A virtual clock** ([`VirtualClock`]) so IOPS ceilings and access
//!   intervals (the paper's `Ti`) can be modeled deterministically without
//!   real sleeps. The device computes each I/O's *service completion time*
//!   under a single-server queue with rate `max_iops`.
//! * **An I/O execution-path model** ([`IoPathModel`]) that performs real,
//!   calibrated CPU work per I/O. This is what makes the paper's `R` (the
//!   CPU-cost ratio of a secondary-storage operation to a main-memory
//!   operation) *measurable* on this substrate rather than asserted.
//!   [`IoPathKind::OsKernel`] models the conventional syscall path;
//!   [`IoPathKind::UserLevel`] models the SPDK path the paper reports is
//!   about 1/3 shorter (§7.1.1, R dropping from ≈9 to ≈5.8).
//! * **Failure injection** ([`FailureInjector`]) for recovery tests: read
//!   errors and crash-induced torn tails.
//!
//! # Example
//!
//! ```
//! use dcs_flashsim::{DeviceConfig, FlashDevice, IoPathKind};
//!
//! let device = FlashDevice::new(DeviceConfig {
//!     io_path: IoPathKind::UserLevel.model(),
//!     ..DeviceConfig::small_test()
//! });
//! let addr = device.append(b"hello page").unwrap();
//! let back = device.read(addr, 10).unwrap();
//! assert_eq!(&back, b"hello page");
//! assert_eq!(device.stats().reads, 1);
//! ```

mod clock;
mod config;
mod device;
mod engine;
mod inject;
mod path;
mod stats;
mod sync;

pub use clock::VirtualClock;
pub use config::DeviceConfig;
pub use device::{DeviceError, FlashAddress, FlashDevice, SegmentId};
pub use engine::{IoCompletion, IoQueuePair, IoRequest, IoTicket, SubmitError};
pub use inject::FailureInjector;
pub use path::{calibrate_work_rate, do_cpu_work, IoPathKind, IoPathModel};
pub use stats::DeviceStats;
// The io-depth histogram is the workspace-shared implementation; the old
// linear-bucket `IoDepthStats` local copy is gone.
pub use dcs_telemetry::HistogramSnapshot as IoDepthSnapshot;

/// Nanoseconds, the unit of the virtual clock.
pub type Nanos = u64;

/// Convenience: seconds → virtual nanoseconds.
pub fn secs(s: f64) -> Nanos {
    (s * 1e9) as Nanos
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_conversion() {
        assert_eq!(secs(1.0), 1_000_000_000);
        assert_eq!(secs(0.5), 500_000_000);
        assert_eq!(secs(0.0), 0);
    }
}
