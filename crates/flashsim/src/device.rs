//! The simulated append-only flash device.

use crate::clock::VirtualClock;
use crate::config::DeviceConfig;
use crate::inject::FailureInjector;
use crate::stats::{DeviceStats, StatsInner};
use crate::Nanos;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of an erase segment.
pub type SegmentId = u32;

/// A stable address on the device: segment plus byte offset within it.
///
/// Appends never span segments, so `(segment, offset, len)` always names a
/// contiguous byte range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlashAddress {
    /// Erase segment holding the data.
    pub segment: SegmentId,
    /// Byte offset within the segment.
    pub offset: u32,
}

impl FlashAddress {
    /// Pack into a `u64` (for storage in mapping-table words).
    pub fn to_u64(self) -> u64 {
        ((self.segment as u64) << 32) | self.offset as u64
    }

    /// Unpack from [`FlashAddress::to_u64`].
    pub fn from_u64(v: u64) -> Self {
        FlashAddress {
            segment: (v >> 32) as u32,
            offset: v as u32,
        }
    }
}

/// Errors surfaced by the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The device is out of free segments; the caller must garbage-collect.
    Full,
    /// An append larger than one segment was requested.
    OversizedAppend {
        /// Bytes requested.
        requested: usize,
        /// Segment capacity.
        segment_bytes: usize,
    },
    /// A read named a segment that does not exist or was trimmed.
    BadAddress(FlashAddress),
    /// A read extended past the written extent of its segment.
    ShortSegment {
        /// Requested address.
        addr: FlashAddress,
        /// Requested length.
        len: usize,
        /// Written bytes in that segment.
        written: usize,
    },
    /// An injected (simulated) media failure.
    InjectedFailure,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Full => write!(f, "device full: no free segments"),
            DeviceError::OversizedAppend {
                requested,
                segment_bytes,
            } => write!(
                f,
                "append of {requested} bytes exceeds segment size {segment_bytes}"
            ),
            DeviceError::BadAddress(a) => write!(f, "bad address {a:?}"),
            DeviceError::ShortSegment { addr, len, written } => write!(
                f,
                "read of {len} bytes at {addr:?} past written extent {written}"
            ),
            DeviceError::InjectedFailure => write!(f, "injected media failure"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// One erase segment's in-memory image.
struct Segment {
    data: Box<[u8]>,
    /// Bytes appended so far.
    written: usize,
    /// Bytes known durable (≤ written). A crash truncates to this point.
    durable: usize,
}

impl Segment {
    fn new(size: usize) -> Self {
        Segment {
            data: vec![0u8; size].into_boxed_slice(),
            written: 0,
            durable: 0,
        }
    }
}

struct DeviceState {
    segments: Vec<Option<Segment>>,
    free: Vec<SegmentId>,
    open: Option<SegmentId>,
    /// Erase (trim) count per physical segment — flash wear.
    erase_counts: Vec<u32>,
}

/// The simulated flash SSD.
///
/// * **Append-only within segments**: data is written by [`FlashDevice::append`],
///   which returns a stable [`FlashAddress`]; whole segments are reclaimed by
///   [`FlashDevice::trim_segment`] (flash erase).
/// * **Accounting**: every read/write I/O charges the configured
///   [`crate::IoPathModel`]'s CPU work and occupies the device's virtual-time
///   queue slot (rate `max_iops`), so both the CPU term and the IOPS term of
///   the paper's cost equations are exercised.
/// * **Crash simulation**: [`FlashDevice::sync`] marks appended data durable;
///   [`FlashDevice::crash`] discards the non-durable tail, as a power failure
///   would.
pub struct FlashDevice {
    config: DeviceConfig,
    clock: VirtualClock,
    state: Mutex<DeviceState>,
    /// Virtual time at which the device queue frees up.
    busy_until: AtomicU64,
    /// Read I/Os submitted but not yet completed (achieved io depth).
    inflight_reads: AtomicU64,
    stats: StatsInner,
    injector: FailureInjector,
}

/// A read I/O between submission and completion.
///
/// The data (or error) is **latched at submit time** — simulated DMA: the
/// device captured the bytes when the command was issued, so a later GC
/// relocation or trim of the segment cannot corrupt an in-flight read.
/// Virtual-clock advancement, completion-path CPU, and read accounting are
/// deferred to [`FlashDevice::complete_read`].
#[derive(Debug)]
pub(crate) struct PendingRead {
    /// Outcome decided at submit: data copy, or the error the blocking
    /// path would have returned.
    latched: Result<Vec<u8>, DeviceError>,
    /// Virtual completion time (None when the submit failed before
    /// occupying a device queue slot).
    virtual_done: Option<Nanos>,
    /// Wall-clock completion visibility (None when `wall_read_latency` 0).
    wall_deadline: Option<std::time::Instant>,
}

impl PendingRead {
    /// Completion is visible in wall-clock time (virtual time is advanced
    /// by `complete_read`, not waited on).
    pub(crate) fn wall_ready(&self) -> bool {
        self.wall_deadline
            .map(|d| std::time::Instant::now() >= d)
            .unwrap_or(true)
    }

    /// Sleep until the completion is wall-visible (blocking callers only).
    pub(crate) fn wall_wait(&self) {
        if let Some(deadline) = self.wall_deadline {
            let now = std::time::Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
        }
    }
}

impl FlashDevice {
    /// Create a device with its own clock.
    pub fn new(config: DeviceConfig) -> Self {
        Self::with_clock(config, VirtualClock::new())
    }

    /// Create a device sharing an external virtual clock.
    pub fn with_clock(config: DeviceConfig, clock: VirtualClock) -> Self {
        let state = DeviceState {
            segments: (0..config.segment_count).map(|_| None).collect(),
            free: (0..config.segment_count as SegmentId).rev().collect(),
            open: None,
            erase_counts: vec![0; config.segment_count],
        };
        FlashDevice {
            config,
            clock,
            state: Mutex::new(state),
            busy_until: AtomicU64::new(0),
            inflight_reads: AtomicU64::new(0),
            stats: StatsInner::default(),
            injector: FailureInjector::disabled(),
        }
    }

    /// Replace the failure injector (for recovery tests).
    pub fn set_injector(&self, injector: FailureInjector) {
        self.injector.replace_with(injector);
    }

    /// The device's configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The device's clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Occupy one device queue slot and return the I/O's completion time.
    fn schedule_io(&self, latency: Nanos) -> Nanos {
        let service = (1e9 / self.config.max_iops) as u64;
        let now = self.clock.now();
        // busy_until = max(now, busy_until) + service, atomically.
        let mut cur = self.busy_until.load(Ordering::SeqCst);
        loop {
            let start = cur.max(now);
            let next = start + service;
            match self.busy_until.compare_exchange_weak(
                cur,
                next,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return start + latency.max(service),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Append `buf` to the log, returning its address.
    ///
    /// The append charges one write I/O. Appends never span segments: when
    /// the open segment cannot hold `buf`, it is sealed and a fresh segment
    /// opened. Fails with [`DeviceError::Full`] when no free segment remains
    /// (the log-structured store must GC).
    pub fn append(&self, buf: &[u8]) -> Result<FlashAddress, DeviceError> {
        if buf.len() > self.config.segment_bytes {
            return Err(DeviceError::OversizedAppend {
                requested: buf.len(),
                segment_bytes: self.config.segment_bytes,
            });
        }
        let _span =
            crate::stats::service_span("flashsim.append", dcs_telemetry::CostClass::SsWrite);
        self.config.io_path.run_submit();
        self.stats.record_submit_charge();

        let addr = {
            let mut st = self.state.lock();
            let need_new = match st.open {
                Some(id) => {
                    // LINT: allow(effect-panic): state-machine invariant
                    // (`open` always indexes a live segment), not reachable
                    // from peer input.
                    let seg = st.segments[id as usize]
                        .as_ref()
                        .expect("open segment exists");
                    seg.written + buf.len() > self.config.segment_bytes
                }
                None => true,
            };
            if need_new {
                let id = st.free.pop().ok_or(DeviceError::Full)?;
                st.segments[id as usize] = Some(Segment::new(self.config.segment_bytes));
                st.open = Some(id);
            }
            // LINT: allow(effect-panic): `need_new` just set `open`; both
            // expects assert the same segment-table invariant as above.
            let id = st.open.expect("segment just opened");
            let seg = st.segments[id as usize]
                .as_mut()
                .expect("open segment exists"); // LINT: allow(effect-panic): same segment-table invariant.
            let offset = seg.written;
            seg.data[offset..offset + buf.len()].copy_from_slice(buf);
            seg.written += buf.len();
            FlashAddress {
                segment: id,
                offset: offset as u32,
            }
        };

        let done = self.schedule_io(self.config.write_latency);
        self.stats
            .record_depth(self.inflight_reads.load(Ordering::SeqCst) + 1);
        if self.config.advance_clock_on_io {
            self.clock.advance_to(done);
        }
        self.config.io_path.run_complete();
        self.stats.record_write(buf.len() as u64);
        Ok(addr)
    }

    /// Append `buf` with immediate durability (FUA-style): the write goes
    /// to a freshly opened segment whose contents are durable as soon as
    /// the call returns, without affecting the durability of any other
    /// pending write. Used by GC relocation, which must not piggyback a
    /// global sync onto unrelated buffered data.
    pub fn append_durable(&self, buf: &[u8]) -> Result<FlashAddress, DeviceError> {
        if buf.len() > self.config.segment_bytes {
            return Err(DeviceError::OversizedAppend {
                requested: buf.len(),
                segment_bytes: self.config.segment_bytes,
            });
        }
        let _span = crate::stats::service_span(
            "flashsim.append_durable",
            dcs_telemetry::CostClass::SsWrite,
        );
        self.config.io_path.run_submit();
        self.stats.record_submit_charge();
        let addr = {
            let mut st = self.state.lock();
            let id = st.free.pop().ok_or(DeviceError::Full)?;
            let mut seg = Segment::new(self.config.segment_bytes);
            seg.data[..buf.len()].copy_from_slice(buf);
            seg.written = buf.len();
            seg.durable = buf.len();
            st.segments[id as usize] = Some(seg);
            // The fresh segment is closed immediately; the previous open
            // segment (if any) remains the append target.
            FlashAddress {
                segment: id,
                offset: 0,
            }
        };
        let done = self.schedule_io(self.config.write_latency);
        self.stats
            .record_depth(self.inflight_reads.load(Ordering::SeqCst) + 1);
        if self.config.advance_clock_on_io {
            self.clock.advance_to(done);
        }
        self.config.io_path.run_complete();
        self.stats.record_write(buf.len() as u64);
        self.stats.record_sync();
        Ok(addr)
    }

    /// Read `len` bytes at `addr`. Charges one read I/O.
    ///
    /// A thin submit+poll wrapper over the asynchronous engine: the command
    /// is submitted, the caller sleeps out any wall-clock latency, and the
    /// completion is reaped inline — identical costs and error behaviour to
    /// the historical blocking implementation.
    pub fn read(&self, addr: FlashAddress, len: usize) -> Result<Vec<u8>, DeviceError> {
        let _span = crate::stats::service_span("flashsim.read", dcs_telemetry::CostClass::SsRead);
        let pending = self.submit_read(addr, len, true);
        pending.wall_wait();
        self.complete_read(pending)
    }

    /// Submit one read command: charge submit-path CPU (unless the caller
    /// amortized it over a batch), latch the outcome (simulated DMA — see
    /// [`PendingRead`]), and occupy a device queue slot.
    ///
    /// Error outcomes are latched without occupying a queue slot, exactly
    /// mirroring the blocking path's early returns.
    pub(crate) fn submit_read(
        &self,
        addr: FlashAddress,
        len: usize,
        charge_submit: bool,
    ) -> PendingRead {
        if charge_submit {
            self.config.io_path.run_submit();
            self.stats.record_submit_charge();
        }
        if self.injector.should_fail_read() {
            self.stats.record_injected_failure();
            return PendingRead {
                latched: Err(DeviceError::InjectedFailure),
                virtual_done: None,
                wall_deadline: None,
            };
        }
        let latched = {
            let st = self.state.lock();
            match st
                .segments
                .get(addr.segment as usize)
                .and_then(|s| s.as_ref())
            {
                None => Err(DeviceError::BadAddress(addr)),
                Some(seg) => {
                    let start = addr.offset as usize;
                    if start + len > seg.written {
                        Err(DeviceError::ShortSegment {
                            addr,
                            len,
                            written: seg.written,
                        })
                    } else {
                        Ok(seg.data[start..start + len].to_vec())
                    }
                }
            }
        };
        if latched.is_err() {
            return PendingRead {
                latched,
                virtual_done: None,
                wall_deadline: None,
            };
        }
        let done = self.schedule_io(self.config.read_latency);
        let depth = self.inflight_reads.fetch_add(1, Ordering::SeqCst) + 1;
        self.stats.record_depth(depth);
        let wall_deadline = if self.config.wall_read_latency > 0 {
            Some(
                std::time::Instant::now()
                    + std::time::Duration::from_nanos(self.config.wall_read_latency),
            )
        } else {
            None
        };
        PendingRead {
            latched,
            virtual_done: Some(done),
            wall_deadline,
        }
    }

    /// Complete a previously submitted read: advance the virtual clock to
    /// its completion time, charge completion-path CPU, and account the
    /// read. Error completions charge nothing further, as the blocking
    /// path's early returns did.
    pub(crate) fn complete_read(&self, pending: PendingRead) -> Result<Vec<u8>, DeviceError> {
        let PendingRead {
            latched,
            virtual_done,
            ..
        } = pending;
        let Some(done) = virtual_done else {
            return latched;
        };
        self.inflight_reads.fetch_sub(1, Ordering::SeqCst);
        if self.config.advance_clock_on_io {
            self.clock.advance_to(done);
        }
        self.config.io_path.run_complete();
        // Failed reads never occupy a slot, so `latched` is always `Ok`
        // today; stay total anyway.
        if let Ok(data) = &latched {
            self.stats.record_read(data.len() as u64);
        }
        latched
    }

    /// Charge one submit-path CPU cost: the per-batch doorbell an
    /// [`crate::IoQueuePair`] rings once for a whole batch of submissions.
    pub(crate) fn charge_submit(&self) {
        self.config.io_path.run_submit();
        self.stats.record_submit_charge();
    }

    /// Number of bytes written into `segment` (0 if trimmed/never used).
    pub fn segment_written(&self, segment: SegmentId) -> usize {
        let st = self.state.lock();
        st.segments
            .get(segment as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.written)
            .unwrap_or(0)
    }

    /// Erase a whole segment, returning its storage to the free pool.
    ///
    /// The open segment cannot be trimmed. Trimming an already-free segment
    /// is a no-op (idempotent, as SSD trim is).
    pub fn trim_segment(&self, segment: SegmentId) {
        let mut st = self.state.lock();
        if st.open == Some(segment) {
            return;
        }
        if st
            .segments
            .get(segment as usize)
            .map(|s| s.is_some())
            .unwrap_or(false)
        {
            st.segments[segment as usize] = None;
            st.free.push(segment);
            st.erase_counts[segment as usize] += 1;
            self.stats.record_trim();
        }
    }

    /// Flash-wear summary: `(max erases on any segment, mean erases)`.
    /// Log-structured stores spread erases across segments; a hot-spot in
    /// the maximum relative to the mean indicates poor wear leveling.
    pub fn wear(&self) -> (u32, f64) {
        let st = self.state.lock();
        let max = st.erase_counts.iter().copied().max().unwrap_or(0);
        let sum: u64 = st.erase_counts.iter().map(|&c| c as u64).sum();
        (max, sum as f64 / st.erase_counts.len() as f64)
    }

    /// Seal the open segment so the next append starts a fresh one.
    /// The log-structured store calls this at flush-buffer boundaries.
    pub fn seal_open_segment(&self) {
        let mut st = self.state.lock();
        st.open = None;
    }

    /// Mark all appended data durable (as a flush barrier / FUA would).
    pub fn sync(&self) {
        let _span = crate::stats::service_span("flashsim.sync", dcs_telemetry::CostClass::Wal);
        let mut st = self.state.lock();
        for seg in st.segments.iter_mut().flatten() {
            seg.durable = seg.written;
        }
        self.stats.record_sync();
    }

    /// Simulate a power failure: every byte appended since the last
    /// [`FlashDevice::sync`] is lost. Returns the number of bytes discarded.
    pub fn crash(&self) -> u64 {
        let mut st = self.state.lock();
        let mut lost = 0u64;
        for seg in st.segments.iter_mut().flatten() {
            lost += (seg.written - seg.durable) as u64;
            seg.written = seg.durable;
        }
        st.open = None;
        lost
    }

    /// Simulate a power failure that *tears* the in-flight write: like
    /// [`FlashDevice::crash`], but the open segment keeps up to `tail_keep`
    /// bytes of its non-durable tail — a partially persisted append, as a
    /// real device may leave after losing power mid-write. Recovery code
    /// must treat that tail as untrusted (torn frames, bad CRCs). Returns
    /// the number of bytes discarded.
    pub fn crash_torn(&self, tail_keep: usize) -> u64 {
        let mut st = self.state.lock();
        let open = st.open;
        let mut lost = 0u64;
        for (id, seg) in st.segments.iter_mut().enumerate() {
            let Some(seg) = seg else { continue };
            let keep = if open == Some(id as SegmentId) {
                seg.written.min(seg.durable + tail_keep)
            } else {
                seg.durable
            };
            lost += (seg.written - keep) as u64;
            seg.written = keep;
            seg.durable = keep;
        }
        st.open = None;
        lost
    }

    /// Free segments remaining.
    pub fn free_segments(&self) -> usize {
        self.state.lock().free.len()
    }

    /// Snapshot of device counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
            .snapshot(self.clock.now(), self.busy_until.load(Ordering::SeqCst))
    }
}

impl std::fmt::Debug for FlashDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlashDevice")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::IoPathKind;

    fn test_device() -> FlashDevice {
        FlashDevice::new(DeviceConfig::small_test())
    }

    #[test]
    fn append_read_roundtrip() {
        let d = test_device();
        let a1 = d.append(b"alpha").unwrap();
        let a2 = d.append(b"beta").unwrap();
        assert_eq!(d.read(a1, 5).unwrap(), b"alpha");
        assert_eq!(d.read(a2, 4).unwrap(), b"beta");
    }

    #[test]
    fn addresses_are_packed_losslessly() {
        let a = FlashAddress {
            segment: 0xDEAD,
            offset: 0xBEEF,
        };
        assert_eq!(FlashAddress::from_u64(a.to_u64()), a);
    }

    #[test]
    fn appends_do_not_span_segments() {
        let d = test_device();
        let seg_size = d.config().segment_bytes;
        let big = vec![7u8; seg_size - 10];
        let a1 = d.append(&big).unwrap();
        let a2 = d.append(b"next-segment").unwrap();
        assert_ne!(a1.segment, a2.segment);
        assert_eq!(a2.offset, 0);
        assert_eq!(d.read(a2, 12).unwrap(), b"next-segment");
    }

    #[test]
    fn oversized_append_rejected() {
        let d = test_device();
        let huge = vec![0u8; d.config().segment_bytes + 1];
        assert!(matches!(
            d.append(&huge),
            Err(DeviceError::OversizedAppend { .. })
        ));
    }

    #[test]
    fn device_fills_up() {
        let cfg = DeviceConfig {
            segment_count: 2,
            ..DeviceConfig::small_test()
        };
        let d = FlashDevice::new(cfg);
        let seg = d.config().segment_bytes;
        d.append(&vec![1u8; seg]).unwrap();
        d.append(&vec![2u8; seg]).unwrap();
        assert_eq!(d.append(b"x"), Err(DeviceError::Full));
    }

    #[test]
    fn trim_frees_capacity() {
        let cfg = DeviceConfig {
            segment_count: 2,
            ..DeviceConfig::small_test()
        };
        let d = FlashDevice::new(cfg);
        let seg = d.config().segment_bytes;
        let a1 = d.append(&vec![1u8; seg]).unwrap();
        d.append(&vec![2u8; seg]).unwrap();
        d.trim_segment(a1.segment);
        assert_eq!(d.free_segments(), 1);
        assert_eq!(d.read(a1, 1), Err(DeviceError::BadAddress(a1)));
        // The trimmed segment is recycled for new appends.
        let a3 = d.append(b"fits now").unwrap();
        assert_eq!(a3.segment, a1.segment);
    }

    #[test]
    fn trim_open_segment_is_refused() {
        let d = test_device();
        let a = d.append(b"keep me").unwrap();
        d.trim_segment(a.segment);
        assert_eq!(d.read(a, 7).unwrap(), b"keep me");
    }

    #[test]
    fn short_read_detected() {
        let d = test_device();
        let a = d.append(b"tiny").unwrap();
        assert!(matches!(
            d.read(a, 100),
            Err(DeviceError::ShortSegment { .. })
        ));
    }

    #[test]
    fn crash_discards_unsynced_tail() {
        let d = test_device();
        let a1 = d.append(b"durable").unwrap();
        d.sync();
        let a2 = d.append(b"volatile").unwrap();
        let lost = d.crash();
        assert_eq!(lost, 8);
        assert_eq!(d.read(a1, 7).unwrap(), b"durable");
        assert!(d.read(a2, 8).is_err());
    }

    #[test]
    fn crash_torn_keeps_a_partial_tail() {
        let d = test_device();
        let a1 = d.append(b"durable").unwrap();
        d.sync();
        let a2 = d.append(b"volatile").unwrap();
        // A torn crash persists only the first 3 bytes of the tail.
        let lost = d.crash_torn(3);
        assert_eq!(lost, 5);
        assert_eq!(d.read(a1, 7).unwrap(), b"durable");
        assert_eq!(d.read(a2, 3).unwrap(), b"vol");
        assert!(d.read(a2, 8).is_err(), "torn bytes must be gone");
        // With a huge tail_keep everything written survives.
        let d = test_device();
        let a = d.append(b"volatile").unwrap();
        assert_eq!(d.crash_torn(1 << 20), 0);
        assert_eq!(d.read(a, 8).unwrap(), b"volatile");
    }

    #[test]
    fn stats_count_ios() {
        let d = test_device();
        let a = d.append(b"12345678").unwrap();
        d.read(a, 8).unwrap();
        d.read(a, 4).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.bytes_written, 8);
        assert_eq!(s.bytes_read, 12);
    }

    #[test]
    fn iops_ceiling_advances_clock() {
        let cfg = DeviceConfig {
            max_iops: 1000.0, // 1 ms service time
            read_latency: 0,
            write_latency: 0,
            io_path: IoPathKind::Free.model(),
            ..DeviceConfig::small_test()
        };
        let d = FlashDevice::new(cfg);
        let a = d.append(b"x").unwrap();
        for _ in 0..10 {
            d.read(a, 1).unwrap();
        }
        // 11 I/Os at 1 ms service each ⇒ ≥ 11 ms of virtual time.
        assert!(d.clock().now() >= 11_000_000, "now={}", d.clock().now());
    }

    #[test]
    fn injected_read_failures_surface() {
        let d = test_device();
        let a = d.append(b"data").unwrap();
        d.set_injector(FailureInjector::failing_reads(1.0, 42));
        assert_eq!(d.read(a, 4), Err(DeviceError::InjectedFailure));
        d.set_injector(FailureInjector::disabled());
        assert_eq!(d.read(a, 4).unwrap(), b"data");
    }

    #[test]
    fn concurrent_appends_get_distinct_addresses() {
        let d = std::sync::Arc::new(FlashDevice::new(DeviceConfig {
            segment_count: 256,
            ..DeviceConfig::small_test()
        }));
        let mut handles = Vec::new();
        for t in 0..8u8 {
            let d = d.clone();
            handles.push(std::thread::spawn(move || {
                let mut addrs = Vec::new();
                for i in 0..200 {
                    let payload = [t, i as u8, 0xAB];
                    addrs.push((d.append(&payload).unwrap(), payload));
                }
                addrs
            }));
        }
        let mut seen = std::collections::HashSet::new();
        for h in handles {
            for (addr, payload) in h.join().unwrap() {
                assert!(seen.insert(addr), "duplicate address {addr:?}");
                assert_eq!(d.read(addr, 3).unwrap(), payload);
            }
        }
    }

    #[test]
    fn wear_counts_erases() {
        let cfg = DeviceConfig {
            segment_count: 4,
            ..DeviceConfig::small_test()
        };
        let d = FlashDevice::new(cfg);
        assert_eq!(d.wear(), (0, 0.0));
        let seg = d.config().segment_bytes;
        for _ in 0..3 {
            let a = d.append(&vec![1u8; seg]).unwrap();
            d.seal_open_segment();
            d.trim_segment(a.segment);
        }
        let (max, mean) = d.wear();
        assert!(max >= 1);
        assert!(
            (mean - 3.0 / 4.0).abs() < 1e-9 || max == 3,
            "max {max} mean {mean}"
        );
    }

    #[test]
    fn seal_open_segment_starts_fresh() {
        let d = test_device();
        let a1 = d.append(b"one").unwrap();
        d.seal_open_segment();
        let a2 = d.append(b"two").unwrap();
        assert_ne!(a1.segment, a2.segment);
    }
}
