//! Property test: the simulated flash device against a reference model,
//! under random interleavings of append / read / trim / seal / sync /
//! crash.

use dcs_flashsim::{DeviceConfig, DeviceError, FlashAddress, FlashDevice};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Append(Vec<u8>),
    ReadBack(usize),
    Trim(usize),
    Seal,
    Sync,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => proptest::collection::vec(any::<u8>(), 1..200).prop_map(Op::Append),
        5 => any::<usize>().prop_map(Op::ReadBack),
        1 => any::<usize>().prop_map(Op::Trim),
        1 => Just(Op::Seal),
        1 => Just(Op::Sync),
        1 => Just(Op::Crash),
    ]
}

/// Model entry: address, payload, and whether it has been synced.
struct Entry {
    addr: FlashAddress,
    data: Vec<u8>,
    durable: bool,
    trimmed: bool,
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn device_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let device = FlashDevice::new(DeviceConfig {
            segment_bytes: 1 << 10,
            segment_count: 512,
            ..DeviceConfig::small_test()
        });
        let mut entries: Vec<Entry> = Vec::new();
        for op in ops {
            match op {
                Op::Append(data) => {
                    let addr = device.append(&data).expect("append");
                    entries.push(Entry { addr, data, durable: false, trimmed: false });
                }
                Op::ReadBack(i) => {
                    if entries.is_empty() { continue; }
                    let e = &entries[i % entries.len()];
                    let got = device.read(e.addr, e.data.len());
                    if e.trimmed {
                        // Trimmed segments may have been recycled by later
                        // appends; a read either fails or returns data from
                        // the recycled segment — but it must never panic.
                        let _ = got;
                    } else {
                        prop_assert_eq!(got.expect("live read"), e.data.clone());
                    }
                }
                Op::Trim(i) => {
                    if entries.is_empty() { continue; }
                    let seg = entries[i % entries.len()].addr.segment;
                    device.trim_segment(seg);
                    // Trim of the open segment is refused by the device;
                    // mirror that in the model.
                    let refused = device.segment_written(seg) > 0
                        && device.read(
                            FlashAddress { segment: seg, offset: 0 }, 1
                        ).as_deref() != Err(&DeviceError::BadAddress(
                            FlashAddress { segment: seg, offset: 0 }
                        ));
                    if !refused {
                        for e in entries.iter_mut().filter(|e| e.addr.segment == seg) {
                            e.trimmed = true;
                        }
                    }
                }
                Op::Seal => device.seal_open_segment(),
                Op::Sync => {
                    device.sync();
                    for e in entries.iter_mut() {
                        e.durable = true;
                    }
                }
                Op::Crash => {
                    device.crash();
                    for e in entries.iter_mut() {
                        if !e.durable {
                            e.trimmed = true; // gone
                        }
                    }
                }
            }
        }
        // Final audit: every durable, untrimmed entry reads back intact.
        for e in entries.iter().filter(|e| e.durable && !e.trimmed) {
            let got = device.read(e.addr, e.data.len());
            prop_assert_eq!(got.expect("durable read"), e.data.clone());
        }
    }

    #[test]
    fn appends_never_alias(datas in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..64), 1..200)
    ) {
        let device = FlashDevice::new(DeviceConfig {
            segment_bytes: 1 << 10,
            segment_count: 256,
            ..DeviceConfig::small_test()
        });
        let mut placed = Vec::new();
        for d in &datas {
            placed.push((device.append(d).expect("append"), d.clone()));
        }
        // All addresses distinct and all contents recoverable afterwards.
        let mut seen = std::collections::HashSet::new();
        for (addr, data) in &placed {
            prop_assert!(seen.insert(*addr), "address reuse: {addr:?}");
            prop_assert_eq!(&device.read(*addr, data.len()).expect("read"), data);
        }
    }
}
