//! Facade over the synchronization primitives this crate uses.
//!
//! The default build re-exports `std::sync` types unchanged — zero cost.
//! With the `check` feature, the instrumented shims from `dcs-check` are
//! substituted instead: every atomic access and lock acquisition becomes a
//! schedule point for the deterministic interleaving checker, and the same
//! source compiles against either.
//!
//! Code in this crate must import synchronization types from here, never
//! from `std::sync` directly (test modules excepted: they run outside the
//! checker by construction).

#[cfg(feature = "check")]
pub use dcs_check::sync::{fence, AtomicU64, Mutex, Ordering};

#[cfg(not(feature = "check"))]
pub use std::sync::atomic::{fence, AtomicU64, Ordering};
#[cfg(not(feature = "check"))]
pub use std::sync::Mutex;
