//! Pin guards.

use crate::collector::{Global, Local};
use std::marker::PhantomData;
use std::sync::Arc;

/// Witness that the current thread is pinned.
///
/// While a `Guard` is live, memory retired through the same collector cannot
/// be freed if this thread could still observe it. Guards nest: inner guards
/// share the outermost guard's announced epoch. Dropping the outermost guard
/// unpins the thread and may opportunistically collect garbage.
///
/// `Guard` is deliberately `!Send`: a pin protects loads performed *on the
/// pinning thread*.
pub struct Guard {
    global: Arc<Global>,
    local: Arc<Local>,
    _not_send: PhantomData<*mut ()>,
}

impl Guard {
    pub(crate) fn new(global: Arc<Global>, local: Arc<Local>) -> Self {
        Guard {
            global,
            local,
            _not_send: PhantomData,
        }
    }

    pub(crate) fn global(&self) -> &Global {
        &self.global
    }

    pub(crate) fn local(&self) -> &Local {
        &self.local
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        Guard::unpin(&self.global, &self.local);
    }
}

impl std::fmt::Debug for Guard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Guard")
            .field("epoch", &self.epoch())
            .finish()
    }
}
