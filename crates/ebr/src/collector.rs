//! The collector: global epoch, participant registry, and garbage bags.

use crate::deferred::Deferred;
use crate::guard::Guard;
use crate::sync::{fence, AtomicU64, Mutex, Ordering};
use std::sync::Arc;

/// Local garbage bag size that triggers an opportunistic collection.
const COLLECT_THRESHOLD: usize = 64;

/// Per-participant state. Shared between the owning thread (hot path) and
/// collecting threads (scan in `try_advance`).
pub(crate) struct Local {
    /// `0` when not pinned; otherwise `(epoch << 1) | 1`.
    state: AtomicU64,
    /// Nesting depth of guards on the owning thread. Only the owning thread
    /// mutates this, but it is atomic so `Local` stays `Sync`.
    guard_count: AtomicU64,
    /// Garbage retired by this participant, stamped with retirement epoch.
    bag: Mutex<Vec<Deferred>>,
}

impl Local {
    fn new() -> Self {
        Local {
            state: AtomicU64::new(0),
            guard_count: AtomicU64::new(0),
            bag: Mutex::new(Vec::new()),
        }
    }
}

/// Shared collector internals, owned jointly by the [`Collector`] and every
/// [`LocalHandle`] registered to it.
pub(crate) struct Global {
    epoch: AtomicU64,
    locals: Mutex<Vec<Arc<Local>>>,
    /// Garbage from participants that unregistered before it became safe.
    orphan: Mutex<Vec<Deferred>>,
    deferred_total: AtomicU64,
    freed_total: AtomicU64,
    pins_total: AtomicU64,
    /// Highest epoch any `audit()` call has observed; audits use it to prove
    /// the epoch never regresses across the collector's lifetime.
    audit_floor: AtomicU64,
}

impl Global {
    fn new() -> Self {
        Global {
            epoch: AtomicU64::new(2), // start >= 2 so `epoch - 2` never underflows
            locals: Mutex::new(Vec::new()),
            orphan: Mutex::new(Vec::new()),
            deferred_total: AtomicU64::new(0),
            freed_total: AtomicU64::new(0),
            pins_total: AtomicU64::new(0),
            audit_floor: AtomicU64::new(0),
        }
    }

    /// Check the collector's structural invariants. See [`Collector::audit`].
    fn audit(&self) -> Result<(), String> {
        let ge = self.epoch.load(Ordering::SeqCst);
        if ge < 2 {
            return Err(format!("global epoch {ge} below initial value 2"));
        }
        // Monotonicity across audits: fetch_max returns the previous floor,
        // which must never exceed what we just read.
        let floor = self.audit_floor.fetch_max(ge, Ordering::SeqCst);
        if floor > ge {
            return Err(format!(
                "global epoch regressed: observed {floor}, now {ge}"
            ));
        }
        {
            let locals = self.locals.lock().unwrap();
            for (i, local) in locals.iter().enumerate() {
                let s = local.state.load(Ordering::SeqCst);
                if s & 1 == 1 {
                    let e = s >> 1;
                    // A pinned participant may lag the global epoch by at
                    // most one; more lag would let reclamation free memory
                    // the participant can still observe.
                    if e + 1 < ge || e > ge {
                        return Err(format!(
                            "participant {i} pinned at epoch {e} but global epoch is {ge} \
                             (lag must be 0 or 1)"
                        ));
                    }
                } else if s != 0 {
                    return Err(format!(
                        "participant {i} unpinned but state is {s:#x} (must be 0)"
                    ));
                }
            }
        }
        let deferred = self.deferred_total.load(Ordering::SeqCst);
        let freed = self.freed_total.load(Ordering::SeqCst);
        if freed > deferred {
            return Err(format!(
                "freed_total ({freed}) exceeds deferred_total ({deferred})"
            ));
        }
        Ok(())
    }

    /// Attempt to advance the global epoch. Succeeds only when every pinned
    /// participant has announced the current epoch.
    fn try_advance(&self) -> u64 {
        let ge = self.epoch.load(Ordering::SeqCst);
        {
            let locals = self.locals.lock().unwrap();
            for local in locals.iter() {
                let s = local.state.load(Ordering::SeqCst);
                if s & 1 == 1 && (s >> 1) != ge {
                    return ge; // a participant is still in the previous epoch
                }
            }
        }
        // CAS failure means another thread advanced for us; either way the
        // epoch is now at least ge + 1.
        let _ = self
            .epoch
            .compare_exchange(ge, ge + 1, Ordering::SeqCst, Ordering::SeqCst);
        self.epoch.load(Ordering::SeqCst)
    }

    /// Free all garbage retired at or before `safe_epoch`.
    ///
    /// Garbage stamped `e` is freed once the global epoch reaches `e + 2`:
    /// every thread pinned now announces at least `e + 1`, so it pinned
    /// *after* the retiring unlink and cannot hold a reference.
    fn collect(&self, local: &Local) {
        let ge = self.try_advance();
        let safe_before = ge.saturating_sub(1); // free items with epoch < ge - 1
        let mut ready: Vec<Deferred> = Vec::new();
        {
            let mut bag = local.bag.lock().unwrap();
            let mut i = 0;
            while i < bag.len() {
                if bag[i].epoch < safe_before {
                    ready.push(bag.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        {
            let mut orphan = self.orphan.lock().unwrap();
            let mut i = 0;
            while i < orphan.len() {
                if orphan[i].epoch < safe_before {
                    ready.push(orphan.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        let n = ready.len() as u64;
        if n > 0 {
            let _span =
                dcs_telemetry::span("ebr.reclaim_batch", dcs_telemetry::CostClass::Maintenance);
            dcs_telemetry::ledger().maintenance_op();
            for d in ready {
                d.call();
            }
        }
        // ORDERING: statistics counter; reclamation safety is carried
        // by the SeqCst epoch protocol above, not by this count.
        self.freed_total.fetch_add(n, Ordering::Relaxed);
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // No handles remain (they co-own `Global`), so nothing is pinned and
        // all garbage is safe to run.
        let locals = std::mem::take(&mut *self.locals.lock().unwrap());
        for local in locals {
            let bag = std::mem::take(&mut *local.bag.lock().unwrap());
            for d in bag {
                d.call();
            }
        }
        let orphan = std::mem::take(&mut *self.orphan.lock().unwrap());
        for d in orphan {
            d.call();
        }
    }
}

/// An epoch-based garbage collector instance.
///
/// Typically one collector exists per latch-free structure (or the process
/// default via [`crate::pin`]). Threads participate by calling
/// [`Collector::register`] and pinning through the returned handle.
pub struct Collector {
    global: Arc<Global>,
}

impl Collector {
    /// Create a new, empty collector.
    pub fn new() -> Self {
        Collector {
            global: Arc::new(Global::new()),
        }
    }

    /// Register the current thread (or any thread the handle is moved to)
    /// as a participant.
    pub fn register(&self) -> LocalHandle {
        let local = Arc::new(Local::new());
        self.global.locals.lock().unwrap().push(local.clone());
        LocalHandle {
            global: self.global.clone(),
            local,
        }
    }

    /// Audit the collector's structural invariants:
    ///
    /// * the global epoch is at least the initial value and never regresses
    ///   between audits (epoch monotonicity);
    /// * every pinned participant's announced epoch lags the global epoch by
    ///   at most one;
    /// * unpinned participants announce the sentinel state `0`;
    /// * the freed counter never exceeds the deferred counter.
    ///
    /// Safe to call concurrently with operations, but epoch/participant
    /// checks are only meaningfully stable at quiescence (no concurrent
    /// pins) — e.g. at the end of a deterministic-checker scenario.
    pub fn audit(&self) -> Result<(), String> {
        self.global.audit()
    }

    /// Snapshot of collector counters, for observability and tests.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            // ORDERING: statistics counters; each is individually
            // exact and the snapshot tolerates a torn cross-field view.
            global_epoch: self.global.epoch.load(Ordering::SeqCst),
            registered: self.global.locals.lock().unwrap().len(),
            deferred_total: self.global.deferred_total.load(Ordering::Relaxed),
            freed_total: self.global.freed_total.load(Ordering::Relaxed),
            pins_total: self.global.pins_total.load(Ordering::Relaxed),
        }
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Counters describing a collector's activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectorStats {
    /// Current global epoch.
    pub global_epoch: u64,
    /// Number of registered participants.
    pub registered: usize,
    /// Total deferred functions ever queued.
    pub deferred_total: u64,
    /// Total deferred functions executed so far.
    pub freed_total: u64,
    /// Total pin operations.
    pub pins_total: u64,
}

/// A per-thread participant handle. Pin through this to get a [`Guard`].
pub struct LocalHandle {
    pub(crate) global: Arc<Global>,
    pub(crate) local: Arc<Local>,
}

impl LocalHandle {
    /// Pin the owning thread. See [`crate::pin`].
    pub fn pin(&self) -> Guard {
        // ORDERING: guard_count is thread-local bookkeeping (only the
        // owning thread mutates it); visibility to the collector goes
        // through the SeqCst `state` announcement below.
        let prev = self.local.guard_count.fetch_add(1, Ordering::Relaxed);
        if prev == 0 {
            // Announce the epoch we observe; the fence orders the
            // announcement before any subsequent shared-memory loads, and the
            // re-check closes the window where the epoch advanced between our
            // load and store.
            loop {
                let ge = self.global.epoch.load(Ordering::SeqCst);
                self.local.state.store((ge << 1) | 1, Ordering::SeqCst);
                fence(Ordering::SeqCst);
                if self.global.epoch.load(Ordering::SeqCst) == ge {
                    break;
                }
            }
        }
        // ORDERING: statistics counter only.
        self.global.pins_total.fetch_add(1, Ordering::Relaxed);
        Guard::new(self.global.clone(), self.local.clone())
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        // ORDERING: owning-thread-local value; see pin().
        debug_assert_eq!(
            self.local.guard_count.load(Ordering::Relaxed),
            0,
            "LocalHandle dropped while a Guard is live"
        );
        // Migrate unfreed garbage to the orphan list and unregister.
        let bag = std::mem::take(&mut *self.local.bag.lock().unwrap());
        self.global.orphan.lock().unwrap().extend(bag);
        let mut locals = self.global.locals.lock().unwrap();
        locals.retain(|l| !Arc::ptr_eq(l, &self.local));
    }
}

// Guard-side operations live here so `Local` internals stay private.
impl Guard {
    /// Defer `f` until no pinned thread can observe retired memory.
    ///
    /// `f` must not pin or defer on the *same* collector (it runs while
    /// internal locks may be re-acquired by the caller's thread).
    pub fn defer(&self, f: impl FnOnce() + Send + 'static) {
        let epoch = self.global().epoch.load(Ordering::SeqCst);
        // ORDERING: statistics counter; the deferred closure itself is
        // published by the bag mutex below.
        self.global().deferred_total.fetch_add(1, Ordering::Relaxed);
        let mut bag = self.local().bag.lock().unwrap();
        bag.push(Deferred::new(epoch, f));
        let should_collect = bag.len() >= COLLECT_THRESHOLD;
        drop(bag);
        if should_collect {
            self.global().collect(self.local());
        }
    }

    /// Defer dropping the `Box` behind `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must have come from `Box::into_raw`, must not be freed by any
    /// other path, and no new references to it may be created after this
    /// call (it is already unlinked from shared memory).
    pub unsafe fn defer_drop<T: Send + 'static>(&self, ptr: *mut T) {
        // Under the deterministic checker, report the retirement and the
        // eventual free so the shadow heap can flag double-retires and
        // use-after-free with the triggering seed.
        #[cfg(feature = "check")]
        dcs_check::shadow::on_retire(ptr);
        let addr = ptr as usize;
        self.defer(move || {
            #[cfg(feature = "check")]
            dcs_check::shadow::on_free(addr as *const u8);
            // SAFETY: caller contract — unique, unlinked Box pointer.
            drop(unsafe { Box::from_raw(addr as *mut T) });
        });
    }

    /// Eagerly attempt to advance the epoch and run safe garbage.
    pub fn flush(&self) {
        self.global().collect(self.local());
    }

    /// The epoch this guard's thread announced when pinning.
    pub fn epoch(&self) -> u64 {
        self.local().state.load(Ordering::SeqCst) >> 1
    }

    pub(crate) fn unpin(global: &Global, local: &Local) {
        // ORDERING: owning-thread-local bookkeeping; the unpin that
        // matters to other threads is the SeqCst `state` store below.
        let prev = local.guard_count.fetch_sub(1, Ordering::Relaxed);
        if prev == 1 {
            local.state.store(0, Ordering::SeqCst);
            // Opportunistically collect if garbage is piling up.
            let pending = local.bag.lock().unwrap().len();
            if pending >= COLLECT_THRESHOLD / 2 {
                global.collect(local);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_unregister_updates_registry() {
        let c = Collector::new();
        assert_eq!(c.stats().registered, 0);
        let h1 = c.register();
        let h2 = c.register();
        assert_eq!(c.stats().registered, 2);
        drop(h1);
        assert_eq!(c.stats().registered, 1);
        drop(h2);
        assert_eq!(c.stats().registered, 0);
    }

    #[test]
    fn epoch_starts_at_two() {
        let c = Collector::new();
        assert_eq!(c.stats().global_epoch, 2);
    }

    #[test]
    fn pin_count_tracked() {
        let c = Collector::new();
        let h = c.register();
        for _ in 0..10 {
            let _ = h.pin();
        }
        assert_eq!(c.stats().pins_total, 10);
    }

    #[test]
    fn advance_blocked_by_lagging_pin() {
        let c = Collector::new();
        let h1 = c.register();
        let h2 = c.register();
        let _blocker = h1.pin();
        let before = c.stats().global_epoch;
        // h2 can advance at most once past the epoch h1 is pinned at.
        for _ in 0..16 {
            h2.pin().flush();
        }
        let after = c.stats().global_epoch;
        assert!(
            after <= before + 1,
            "advance past pinned epoch: {before} -> {after}"
        );
    }
}
