//! Type-erased deferred functions.

/// A deferred function: a closure that will run exactly once, after the
/// collector proves no pinned thread can still observe the memory it frees.
///
/// Stored boxed; retirement is off the hot path (an operation retires memory
/// only when it unlinks a node), so one allocation per retirement is
/// acceptable and keeps the implementation simple and safe.
pub struct Deferred {
    /// Epoch at which the owning object was retired.
    pub(crate) epoch: u64,
    call: Option<Box<dyn FnOnce() + Send>>,
}

impl Deferred {
    pub(crate) fn new(epoch: u64, f: impl FnOnce() + Send + 'static) -> Self {
        Deferred {
            epoch,
            call: Some(Box::new(f)),
        }
    }

    /// Execute the deferred function. Idempotent: calling twice is a no-op.
    pub(crate) fn call(mut self) {
        if let Some(f) = self.call.take() {
            f();
        }
    }
}

impl std::fmt::Debug for Deferred {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deferred")
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn call_runs_once() {
        let n = Arc::new(AtomicUsize::new(0));
        let n2 = n.clone();
        let d = Deferred::new(3, move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(d.epoch, 3);
        d.call();
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn debug_format() {
        let d = Deferred::new(7, || {});
        let s = format!("{d:?}");
        assert!(s.contains("7"));
        d.call();
    }
}
