//! Epoch-based memory reclamation (EBR) for latch-free data structures.
//!
//! Latch-free structures like the Bw-tree (`dcs-bwtree`) and MassTree
//! (`dcs-masstree`) unlink nodes from shared memory while concurrent readers
//! may still hold raw pointers into them. EBR defers physical deallocation
//! until no reader that could have observed the unlinked node remains active.
//!
//! # Scheme
//!
//! This is the classic three-epoch scheme (Fraser 2004; the same design used
//! by `crossbeam-epoch`, re-implemented here from scratch so the data-store
//! substrates of this workspace have no external unsafe dependencies):
//!
//! * A global epoch counter advances through values `e`, `e+1`, `e+2`, …
//! * Each thread *pins* itself before touching shared memory, announcing the
//!   global epoch it observed. While pinned, the thread's announced epoch
//!   lags the global epoch by at most one.
//! * Retired garbage is stamped with the epoch at retirement. Once the global
//!   epoch has advanced two steps past the stamp, no pinned thread can still
//!   hold a reference, and the garbage is freed.
//!
//! # Usage
//!
//! ```
//! use dcs_ebr::{pin, Collector};
//!
//! // Retire a heap allocation through the global collector.
//! let guard = pin();
//! let boxed = Box::new(42u64);
//! let raw = Box::into_raw(boxed);
//! unsafe { guard.defer_drop(raw) };
//! drop(guard);
//!
//! // Or use a private collector, e.g. one per tree instance.
//! let collector = Collector::new();
//! let handle = collector.register();
//! let guard = handle.pin();
//! guard.defer(|| { /* runs once safe */ });
//! ```
//!
//! # Guarantees
//!
//! * [`Guard`] is `!Send`: a pin is a property of the current thread.
//! * Deferred closures run at most once, after every thread pinned at (or
//!   before) the retirement epoch has unpinned.
//! * Dropping a [`Collector`] runs all remaining deferred functions.

mod collector;
mod deferred;
mod guard;
pub(crate) mod sync;

pub use collector::{Collector, CollectorStats, LocalHandle};
pub use deferred::Deferred;
pub use guard::Guard;

use std::sync::OnceLock;

/// The process-wide default collector used by [`pin`].
fn default_collector() -> &'static Collector {
    static DEFAULT: OnceLock<Collector> = OnceLock::new();
    DEFAULT.get_or_init(Collector::new)
}

thread_local! {
    static DEFAULT_HANDLE: LocalHandle = default_collector().register();
}

/// Pin the current thread to the global default collector.
///
/// While the returned [`Guard`] lives, memory retired through *this
/// collector* by any thread is not freed if this thread could still observe
/// it. Pins are cheap (two atomic stores and a fence) and re-entrant: nested
/// pins reuse the outermost pin's epoch.
pub fn pin() -> Guard {
    DEFAULT_HANDLE.with(|h| h.pin())
}

/// Returns statistics for the global default collector.
pub fn default_stats() -> CollectorStats {
    default_collector().stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn pin_unpin_smoke() {
        let g = pin();
        drop(g);
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        drop(g2);
    }

    #[test]
    fn deferred_runs_eventually() {
        let collector = Collector::new();
        let handle = collector.register();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let guard = handle.pin();
            let ran = ran.clone();
            guard.defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        // Repeated pin/unpin cycles advance the epoch and flush garbage.
        for _ in 0..64 {
            let g = handle.pin();
            g.flush();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn deferred_not_run_while_pinned() {
        let collector = Collector::new();
        let h1 = collector.register();
        let h2 = collector.register();
        let ran = Arc::new(AtomicUsize::new(0));

        let blocker = h1.pin(); // h1 stays pinned, blocking epoch advance.
        {
            let guard = h2.pin();
            let ran = ran.clone();
            guard.defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..64 {
            let g = h2.pin();
            g.flush();
        }
        // h1's pin predates the retirement epoch, so garbage must survive.
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        drop(blocker);
        for _ in 0..64 {
            let g = h2.pin();
            g.flush();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn collector_drop_runs_all_garbage() {
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let collector = Collector::new();
            let handle = collector.register();
            let guard = handle.pin();
            for _ in 0..100 {
                let ran = ran.clone();
                guard.defer(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                });
            }
            drop(guard);
            drop(handle);
        }
        assert_eq!(ran.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn defer_drop_frees_box() {
        struct Canary(Arc<AtomicUsize>);
        impl Drop for Canary {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let collector = Collector::new();
        let handle = collector.register();
        {
            let guard = handle.pin();
            let raw = Box::into_raw(Box::new(Canary(drops.clone())));
            // SAFETY: `raw` came from Box::into_raw and is never used again.
            unsafe { guard.defer_drop(raw) };
        }
        for _ in 0..64 {
            handle.pin().flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_stress() {
        let collector = Arc::new(Collector::new());
        let freed = Arc::new(AtomicUsize::new(0));
        const THREADS: usize = 8;
        const PER_THREAD: usize = 2_000;

        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let collector = collector.clone();
            let freed = freed.clone();
            joins.push(std::thread::spawn(move || {
                let handle = collector.register();
                for i in 0..PER_THREAD {
                    let guard = handle.pin();
                    let freed = freed.clone();
                    guard.defer(move || {
                        freed.fetch_add(1, Ordering::SeqCst);
                    });
                    if i % 16 == 0 {
                        guard.flush();
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        // Drop the last Arc; the collector reclaims stragglers on drop.
        drop(Arc::try_unwrap(collector).ok());
        assert_eq!(freed.load(Ordering::SeqCst), THREADS * PER_THREAD);
    }

    #[test]
    fn stats_report_epoch_progress() {
        let collector = Collector::new();
        let handle = collector.register();
        let before = collector.stats().global_epoch;
        for _ in 0..32 {
            handle.pin().flush();
        }
        let after = collector.stats().global_epoch;
        assert!(after > before, "epoch should advance: {before} -> {after}");
    }

    #[test]
    fn nested_pins_share_epoch() {
        let collector = Collector::new();
        let handle = collector.register();
        let outer = handle.pin();
        let e1 = outer.epoch();
        let inner = handle.pin();
        assert_eq!(e1, inner.epoch());
        drop(inner);
        drop(outer);
    }

    #[test]
    fn handle_drop_migrates_garbage() {
        let collector = Collector::new();
        let ran = Arc::new(AtomicUsize::new(0));
        {
            let handle = collector.register();
            let guard = handle.pin();
            let ran = ran.clone();
            guard.defer(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            // handle dropped with garbage still queued
        }
        let h2 = collector.register();
        for _ in 0..64 {
            h2.pin().flush();
        }
        assert_eq!(ran.load(Ordering::SeqCst), 1);
    }
}
