//! Plain-text rendering of series and tables for the reproduction harness.

use crate::figures::Series;

/// Render rows as a fixed-width text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render several series as columns keyed by a shared x axis.
///
/// All series must be sampled at the same x values (as the figure builders
/// guarantee).
pub fn series_table(x_label: &str, series: &[Series]) -> String {
    let mut headers: Vec<&str> = vec![x_label];
    for s in series {
        headers.push(&s.label);
    }
    let rows: Vec<Vec<String>> = series[0]
        .points
        .iter()
        .enumerate()
        .map(|(i, (x, _))| {
            let mut row = vec![format_sig(*x)];
            for s in series {
                row.push(format_sig(s.points[i].1));
            }
            row
        })
        .collect();
    table(&headers, &rows)
}

/// Format a float to four significant digits, using scientific notation
/// for very large/small magnitudes.
pub fn format_sig(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let out = table(
            &["name", "value"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn series_table_has_all_columns() {
        let s1 = Series {
            label: "a".into(),
            points: vec![(1.0, 2.0), (2.0, 3.0)],
        };
        let s2 = Series {
            label: "b".into(),
            points: vec![(1.0, 5.0), (2.0, 6.0)],
        };
        let out = series_table("x", &[s1, s2]);
        assert!(out.contains('a') && out.contains('b'));
        assert_eq!(out.lines().count(), 4);
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(format_sig(0.0), "0");
        assert!(format_sig(1.0e-9).contains('e'));
        assert!(format_sig(5.8).starts_with("5.8"));
        assert!(format_sig(4.0e6).contains('e'));
    }
}
