//! Hardware cost catalog (§4.1).

use serde::{Deserialize, Serialize};

/// Infrastructure prices and measured performance quantities.
///
/// Defaults ([`HardwareCatalog::paper`]) are the paper's §4.1 estimates
/// (2018 server prices "gleaned from the web"); every quantity can be
/// overridden to re-run the analysis for different hardware — the paper's
/// point is that only *relative* prices matter and those drift slowly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareCatalog {
    /// `$M`: DRAM cost per byte.
    pub dram_per_byte: f64,
    /// `$Fl`: flash cost per byte.
    pub flash_per_byte: f64,
    /// `$P`: processor (core) cost.
    pub processor: f64,
    /// `$I`: cost of the SSD's I/O capability (drive price minus its
    /// flash-storage value).
    pub iops_capability: f64,
    /// `ROPS`: measured MM read operations per second per core.
    pub rops: f64,
    /// `IOPS`: measured maximum device I/O operations per second.
    pub iops: f64,
    /// `Ps`: average page size in bytes (the paper's 2.7 KB: 4 KB maximum
    /// pages at just under 70 % B-tree utilization).
    pub page_bytes: f64,
    /// `R`: CPU-cost ratio of an SS operation to an MM operation.
    pub r: f64,
}

impl HardwareCatalog {
    /// The paper's §4.1 numbers.
    pub fn paper() -> Self {
        HardwareCatalog {
            dram_per_byte: 5e-9,
            flash_per_byte: 0.5e-9,
            processor: 300.0,
            iops_capability: 50.0,
            rops: 4e6,
            iops: 2e5,
            page_bytes: 2.7e3,
            r: 5.8,
        }
    }

    /// MM-operation execution cost (processor rent per op): `$P / ROPS`.
    pub fn mm_exec_cost(&self) -> f64 {
        self.processor / self.rops
    }

    /// SS-operation execution cost: the I/O (`$I / IOPS`) plus `R` times
    /// the MM processor cost (§3.2).
    pub fn ss_exec_cost(&self) -> f64 {
        self.iops_capability / self.iops + self.r * self.mm_exec_cost()
    }

    /// MM storage rent for one page: DRAM plus the durable flash copy.
    pub fn mm_storage_cost(&self) -> f64 {
        self.page_bytes * (self.dram_per_byte + self.flash_per_byte)
    }

    /// SS storage rent for one page: flash only.
    pub fn ss_storage_cost(&self) -> f64 {
        self.page_bytes * self.flash_per_byte
    }

    /// A catalog with the page size replaced (e.g. record-level analysis,
    /// §6.3).
    pub fn with_page_bytes(&self, page_bytes: f64) -> Self {
        HardwareCatalog {
            page_bytes,
            ..self.clone()
        }
    }

    /// A catalog with a different `R` (e.g. the OS-path R ≈ 9, §7.1.1).
    pub fn with_r(&self, r: f64) -> Self {
        HardwareCatalog { r, ..self.clone() }
    }
}

impl Default for HardwareCatalog {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let hw = HardwareCatalog::paper();
        assert_eq!(hw.dram_per_byte, 5e-9);
        assert_eq!(hw.iops_capability, 50.0);
        assert_eq!(hw.r, 5.8);
    }

    #[test]
    fn storage_ratio_is_about_11x() {
        // §4.2: "SS (flash) storage cost is cheaper than MM (DRAM + flash)
        // storage cost by a factor of about 11X".
        let hw = HardwareCatalog::paper();
        let ratio = hw.mm_storage_cost() / hw.ss_storage_cost();
        assert!((ratio - 11.0).abs() < 0.1, "ratio {ratio}");
    }

    #[test]
    fn exec_costs_match_hand_calculation() {
        let hw = HardwareCatalog::paper();
        assert!((hw.mm_exec_cost() - 7.5e-5).abs() < 1e-12);
        // $I/IOPS = 50/2e5 = 2.5e-4; R*$P/ROPS = 5.8*7.5e-5 = 4.35e-4.
        assert!((hw.ss_exec_cost() - 6.85e-4).abs() < 1e-9);
    }

    #[test]
    fn with_overrides() {
        let hw = HardwareCatalog::paper();
        assert_eq!(hw.with_page_bytes(270.0).page_bytes, 270.0);
        assert_eq!(hw.with_r(9.0).r, 9.0);
    }
}
