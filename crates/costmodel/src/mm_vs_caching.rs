//! Main-memory store vs data caching store: Equations 7–8, Figure 3 (§5).

use crate::catalog::HardwareCatalog;

/// Measured comparison inputs: the main-memory store's performance gain
/// and memory expansion over the caching store (both > 1 in the paper:
/// `Px ≈ 2.6`, `Mx ≈ 2.1` for MassTree vs the memory-resident Bw-tree).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// `Px`: MassTree ops/sec divided by Bw-tree ops/sec.
    pub px: f64,
    /// `Mx`: MassTree footprint divided by Bw-tree footprint.
    pub mx: f64,
}

impl Comparison {
    /// The paper's point-experiment values.
    pub fn paper() -> Self {
        Comparison { px: 2.6, mx: 2.1 }
    }
}

/// Equation 4 specialized (§5.1): cost/sec of running the whole database
/// of `size` bytes in the Bw-tree at `n` ops/sec. (Secondary-storage rent
/// is dropped on both sides, as in the paper.)
pub fn bwtree_cost(hw: &HardwareCatalog, size: f64, n: f64) -> f64 {
    size * hw.dram_per_byte + n * hw.mm_exec_cost()
}

/// Cost/sec of the same database in MassTree: `Mx` times the memory,
/// `1/Px` times the per-op processor cost.
pub fn masstree_cost(hw: &HardwareCatalog, size: f64, n: f64, cmp: &Comparison) -> f64 {
    cmp.mx * size * hw.dram_per_byte + n * hw.mm_exec_cost() / cmp.px
}

/// Equation 7: the breakeven access interval. For access intervals longer
/// than this (rates below `1/Ti`), the Bw-tree is cheaper; shorter, the
/// MassTree's faster execution pays for its extra memory.
pub fn ti_seconds(hw: &HardwareCatalog, size: f64, cmp: &Comparison) -> f64 {
    assert!(cmp.px > 1.0 && cmp.mx > 1.0, "paper's regime: Px, Mx > 1");
    (1.0 / size)
        * (hw.mm_exec_cost() / hw.dram_per_byte)
        * ((cmp.px - 1.0) / (cmp.px * (cmp.mx - 1.0)))
}

/// Equation 8's constant: `Ti · Size` (the paper computes 8.3·10³ for its
/// catalog and measured Px/Mx).
pub fn ti_size_product(hw: &HardwareCatalog, cmp: &Comparison) -> f64 {
    ti_seconds(hw, 1.0, cmp)
}

/// The access rate above which MassTree is cheaper, for a database of
/// `size` bytes.
pub fn breakeven_rate(hw: &HardwareCatalog, size: f64, cmp: &Comparison) -> f64 {
    1.0 / ti_seconds(hw, size, cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1e9;

    fn setup() -> (HardwareCatalog, Comparison) {
        (HardwareCatalog::paper(), Comparison::paper())
    }

    #[test]
    fn ti_size_product_is_8300() {
        let (hw, cmp) = setup();
        let c = ti_size_product(&hw, &cmp);
        assert!(
            (c - 8.3e3).abs() / 8.3e3 < 0.02,
            "Ti·S = {c}, paper says 8.3e3"
        );
    }

    #[test]
    fn six_gb_database_breakeven() {
        // §5.2: 6.1 GB (the Bw-tree footprint) → rate ≈ 0.73e6 ops/sec.
        let (hw, cmp) = setup();
        let rate = breakeven_rate(&hw, 6.1 * GB, &cmp);
        assert!(
            (rate - 0.73e6).abs() / 0.73e6 < 0.02,
            "rate {rate}, paper says ≈0.73e6"
        );
    }

    #[test]
    fn hundred_gb_database_breakeven() {
        // §5.2: 100 GB → about 12e6 ops/sec before MassTree is cheaper.
        let (hw, cmp) = setup();
        let rate = breakeven_rate(&hw, 100.0 * GB, &cmp);
        assert!(
            (rate - 12e6).abs() / 12e6 < 0.05,
            "rate {rate}, paper says ≈12e6"
        );
    }

    #[test]
    fn page_level_interval() {
        // §5.2: for a 2.7 KB page, Ti must fall below ≈3.1 s before
        // MassTree's cost per operation is lower.
        let (hw, cmp) = setup();
        let ti = ti_seconds(&hw, hw.page_bytes, &cmp);
        assert!((ti - 3.1).abs() < 0.05, "Ti {ti}, paper says ≈3.1 s");
    }

    #[test]
    fn breakeven_equalizes_costs() {
        let (hw, cmp) = setup();
        let size = 10.0 * GB;
        let n = breakeven_rate(&hw, size, &cmp);
        let bw = bwtree_cost(&hw, size, n);
        let mt = masstree_cost(&hw, size, n, &cmp);
        assert!((bw - mt).abs() / bw < 1e-9, "{bw} vs {mt}");
    }

    #[test]
    fn bwtree_wins_cold_masstree_wins_hot() {
        let (hw, cmp) = setup();
        let size = 6.1 * GB;
        let n_star = breakeven_rate(&hw, size, &cmp);
        assert!(
            bwtree_cost(&hw, size, n_star / 10.0) < masstree_cost(&hw, size, n_star / 10.0, &cmp)
        );
        assert!(
            masstree_cost(&hw, size, n_star * 10.0, &cmp) < bwtree_cost(&hw, size, n_star * 10.0)
        );
    }

    #[test]
    fn rate_scales_with_database_size() {
        // §5.2: "The access rate must scale with database size."
        let (hw, cmp) = setup();
        let r1 = breakeven_rate(&hw, GB, &cmp);
        let r10 = breakeven_rate(&hw, 10.0 * GB, &cmp);
        assert!((r10 / r1 - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "regime")]
    fn degenerate_comparison_panics() {
        let hw = HardwareCatalog::paper();
        let _ = ti_seconds(&hw, 1e9, &Comparison { px: 0.9, mx: 2.0 });
    }
}
