//! §7-style what-if grounded in measurement: blocking vs polled miss
//! service.
//!
//! The serving layer's load generator emits `BENCH_server.json` with a
//! `miss_service` block (wire-level latency of device-served GETs) and an
//! `io_depth` block (achieved device queue depth). This module *consumes*
//! those measured numbers in the cost model: the ratio of measured miss
//! service time to raw device latency is the queueing expansion a miss
//! suffers on its way through the shard, and it inflates the paper's `R`
//! factor (§2.1) the same way a slow I/O path does in Figure 7. Rendering
//! Figure-1-style relative-performance curves at the sync-measured and
//! async-measured effective `R` shows what the polled engine buys in the
//! model's own currency, not just in latency histograms.
//!
//! The JSON consumed here is the hand-emitted format of
//! `dcs-server::BenchReport::to_json`; the tiny extractor below leans on
//! that known shape (top-level `io_depth`/`miss_service` precede the
//! per-shard arrays) rather than being a general JSON parser.

use crate::figures::{linspace, Series};
use crate::mixed;

/// The slice of a `BENCH_server.json` document this figure consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct MissServiceMeasurement {
    /// `"sync"` (blocking miss path) or `"async"` (parked-miss path).
    pub miss_mode: String,
    /// Injected device read latency, nanoseconds (`--device-latency`).
    pub device_latency_nanos: u64,
    /// Completed wire operations per second.
    pub throughput_ops_per_sec: f64,
    /// Device-served GETs observed across all shards.
    pub misses: u64,
    /// High-water mark of concurrently parked misses on any shard.
    pub parked_peak: u64,
    /// Mean wire-level latency of a device-served GET, microseconds.
    pub miss_mean_us: f64,
    /// p95 wire-level latency of a device-served GET, microseconds.
    pub miss_p95_us: f64,
    /// Worst per-shard p95 of memory-served GETs, microseconds — the
    /// latency hits pay while misses are in flight on the same shard.
    pub hit_p95_us: f64,
    /// Mean achieved device queue depth while any I/O was outstanding.
    pub io_depth_mean: f64,
    /// Peak achieved device queue depth.
    pub io_depth_max: u64,
}

impl MissServiceMeasurement {
    /// Queueing expansion of a miss: measured mean service time over the
    /// raw device read latency. 1.0 means misses ran at device speed;
    /// a blocking path serving a burst of `k` misses approaches
    /// `(k + 1) / 2`. Falls back to 1.0 when the report carries no
    /// injected latency or no misses.
    pub fn expansion(&self) -> f64 {
        let device_us = self.device_latency_nanos as f64 / 1000.0;
        if device_us <= 0.0 || self.misses == 0 || self.miss_mean_us <= 0.0 {
            return 1.0;
        }
        (self.miss_mean_us / device_us).max(1.0)
    }

    /// The paper's `R` adjusted by the measured queueing expansion:
    /// what an SS operation *actually* cost in this run, relative to an
    /// MM operation, given `r_device` for an unqueued device read.
    pub fn effective_r(&self, r_device: f64) -> f64 {
        r_device * self.expansion()
    }
}

/// Measured sync-over-async improvement on the p95 of miss service.
pub fn p95_speedup(sync: &MissServiceMeasurement, asynch: &MissServiceMeasurement) -> f64 {
    if asynch.miss_p95_us <= 0.0 {
        return 1.0;
    }
    sync.miss_p95_us / asynch.miss_p95_us
}

/// The figure: relative performance vs SS-fraction `F` (Equation 2) at
/// the ideal `R` and at the effective `R` measured under each miss mode.
/// The polled engine's curve sits between the ideal and the blocking
/// curve; the gap at the run's actual `F` is the modelled cost of
/// serving misses one at a time.
pub fn miss_service_curves(
    r_device: f64,
    sync: &MissServiceMeasurement,
    asynch: &MissServiceMeasurement,
    samples: usize,
) -> Vec<Series> {
    let xs = linspace(0.0, 1.0, samples);
    let ideal = r_device;
    let r_sync = sync.effective_r(r_device);
    let r_async = asynch.effective_r(r_device);
    vec![
        Series::sample(format!("ideal device (R = {ideal:.1})"), &xs, move |f| {
            mixed::relative_performance(f, ideal)
        }),
        Series::sample(
            format!("polled miss service (R = {r_async:.1})"),
            &xs,
            move |f| mixed::relative_performance(f, r_async),
        ),
        Series::sample(
            format!("blocking miss service (R = {r_sync:.1})"),
            &xs,
            move |f| mixed::relative_performance(f, r_sync),
        ),
    ]
}

/// Pull one measurement out of a `BENCH_server.json` document.
///
/// Returns `None` when a required field is missing or malformed — e.g.
/// a report from a build predating the async engine.
pub fn parse_bench_server(json: &str) -> Option<MissServiceMeasurement> {
    let miss_mode = string_field(json, "miss_mode")?;
    let device_latency_nanos = number_field(json, "device_latency_nanos")? as u64;
    let throughput_ops_per_sec = number_field(json, "throughput_ops_per_sec")?;

    // Top-level blocks come before the `ops`/`shards_detail` arrays, so
    // the first occurrence of each key is the aggregate one.
    let io_depth = object_after(json, "io_depth")?;
    let io_depth_mean = number_field(io_depth, "mean")?;
    let io_depth_max = number_field(io_depth, "max")? as u64;

    let miss_service = object_after(json, "miss_service")?;
    let misses = number_field(miss_service, "misses")? as u64;
    let parked_peak = number_field(miss_service, "parked_peak")? as u64;
    let miss_mean_us = number_field(miss_service, "mean_us")?;
    let miss_p95_us = number_field(miss_service, "p95_us")?;

    // Memory-served GET latency lives per shard; take the worst p95.
    let mut hit_p95_us: f64 = 0.0;
    let mut rest = json;
    while let Some(block) = object_after(rest, "read_latency") {
        hit_p95_us = hit_p95_us.max(number_field(block, "p95_us")?);
        rest = &rest[rest.find("\"read_latency\"")? + "\"read_latency\"".len()..];
    }

    Some(MissServiceMeasurement {
        miss_mode,
        device_latency_nanos,
        throughput_ops_per_sec,
        misses,
        parked_peak,
        miss_mean_us,
        miss_p95_us,
        hit_p95_us,
        io_depth_mean,
        io_depth_max,
    })
}

/// The text after `"key":`, trimmed, or `None` if the key is absent.
pub(crate) fn after_key<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = doc.find(&needle)?;
    let rest = doc[at + needle.len()..].trim_start();
    let rest = rest.strip_prefix(':')?;
    Some(rest.trim_start())
}

/// First number after `"key":`.
pub(crate) fn number_field(doc: &str, key: &str) -> Option<f64> {
    let rest = after_key(doc, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '-' || c == '+' || c == '.' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First quoted string after `"key":`. The emitter escapes quotes, so a
/// bare `"` terminates the value.
pub(crate) fn string_field(doc: &str, key: &str) -> Option<String> {
    let rest = after_key(doc, key)?.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The balanced `{...}` object after `"key":`.
pub(crate) fn object_after<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let rest = after_key(doc, key)?;
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trimmed-down document in the exact shape `BenchReport::to_json`
    /// emits (same key order, same nesting).
    fn doc(mode: &str, miss_mean: f64, miss_p95: f64, depth_mean: f64) -> String {
        format!(
            r#"{{
  "bench": "server",
  "backend": "caching",
  "mode": "open",
  "miss_mode": "{mode}",
  "device_latency_nanos": 400000,
  "throughput_ops_per_sec": 2900.123,
  "io_depth": {{"samples": 120, "mean": {depth_mean}, "max": 9, "buckets": [[1, 100], [2, 20]]}},
  "miss_service": {{"misses": 500, "parked_peak": 8, "latency": {{"count": 500, "mean_us": {miss_mean}, "p50_us": 400.0, "p95_us": {miss_p95}, "p99_us": 5000.0, "max_us": 6000.0}}}},
  "ops": [
    {{"kind": "get", "count": 4000, "busy": 0, "errors": 0, "latency": {{"count": 4000, "mean_us": 90.0, "p50_us": 80.0, "p95_us": 700.0, "p99_us": 900.0, "max_us": 1000.0}}}}
  ],
  "shards_detail": [
    {{"shard": 0, "misses": 250, "parked_peak": 8, "read_latency": {{"count": 1700, "mean_us": 50.0, "p50_us": 40.0, "p95_us": 120.0, "p99_us": 150.0, "max_us": 200.0}}, "write_latency": {{"count": 0, "mean_us": 0.0, "p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0, "max_us": 0.0}}, "miss_service": {{"count": 250, "mean_us": {miss_mean}, "p50_us": 400.0, "p95_us": {miss_p95}, "p99_us": 5000.0, "max_us": 6000.0}}}},
    {{"shard": 1, "misses": 250, "parked_peak": 5, "read_latency": {{"count": 1700, "mean_us": 55.0, "p50_us": 45.0, "p95_us": 129.0, "p99_us": 160.0, "max_us": 210.0}}, "write_latency": {{"count": 0, "mean_us": 0.0, "p50_us": 0.0, "p95_us": 0.0, "p99_us": 0.0, "max_us": 0.0}}, "miss_service": {{"count": 250, "mean_us": {miss_mean}, "p50_us": 400.0, "p95_us": {miss_p95}, "p99_us": 5000.0, "max_us": 6000.0}}}}
  ]
}}
"#
        )
    }

    #[test]
    fn parses_the_report_shape() {
        let m = parse_bench_server(&doc("async", 900.0, 2218.0, 1.276)).unwrap();
        assert_eq!(m.miss_mode, "async");
        assert_eq!(m.device_latency_nanos, 400_000);
        assert_eq!(m.misses, 500);
        assert_eq!(m.parked_peak, 8);
        assert!((m.miss_mean_us - 900.0).abs() < 1e-9);
        assert!((m.miss_p95_us - 2218.0).abs() < 1e-9);
        assert!((m.io_depth_mean - 1.276).abs() < 1e-9);
        assert_eq!(m.io_depth_max, 9);
        // Worst shard p95, not the first one.
        assert!((m.hit_p95_us - 129.0).abs() < 1e-9);
        assert!((m.throughput_ops_per_sec - 2900.123).abs() < 1e-6);
    }

    #[test]
    fn rejects_reports_without_the_new_fields() {
        assert!(parse_bench_server("{\"bench\": \"server\"}").is_none());
    }

    #[test]
    fn expansion_inflates_r_for_the_blocking_mode() {
        // Device read is 400 µs; blocking misses averaged 1600 µs
        // (4× queueing expansion), polled misses 480 µs (1.2×).
        let sync = parse_bench_server(&doc("sync", 1600.0, 4503.0, 1.001)).unwrap();
        let asynch = parse_bench_server(&doc("async", 480.0, 2218.0, 1.276)).unwrap();
        assert!((sync.expansion() - 4.0).abs() < 1e-9);
        assert!((asynch.expansion() - 1.2).abs() < 1e-9);
        assert!(sync.effective_r(10.0) > asynch.effective_r(10.0));
        assert!(p95_speedup(&sync, &asynch) > 2.0);
    }

    #[test]
    fn curves_order_ideal_above_polled_above_blocking() {
        let sync = parse_bench_server(&doc("sync", 1600.0, 4503.0, 1.001)).unwrap();
        let asynch = parse_bench_server(&doc("async", 480.0, 2218.0, 1.276)).unwrap();
        let curves = miss_service_curves(10.0, &sync, &asynch, 21);
        assert_eq!(curves.len(), 3);
        // Skip F = 0 where all three coincide at 1.0.
        for i in 1..21 {
            let (ideal, polled, blocking) = (
                curves[0].points[i].1,
                curves[1].points[i].1,
                curves[2].points[i].1,
            );
            assert!(
                ideal >= polled && polled > blocking,
                "at F = {}: ideal {ideal}, polled {polled}, blocking {blocking}",
                curves[0].points[i].0
            );
        }
    }

    #[test]
    fn zero_injected_latency_degrades_to_the_ideal_curve() {
        let mut m = parse_bench_server(&doc("async", 480.0, 2218.0, 1.276)).unwrap();
        m.device_latency_nanos = 0;
        assert!((m.expansion() - 1.0).abs() < 1e-9);
        assert!((m.effective_r(9.0) - 9.0).abs() < 1e-9);
    }
}
