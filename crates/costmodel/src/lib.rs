//! The cost/performance model of Lomet, *Cost/Performance in Modern Data
//! Stores: How Data Caching Systems Succeed* (DaMoN'18).
//!
//! This crate is the paper's primary contribution in executable form. It
//! captures:
//!
//! * **The two operation forms** (§2.1): main-memory (MM) operations on
//!   cached data, and secondary-storage (SS) operations that must perform a
//!   read I/O, costing `R` times the CPU of an MM operation.
//! * **Mixed-workload performance** (§2.2, Equations 1–3 / Figure 1):
//!   throughput of a workload with SS-fraction `F`, and the inversion that
//!   derives `R` from measured throughputs.
//! * **Operation costs** (§3, Equations 4–5 / Figure 2): storage rent plus
//!   execution rent for MM and SS operations, given a hardware catalog.
//! * **The updated five-minute rule** (§4.2, Equation 6): the breakeven
//!   access interval `Ti` (≈45 s on the paper's 2018 hardware) beyond which
//!   a page is cheaper on flash.
//! * **Main-memory vs caching stores** (§5, Equations 7–8 / Figure 3):
//!   breakeven between the Bw-tree and MassTree given measured performance
//!   gain `Px` and memory expansion `Mx`.
//! * **I/O-path and compression what-ifs** (§7, Figures 7–8): how shrinking
//!   the I/O execution path or adding a compressed-storage tier moves the
//!   cost curves.
//! * **Technology what-ifs** (§8.2–8.3, [`technology`]): NVRAM as an
//!   intermediate tier and the HDD arithmetic behind "disk is tape".
//!
//! All monetary quantities are in dollars; the common lifetime factor `1/L`
//! is dropped throughout (§3.2) because only relative costs matter.
//!
//! ```
//! use dcs_costmodel::{HardwareCatalog, breakeven};
//!
//! let hw = HardwareCatalog::paper();
//! let ti = breakeven::ti_seconds(&hw);
//! assert!((40.0..50.0).contains(&ti), "the paper derives Ti ≈ 45 s");
//! ```

pub mod accounting;
pub mod breakeven;
pub mod catalog;
pub mod curves;
pub mod figures;
pub mod miss_service;
pub mod mixed;
pub mod mrc_cost;
pub mod mm_vs_caching;
pub mod render;
pub mod technology;

pub use catalog::HardwareCatalog;
pub use figures::{Point, Series};
