//! Operation cost curves: Equations 4–5 (Figure 2), the I/O-path what-if
//! (Figure 7), and the compressed-storage tier (Figure 8).

use crate::catalog::HardwareCatalog;

/// Equation 4 (lifetime factor dropped): cost/sec of keeping a page in
/// DRAM and serving `n` MM operations/sec on it.
pub fn mm_cost(hw: &HardwareCatalog, n: f64) -> f64 {
    hw.mm_storage_cost() + n * hw.mm_exec_cost()
}

/// Equation 5: cost/sec of keeping a page on flash only and serving `n`
/// SS operations/sec on it.
pub fn ss_cost(hw: &HardwareCatalog, n: f64) -> f64 {
    hw.ss_storage_cost() + n * hw.ss_exec_cost()
}

/// Parameters of the compressed-secondary-storage tier (Figure 8; the
/// paper's numbers are "hypothetical", so these are knobs).
#[derive(Debug, Clone, Copy)]
pub struct CompressionModel {
    /// Compressed size / uncompressed size (< 1).
    pub ratio: f64,
    /// Extra CPU per operation for decompression, as a multiple of the MM
    /// execution cost.
    pub cpu_overhead: f64,
}

impl Default for CompressionModel {
    fn default() -> Self {
        CompressionModel {
            ratio: 0.35,
            cpu_overhead: 2.0,
        }
    }
}

/// Cost/sec of a compressed secondary-storage (CSS) operation tier
/// (Figure 8): storage shrinks by `ratio`, execution grows by the
/// decompression CPU.
pub fn css_cost(hw: &HardwareCatalog, n: f64, c: &CompressionModel) -> f64 {
    hw.ss_storage_cost() * c.ratio + n * (hw.ss_exec_cost() + c.cpu_overhead * hw.mm_exec_cost())
}

/// The access rate at which MM and SS costs cross (the breakeven `N` of
/// §4.2; its reciprocal is `Ti`).
pub fn mm_ss_crossover_rate(hw: &HardwareCatalog) -> f64 {
    // Ps·$M = N·[$I/IOPS + (R-1)·$P/ROPS]  (Equation 6 rearranged)
    let storage_gap = hw.page_bytes * hw.dram_per_byte;
    let exec_gap = hw.ss_exec_cost() - hw.mm_exec_cost();
    storage_gap / exec_gap
}

/// The access rate at which CSS and SS costs cross: below it, compressed
/// storage is cheaper.
pub fn css_ss_crossover_rate(hw: &HardwareCatalog, c: &CompressionModel) -> f64 {
    // SS storage saving vs decompression CPU.
    let storage_gap = hw.ss_storage_cost() * (1.0 - c.ratio);
    let exec_gap = c.cpu_overhead * hw.mm_exec_cost();
    storage_gap / exec_gap
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareCatalog {
        HardwareCatalog::paper()
    }

    #[test]
    fn at_zero_rate_ss_is_cheaper() {
        // §4.2: at low rates storage dominates and flash wins (≈11×).
        assert!(ss_cost(&hw(), 0.0) < mm_cost(&hw(), 0.0));
    }

    #[test]
    fn at_high_rate_mm_is_cheaper() {
        assert!(mm_cost(&hw(), 1000.0) < ss_cost(&hw(), 1000.0));
    }

    #[test]
    fn crossover_equalizes_costs() {
        let n = mm_ss_crossover_rate(&hw());
        let (m, s) = (mm_cost(&hw(), n), ss_cost(&hw(), n));
        assert!(
            (m - s).abs() / m < 1e-9,
            "costs differ at crossover: {m} vs {s}"
        );
    }

    #[test]
    fn crossover_is_about_45s_interval() {
        let n = mm_ss_crossover_rate(&hw());
        let ti = 1.0 / n;
        assert!((40.0..50.0).contains(&ti), "Ti = {ti}, paper says ≈45 s");
    }

    #[test]
    fn shorter_io_path_moves_crossover_left() {
        // Figure 7: reducing SS execution cost lowers breakeven Ti.
        let fast = hw(); // R = 5.8 (user-level I/O)
        let slow = hw().with_r(9.0); // conventional OS path
        let ti_fast = 1.0 / mm_ss_crossover_rate(&fast);
        let ti_slow = 1.0 / mm_ss_crossover_rate(&slow);
        assert!(
            ti_fast < ti_slow,
            "shorter path should shrink Ti: {ti_fast} vs {ti_slow}"
        );
        // And lowers the SS cost line everywhere with traffic.
        for n in [0.1, 1.0, 10.0] {
            assert!(ss_cost(&fast, n) < ss_cost(&slow, n));
        }
    }

    #[test]
    fn compression_cheapest_when_cold_most_expensive_when_hot() {
        // Figure 8: CSS < SS < MM at rate ~0; order reverses as rate grows.
        let c = CompressionModel::default();
        let h = hw();
        assert!(css_cost(&h, 0.0, &c) < ss_cost(&h, 0.0));
        assert!(ss_cost(&h, 0.0) < mm_cost(&h, 0.0));
        let hot = 10_000.0;
        assert!(mm_cost(&h, hot) < ss_cost(&h, hot));
        assert!(ss_cost(&h, hot) < css_cost(&h, hot, &c));
    }

    #[test]
    fn css_crossover_equalizes() {
        let c = CompressionModel::default();
        let h = hw();
        let n = css_ss_crossover_rate(&h, &c);
        let (a, b) = (css_cost(&h, n, &c), ss_cost(&h, n));
        assert!((a - b).abs() / a < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn css_crossover_below_mm_crossover() {
        // The three-regime picture requires CSS→SS to happen at a lower
        // rate than SS→MM.
        let c = CompressionModel::default();
        let h = hw();
        assert!(css_ss_crossover_rate(&h, &c) < mm_ss_crossover_rate(&h));
    }
}
