//! Pricing real runs: apply the paper's cost algebra to *measured*
//! operation counts and storage occupancy, so whole executions — not just
//! single operations — can be compared in dollars.
//!
//! This is what a cache-management policy is ultimately judged by in the
//! paper: total rent (DRAM + flash over the run's duration) plus total
//! execution cost (processor per op, I/O capability per SS op). The
//! lifetime factor is dropped as everywhere else, so values are
//! comparable *between runs*, not absolute prices.

use crate::catalog::HardwareCatalog;
use serde::{Deserialize, Serialize};

/// Measured facts about one run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunProfile {
    /// Virtual duration of the run in seconds.
    pub duration_secs: f64,
    /// Time-averaged DRAM occupancy in bytes.
    pub avg_dram_bytes: f64,
    /// Time-averaged flash occupancy in bytes (durable copies).
    pub avg_flash_bytes: f64,
    /// Operations served from memory.
    pub mm_ops: u64,
    /// Operations that performed secondary-storage I/O.
    pub ss_ops: u64,
}

/// Cost breakdown of a run (same implicit `1/L` as the rest of the model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCost {
    /// DRAM rent over the duration.
    pub dram_rent: f64,
    /// Flash rent over the duration.
    pub flash_rent: f64,
    /// Processor cost of the MM operations.
    pub mm_exec: f64,
    /// Processor + I/O-capability cost of the SS operations.
    pub ss_exec: f64,
}

impl RunCost {
    /// Total run cost.
    pub fn total(&self) -> f64 {
        self.dram_rent + self.flash_rent + self.mm_exec + self.ss_exec
    }

    /// Cost per operation.
    pub fn per_op(&self, profile: &RunProfile) -> f64 {
        let ops = profile.mm_ops + profile.ss_ops;
        if ops == 0 {
            0.0
        } else {
            self.total() / ops as f64
        }
    }
}

/// Price a run under a catalog.
pub fn price_run(hw: &HardwareCatalog, p: &RunProfile) -> RunCost {
    RunCost {
        dram_rent: p.avg_dram_bytes * hw.dram_per_byte * p.duration_secs,
        flash_rent: p.avg_flash_bytes * hw.flash_per_byte * p.duration_secs,
        mm_exec: p.mm_ops as f64 * hw.mm_exec_cost(),
        ss_exec: p.ss_ops as f64 * hw.ss_exec_cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareCatalog {
        HardwareCatalog::paper()
    }

    fn profile(dram: f64, mm: u64, ss: u64) -> RunProfile {
        RunProfile {
            duration_secs: 1000.0,
            avg_dram_bytes: dram,
            avg_flash_bytes: 1e9,
            mm_ops: mm,
            ss_ops: ss,
        }
    }

    #[test]
    fn components_sum() {
        let c = price_run(&hw(), &profile(1e9, 500, 500));
        assert!((c.total() - (c.dram_rent + c.flash_rent + c.mm_exec + c.ss_exec)).abs() < 1e-15);
    }

    #[test]
    fn cold_run_cheaper_on_flash() {
        // Few ops: the all-DRAM run pays rent for nothing.
        let in_dram = price_run(&hw(), &profile(1e9, 100, 0));
        let on_flash = price_run(&hw(), &profile(0.0, 0, 100));
        assert!(on_flash.total() < in_dram.total());
    }

    #[test]
    fn hot_run_cheaper_in_dram() {
        let in_dram = price_run(&hw(), &profile(1e9, 100_000_000, 0));
        let on_flash = price_run(&hw(), &profile(0.0, 0, 100_000_000));
        assert!(in_dram.total() < on_flash.total());
    }

    #[test]
    fn agrees_with_equations_4_and_5_per_page() {
        // A run of one page at N ops/sec for one second = Eq. 4 / Eq. 5.
        let h = hw();
        let n = 0.5;
        let mm_run = price_run(
            &h,
            &RunProfile {
                duration_secs: 1.0,
                avg_dram_bytes: h.page_bytes,
                avg_flash_bytes: h.page_bytes,
                mm_ops: 0,
                ss_ops: 0,
            },
        );
        // Storage part matches Eq. 4's storage term; execution added per op.
        let eq4_storage = h.mm_storage_cost();
        assert!((mm_run.total() - eq4_storage).abs() < 1e-18);
        let full = crate::curves::mm_cost(&h, n);
        let run = mm_run.total() + n * h.mm_exec_cost();
        assert!((full - run).abs() < 1e-18);
    }

    #[test]
    fn per_op_handles_empty_runs() {
        let p = profile(0.0, 0, 0);
        assert_eq!(price_run(&hw(), &p).per_op(&p), 0.0);
    }
}
