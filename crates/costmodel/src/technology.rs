//! §8.2–8.3 technology what-ifs: NVRAM as an intermediate tier, and why
//! hard disks stopped being a caching-store medium.
//!
//! The paper discusses both qualitatively; this module makes them
//! computable with the same cost algebra as Equations 4–6, so the claims
//! ("fetching data from NVRAM has much lower cost … than an SS operation",
//! "HDDs cannot compete with flash drives", "disk is tape") can be checked
//! against any catalog.

use crate::catalog::HardwareCatalog;

/// An NVRAM technology point: §8.2 expects cost and performance *between*
/// DRAM and flash, with persistence.
#[derive(Debug, Clone, Copy)]
pub struct NvramModel {
    /// NVRAM cost per byte (between `$M` and `$Fl`).
    pub per_byte: f64,
    /// CPU-cost ratio of an NVRAM-resident operation to an MM operation.
    /// Loads cross no I/O stack, so this is small (≈1–3), far below the
    /// SS operation's R.
    pub r_nvram: f64,
}

impl NvramModel {
    /// A mid-point guess consistent with §8.2's qualitative placement:
    /// ~4× cheaper than DRAM, ~2.5× DRAM's access cost.
    pub fn between() -> Self {
        NvramModel {
            per_byte: 1.25e-9,
            r_nvram: 2.5,
        }
    }
}

/// Cost/sec of keeping a page in NVRAM and serving `n` ops/sec on it.
/// No flash copy is needed: NVRAM is itself persistent (§8.2).
pub fn nvram_cost(hw: &HardwareCatalog, nv: &NvramModel, n: f64) -> f64 {
    hw.page_bytes * nv.per_byte + n * nv.r_nvram * hw.mm_exec_cost()
}

/// Access rate above which DRAM beats NVRAM for a page.
pub fn nvram_mm_crossover_rate(hw: &HardwareCatalog, nv: &NvramModel) -> f64 {
    // Storage gap: DRAM+flash rent minus NVRAM rent. Execution gap:
    // NVRAM's extra CPU per op.
    let storage_gap = hw.mm_storage_cost() - hw.page_bytes * nv.per_byte;
    let exec_gap = (nv.r_nvram - 1.0) * hw.mm_exec_cost();
    storage_gap / exec_gap
}

/// Access rate above which NVRAM beats flash (SS operations) for a page.
pub fn ss_nvram_crossover_rate(hw: &HardwareCatalog, nv: &NvramModel) -> f64 {
    let storage_gap = hw.page_bytes * (nv.per_byte - hw.flash_per_byte);
    let exec_gap = hw.ss_exec_cost() - nv.r_nvram * hw.mm_exec_cost();
    storage_gap / exec_gap
}

/// An HDD technology point (§8.3).
#[derive(Debug, Clone, Copy)]
pub struct HddModel {
    /// Disk cost per byte.
    pub per_byte: f64,
    /// Cost of the drive's I/O capability.
    pub iops_capability: f64,
    /// Maximum I/O operations per second.
    pub iops: f64,
}

impl HddModel {
    /// §8.3's "best of them": 200 IOPS, ~5 ms latency, pricey per IOPS.
    pub fn performance_2018() -> Self {
        HddModel {
            per_byte: 0.03e-9,
            iops_capability: 100.0,
            iops: 200.0,
        }
    }

    /// §8.3's commodity drive: ~100 IOPS, 10 ms latency.
    pub fn commodity_2018() -> Self {
        HddModel {
            per_byte: 0.02e-9,
            iops_capability: 50.0,
            iops: 100.0,
        }
    }
}

/// A catalog whose secondary storage is this HDD instead of flash. The
/// breakeven interval (Equation 6) then tells the Gray-era story: with
/// HDD IOPS this scarce, pages must be *very* cold before eviction pays.
pub fn catalog_with_hdd(hw: &HardwareCatalog, hdd: &HddModel) -> HardwareCatalog {
    HardwareCatalog {
        flash_per_byte: hdd.per_byte,
        iops_capability: hdd.iops_capability,
        iops: hdd.iops,
        ..hw.clone()
    }
}

/// §8.3's saturation arithmetic: the throughput (ops/sec) a store can
/// sustain before a device with `iops` I/O capacity saturates, at SS
/// fraction `f`.
pub fn iops_bound_throughput(iops: f64, f: f64) -> f64 {
    if f <= 0.0 {
        f64::INFINITY
    } else {
        iops / f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breakeven;
    use crate::curves;

    fn hw() -> HardwareCatalog {
        HardwareCatalog::paper()
    }

    #[test]
    fn nvram_sits_between_dram_and_flash_when_cold() {
        let nv = NvramModel::between();
        let h = hw();
        let cold = 0.0;
        let nvram = nvram_cost(&h, &nv, cold);
        assert!(curves::ss_cost(&h, cold) < nvram, "flash cheapest cold");
        assert!(nvram < curves::mm_cost(&h, cold), "NVRAM under DRAM cold");
    }

    #[test]
    fn nvram_fetch_far_cheaper_than_ss_op() {
        // §8.2: "fetching data from NVRAM has much lower cost and
        // performance impact than an SS operation which needs I/O."
        let nv = NvramModel::between();
        let h = hw();
        let nvram_exec = nv.r_nvram * h.mm_exec_cost();
        assert!(nvram_exec < h.ss_exec_cost() / 3.0);
    }

    #[test]
    fn three_tier_crossovers_are_ordered() {
        // cold → flash, middle → NVRAM, hot → DRAM.
        let nv = NvramModel::between();
        let h = hw();
        let ss_nv = ss_nvram_crossover_rate(&h, &nv);
        let nv_mm = nvram_mm_crossover_rate(&h, &nv);
        assert!(ss_nv > 0.0 && nv_mm > 0.0);
        assert!(
            ss_nv < nv_mm,
            "NVRAM band must be non-empty: {ss_nv} vs {nv_mm}"
        );
    }

    #[test]
    fn hdd_breakeven_is_hours_not_seconds() {
        // §8.3 / Gray: with 100–200 IOPS, the breakeven interval balloons —
        // the 5-minute rule was derived when I/O was this scarce (and DRAM
        // pricier still).
        let h = catalog_with_hdd(&hw(), &HddModel::performance_2018());
        let ti = breakeven::ti_seconds(&h);
        let flash_ti = breakeven::ti_seconds(&hw());
        assert!(
            ti > 10.0 * flash_ti,
            "HDD Ti {ti} should dwarf flash Ti {flash_ti}"
        );
    }

    #[test]
    fn hdd_saturates_at_tiny_throughput() {
        // §8.3: "even less than a small fraction of 1 % of operations
        // needing to access secondary storage quickly saturates an HDD."
        let bound = iops_bound_throughput(HddModel::performance_2018().iops, 0.005);
        assert!(bound < 1e5, "HDD-bound throughput {bound} ops/sec");
        // Whereas the paper's SSD at the same miss rate supports millions.
        let ssd_bound = iops_bound_throughput(hw().iops, 0.005);
        assert!(ssd_bound >= 4e7);
    }

    #[test]
    fn unbounded_when_no_misses() {
        assert!(iops_bound_throughput(200.0, 0.0).is_infinite());
    }
}
