//! The updated five-minute rule: Equation 6 (§4.2).

use crate::catalog::HardwareCatalog;

/// Equation 6: the breakeven access interval `Ti` in seconds.
///
/// `Ti = (1 / ($M·Ps)) · [ $I/IOPS + (R-1)·$P/ROPS ]`
///
/// A page accessed less often than once per `Ti` is cheaper to evict and
/// serve with SS operations; more often, cheaper to cache in DRAM. On the
/// paper's hardware this comes out ≈45 s — the "updated 5-minute rule",
/// shrunk by cheap SSD IOPS but *lengthened* by the CPU cost of the I/O
/// path, which the paper adds to Gray's classic trade-off.
pub fn ti_seconds(hw: &HardwareCatalog) -> f64 {
    let io_term = hw.iops_capability / hw.iops;
    let cpu_term = (hw.r - 1.0) * hw.processor / hw.rops;
    (io_term + cpu_term) / (hw.dram_per_byte * hw.page_bytes)
}

/// The breakeven access *rate* (ops/sec), `N = 1/Ti`.
pub fn breakeven_rate(hw: &HardwareCatalog) -> f64 {
    1.0 / ti_seconds(hw)
}

/// Record-level breakeven (§6.3): when the cacheable unit is a record of
/// `record_bytes` rather than a whole page, the storage term shrinks and
/// `Ti` grows proportionally — with 10 records per page, breakeven is 10×
/// longer, widening the range where memory wins.
pub fn ti_seconds_for_record(hw: &HardwareCatalog, record_bytes: f64) -> f64 {
    ti_seconds(&hw.with_page_bytes(record_bytes))
}

/// Split `Ti` into its two additive components (both in seconds): the
/// classic I/O-cost term and the paper's additional CPU-path term.
pub fn ti_components(hw: &HardwareCatalog) -> (f64, f64) {
    let denom = hw.dram_per_byte * hw.page_bytes;
    (
        (hw.iops_capability / hw.iops) / denom,
        ((hw.r - 1.0) * hw.processor / hw.rops) / denom,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ti_is_about_45_seconds() {
        let ti = ti_seconds(&HardwareCatalog::paper());
        assert!((45.0 - ti).abs() < 1.0, "Ti = {ti}, paper derives ≈45 s");
    }

    #[test]
    fn components_sum_to_ti() {
        let hw = HardwareCatalog::paper();
        let (io, cpu) = ti_components(&hw);
        assert!((io + cpu - ti_seconds(&hw)).abs() < 1e-9);
        // §4.2: the CPU term now dominates the I/O term on modern SSDs.
        assert!(cpu > io, "cpu {cpu} should exceed io {io}");
    }

    #[test]
    fn record_breakeven_scales_inversely_with_size() {
        // §6.3: "when there are 10 records in a page, the record breakeven
        // Ti = 10x minutes instead of about one minute for the page".
        let hw = HardwareCatalog::paper();
        let page_ti = ti_seconds(&hw);
        let record_ti = ti_seconds_for_record(&hw, hw.page_bytes / 10.0);
        assert!(
            (record_ti / page_ti - 10.0).abs() < 1e-9,
            "record Ti should be 10x page Ti"
        );
    }

    #[test]
    fn breakeven_rate_is_reciprocal() {
        let hw = HardwareCatalog::paper();
        assert!((breakeven_rate(&hw) * ti_seconds(&hw) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ti_matches_curve_crossover() {
        let hw = HardwareCatalog::paper();
        let from_curves = 1.0 / crate::curves::mm_ss_crossover_rate(&hw);
        assert!((from_curves - ti_seconds(&hw)).abs() < 1e-9);
    }

    #[test]
    fn cheaper_iops_shrink_ti() {
        // §7.1.2: a 40 % drop in IOPS cost shrinks the breakeven interval.
        let hw = HardwareCatalog::paper();
        let cheaper = HardwareCatalog {
            iops: hw.iops * 500.0 / 300.0, // 300K → 500K IOPS at same price
            ..hw.clone()
        };
        assert!(ti_seconds(&cheaper) < ti_seconds(&hw));
    }
}
