//! Marginal cost-per-byte from a measured miss-ratio curve.
//!
//! The paper's breakeven rule (Equation 6) prices one *page* by its
//! individual access interval. A miss-ratio curve prices the *next byte
//! of budget* for a whole consumer: if growing a cache from `b` to `b'`
//! bytes drops the miss ratio from `m` to `m'`, the saved execution rent
//! is `A · (m − m') · ($SS − $MM)` for access rate `A` — every converted
//! miss stops paying the SS execution premium — and the added storage
//! rent is `(b' − b) · $M`. The cache should grow while the former
//! exceeds the latter; dividing both by `Δbytes` gives a *marginal value
//! per byte* directly comparable to the DRAM price per byte, which is
//! how "Breaking Down Memory Walls" (PAPERS.md) arbitrates memory
//! between consumers.
//!
//! All quantities stay in the paper's §3 algebra: dollars of
//! infrastructure with the common lifetime factor `1/L` dropped, so
//! `access_rate` must be in the same sustained ops/s the execution
//! rents (`$P/ROPS`-style) are quoted against. Only relative prices
//! matter, exactly as in the rest of the crate.

use crate::catalog::HardwareCatalog;

/// One input point of a measured miss-ratio curve: at a cache budget of
/// `bytes`, the consumer misses `miss_ratio` of its accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MrcCurvePoint {
    /// Cache budget in bytes.
    pub bytes: f64,
    /// Miss ratio in `[0, 1]` at that budget.
    pub miss_ratio: f64,
}

/// The priced interval between two adjacent curve points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarginalPoint {
    /// Budget at the *upper* end of the interval.
    pub bytes: f64,
    /// Miss ratio at the upper end of the interval.
    pub miss_ratio: f64,
    /// Execution rent saved per extra byte across this interval:
    /// `A · Δmiss · ($SS − $MM) / Δbytes`.
    pub marginal_value_per_byte: f64,
    /// What the extra byte costs: the DRAM price `$M`.
    pub dram_price_per_byte: f64,
}

impl MarginalPoint {
    /// Net benefit per byte: positive means the next byte of DRAM pays
    /// for itself.
    pub fn net_per_byte(&self) -> f64 {
        self.marginal_value_per_byte - self.dram_price_per_byte
    }
}

/// Price every interval of a miss-ratio curve.
///
/// `curve` must be sorted by `bytes` ascending (as MRC snapshots are);
/// zero-width intervals are skipped. Returns one [`MarginalPoint`] per
/// interval, labelled with the interval's upper budget.
pub fn marginal_curve(
    hw: &HardwareCatalog,
    access_rate: f64,
    curve: &[MrcCurvePoint],
) -> Vec<MarginalPoint> {
    let premium = hw.ss_exec_cost() - hw.mm_exec_cost();
    let mut out = Vec::new();
    for pair in curve.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        let dbytes = hi.bytes - lo.bytes;
        if dbytes <= 0.0 {
            continue;
        }
        // Monotone non-increasing curves make this non-negative; a noisy
        // estimate can locally invert, which prices as zero value rather
        // than negative (shrinking the cache is priced by the *other*
        // side of the interval).
        let dmiss = (lo.miss_ratio - hi.miss_ratio).max(0.0);
        out.push(MarginalPoint {
            bytes: hi.bytes,
            miss_ratio: hi.miss_ratio,
            marginal_value_per_byte: access_rate * dmiss * premium / dbytes,
            dram_price_per_byte: hw.dram_per_byte,
        });
    }
    out
}

/// Price the marginal byte *at* a given budget: the curve interval
/// containing `budget_bytes` (the first interval whose upper end reaches
/// it, or the last interval when the budget lies past the curve).
/// Returns `None` for curves with fewer than two distinct points.
pub fn marginal_at(
    hw: &HardwareCatalog,
    access_rate: f64,
    curve: &[MrcCurvePoint],
    budget_bytes: f64,
) -> Option<MarginalPoint> {
    let priced = marginal_curve(hw, access_rate, curve);
    priced
        .iter()
        .find(|p| p.bytes >= budget_bytes)
        .or(priced.last())
        .copied()
}

/// The largest curve budget whose marginal byte still pays for itself —
/// where the measured curve says this consumer's cache should stop
/// growing. Returns the curve's smallest budget when no interval breaks
/// even.
pub fn recommended_bytes(
    hw: &HardwareCatalog,
    access_rate: f64,
    curve: &[MrcCurvePoint],
) -> f64 {
    let floor = curve.first().map_or(0.0, |p| p.bytes);
    marginal_curve(hw, access_rate, curve)
        .iter()
        .filter(|p| p.net_per_byte() >= 0.0)
        .map(|p| p.bytes)
        .fold(floor, f64::max)
}

/// Analytic miss ratio for a Zipf(θ) popularity law when the `cached`
/// hottest of `records` equally-sized items are resident: the tail mass
/// `1 − Σ_{i≤c} i^{−θ} / Σ_{i≤K} i^{−θ}`, with the partial sums taken in
/// closed form (`(x^{1−θ} − 1)/(1 − θ)`, or `ln x` at θ = 1). This is
/// the frequency-optimal placement the paper's record-cache argument
/// assumes, so it lower-bounds what an LRU-ish cache can measure; the
/// gap between this prediction and the live SHARDS curve is the figure.
pub fn zipf_miss_ratio(theta: f64, records: f64, cached: f64) -> f64 {
    if records < 1.0 {
        return 0.0;
    }
    let cached = cached.clamp(1.0, records);
    let mass = |x: f64| {
        if (theta - 1.0).abs() < 1e-9 {
            x.ln() + 1.0
        } else {
            (x.powf(1.0 - theta) - 1.0) / (1.0 - theta) + 1.0
        }
    };
    (1.0 - mass(cached) / mass(records)).clamp(0.0, 1.0)
}

/// One consumer's measured curve as read back out of the `mrc` block of
/// a `BENCH_server.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct MrcMeasured {
    /// Profiler name (`mrc.record_cache`, ...).
    pub consumer: String,
    /// Accesses observed by the profiler.
    pub accesses: u64,
    /// Configured spatial sampling rate.
    pub sample_rate: f64,
    /// Mean entity size over sampled accesses, bytes.
    pub mean_entity_bytes: f64,
    /// The measured curve, bytes ascending.
    pub points: Vec<MrcCurvePoint>,
    /// The loadgen's own break-even budget for this consumer.
    pub recommended_bytes: f64,
}

/// The slice of a `BENCH_server.json` the MRC figure consumes. `None`
/// when the report has no `mrc` block or it was written with
/// `--mrc off` (`"enabled": false`).
pub fn parse_bench_mrc(json: &str) -> Option<Vec<MrcMeasured>> {
    use crate::miss_service::{after_key, number_field, object_after, string_field};
    let block = object_after(json, "mrc")?;
    if !after_key(block, "enabled")?.starts_with("true") {
        return None;
    }
    let mut out = Vec::new();
    // Each element of `consumers` opens with its `"consumer"` key, so
    // occurrences of that key delimit the per-consumer segments.
    let mut rest = block;
    while let Some(at) = rest.find("\"consumer\"") {
        let seg = &rest[at..];
        let end = seg[1..]
            .find("\"consumer\"")
            .map_or(seg.len(), |next| next + 1);
        let seg = &seg[..end];
        let points = array_after(seg, "points")?;
        out.push(MrcMeasured {
            consumer: string_field(seg, "consumer")?,
            accesses: number_field(seg, "accesses")? as u64,
            sample_rate: number_field(seg, "sample_rate")?,
            mean_entity_bytes: number_field(seg, "mean_entity_bytes")?,
            points: parse_point_pairs(points),
            recommended_bytes: number_field(seg, "recommended_bytes")?,
        });
        rest = &rest[at + end..];
    }
    Some(out)
}

/// The balanced `[...]` array after `"key":`.
fn array_after<'a>(doc: &'a str, key: &str) -> Option<&'a str> {
    let rest = crate::miss_service::after_key(doc, key)?;
    if !rest.starts_with('[') {
        return None;
    }
    let mut depth = 0usize;
    for (i, c) in rest.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&rest[..=i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Parse `[[bytes, ratio], ...]` — the emitter writes plain numbers, so
/// splitting on brackets and commas suffices.
fn parse_point_pairs(array: &str) -> Vec<MrcCurvePoint> {
    let mut out = Vec::new();
    for pair in array.split('[').skip(2) {
        let body = pair.split(']').next().unwrap_or("");
        let mut nums = body.split(',').filter_map(|n| n.trim().parse::<f64>().ok());
        if let (Some(bytes), Some(miss_ratio)) = (nums.next(), nums.next()) {
            out.push(MrcCurvePoint { bytes, miss_ratio });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_model_endpoints_and_skew() {
        // Full residency misses nothing; a single resident record
        // misses everything but the head's mass.
        assert!(zipf_miss_ratio(0.99, 10_000.0, 10_000.0) < 1e-9);
        assert!(zipf_miss_ratio(0.99, 10_000.0, 1.0) > 0.85);
        // More skew concentrates mass: at the same 1% residency a
        // hotter law misses less.
        let flat = zipf_miss_ratio(0.5, 10_000.0, 100.0);
        let hot = zipf_miss_ratio(1.2, 10_000.0, 100.0);
        assert!(hot < flat, "hot {hot} vs flat {flat}");
        // θ = 1 takes the logarithmic branch without blowing up.
        let unit = zipf_miss_ratio(1.0, 10_000.0, 100.0);
        assert!(unit > 0.0 && unit < 1.0);
    }

    #[test]
    fn parses_the_mrc_block_shape() {
        // The exact shape `BenchReport::to_json` emits for `mrc`.
        let doc = r#"{
  "telemetry": {"reconciled": true},
  "mrc": {"enabled": true, "budget_bytes": 262144.000, "flight_out": "F.json", "triggers": ["busy spike"], "consumers": [
    {"consumer": "mrc.record_cache", "accesses": 17929, "sampled": 170, "sample_rate": 0.010000, "mean_entity_bytes": 108.000, "points": [[25811.765, 0.808746], [1651952.941, 0.312343]], "marginal": {"value_per_byte": 5.273683e-6, "dram_price_per_byte": 5.000000e-9, "net_per_byte": 5.268683e-6}, "recommended_bytes": 825976.471},
    {"consumer": "mrc.page_cache", "accesses": 17929, "sampled": 60, "sample_rate": 0.010000, "mean_entity_bytes": 51200.000, "points": [[51200.000, 0.128284]], "marginal": {"value_per_byte": 0.000000e0, "dram_price_per_byte": 5.000000e-9, "net_per_byte": -5.000000e-9}, "recommended_bytes": 102400.000}
  ]},
  "ops": []
}"#;
        let consumers = parse_bench_mrc(doc).unwrap();
        assert_eq!(consumers.len(), 2);
        assert_eq!(consumers[0].consumer, "mrc.record_cache");
        assert_eq!(consumers[0].accesses, 17_929);
        assert_eq!(consumers[0].points.len(), 2);
        assert!((consumers[0].points[1].bytes - 1_651_952.941).abs() < 1e-6);
        assert!((consumers[0].points[1].miss_ratio - 0.312343).abs() < 1e-9);
        assert!((consumers[0].recommended_bytes - 825_976.471).abs() < 1e-6);
        assert_eq!(consumers[1].consumer, "mrc.page_cache");
        assert_eq!(consumers[1].points.len(), 1);
    }

    #[test]
    fn mrc_block_disabled_or_absent_is_none() {
        assert!(parse_bench_mrc(r#"{"ops": []}"#).is_none());
        let off = r#"{"mrc": {"enabled": false, "budget_bytes": 0.000, "flight_out": "", "triggers": [], "consumers": []}}"#;
        assert!(parse_bench_mrc(off).is_none());
    }

    fn steep_then_flat() -> Vec<MrcCurvePoint> {
        vec![
            MrcCurvePoint {
                bytes: 1e6,
                miss_ratio: 0.9,
            },
            MrcCurvePoint {
                bytes: 2e6,
                miss_ratio: 0.2,
            },
            // Essentially flat: 1e-4 of misses over 2 MB. At the paper's
            // prices DRAM is so cheap per byte that even mildly sloped
            // tails pay for themselves; only a truly flat tail does not.
            MrcCurvePoint {
                bytes: 4e6,
                miss_ratio: 0.1999,
            },
        ]
    }

    #[test]
    fn marginal_value_matches_hand_calculation() {
        let hw = HardwareCatalog::paper();
        let priced = marginal_curve(&hw, 1e4, &steep_then_flat());
        assert_eq!(priced.len(), 2);
        // First interval: 1e4 ops/s * 0.7 dmiss * premium / 1e6 bytes.
        let premium = hw.ss_exec_cost() - hw.mm_exec_cost();
        let want = 1e4 * 0.7 * premium / 1e6;
        assert!((priced[0].marginal_value_per_byte - want).abs() < 1e-15);
        assert_eq!(priced[0].dram_price_per_byte, hw.dram_per_byte);
    }

    #[test]
    fn steep_interval_beats_dram_flat_interval_does_not() {
        let hw = HardwareCatalog::paper();
        let priced = marginal_curve(&hw, 1e4, &steep_then_flat());
        assert!(
            priced[0].net_per_byte() > 0.0,
            "steep miss cliff must justify DRAM: {priced:?}"
        );
        assert!(
            priced[1].net_per_byte() < 0.0,
            "flat tail must not justify DRAM: {priced:?}"
        );
    }

    #[test]
    fn recommended_budget_stops_at_the_cliff() {
        let hw = HardwareCatalog::paper();
        let rec = recommended_bytes(&hw, 1e4, &steep_then_flat());
        assert_eq!(rec, 2e6);
        // A consumer with negligible traffic should not grow at all.
        let idle = recommended_bytes(&hw, 1e-3, &steep_then_flat());
        assert_eq!(idle, 1e6);
    }

    #[test]
    fn marginal_at_picks_the_containing_interval() {
        let hw = HardwareCatalog::paper();
        let curve = steep_then_flat();
        let at = marginal_at(&hw, 1e4, &curve, 1.5e6).unwrap();
        assert_eq!(at.bytes, 2e6);
        // Past the curve end: priced by the last interval.
        let past = marginal_at(&hw, 1e4, &curve, 1e9).unwrap();
        assert_eq!(past.bytes, 4e6);
        assert!(marginal_at(&hw, 1e4, &curve[..1], 1e6).is_none());
    }

    #[test]
    fn noisy_inversion_prices_as_zero_not_negative() {
        let hw = HardwareCatalog::paper();
        let noisy = vec![
            MrcCurvePoint {
                bytes: 1e6,
                miss_ratio: 0.5,
            },
            MrcCurvePoint {
                bytes: 2e6,
                miss_ratio: 0.51,
            },
        ];
        let priced = marginal_curve(&hw, 1e4, &noisy);
        assert_eq!(priced[0].marginal_value_per_byte, 0.0);
    }

    #[test]
    fn zero_width_intervals_are_skipped() {
        let hw = HardwareCatalog::paper();
        let dup = vec![
            MrcCurvePoint {
                bytes: 1e6,
                miss_ratio: 0.5,
            },
            MrcCurvePoint {
                bytes: 1e6,
                miss_ratio: 0.4,
            },
            MrcCurvePoint {
                bytes: 2e6,
                miss_ratio: 0.3,
            },
        ];
        assert_eq!(marginal_curve(&hw, 1e4, &dup).len(), 1);
    }
}
