//! Mixed-workload performance: Equations 1–3 and Figure 1 (§2.2).

/// Equation 2: throughput with SS-fraction `f`, relative to `p0` (the
/// all-MM throughput), when an SS operation costs `r` times the CPU of an
/// MM operation.
pub fn pf(p0: f64, f: f64, r: f64) -> f64 {
    p0 * relative_performance(f, r)
}

/// Equation 2 normalized: `PF / P0 = 1 / ((1-F) + F·R)`.
pub fn relative_performance(f: f64, r: f64) -> f64 {
    assert!((0.0..=1.0).contains(&f), "F is a fraction, got {f}");
    assert!(r >= 1.0, "R < 1 means SS is cheaper than MM: {r}");
    1.0 / ((1.0 - f) + f * r)
}

/// Equation 3: derive `R` from a measured pair `(P0, PF)` at SS-fraction
/// `f`. Returns `None` when `f == 0` (no SS operations: R unobservable).
pub fn derive_r(p0: f64, pf: f64, f: f64) -> Option<f64> {
    if f <= 0.0 {
        return None;
    }
    Some(1.0 + (1.0 / f) * (p0 / pf - 1.0))
}

/// The Figure 1 band: relative performance at `f` for `R = r_mid ± tol`
/// (the paper uses 5.8 ± 30 %). Returns `(low_curve, mid, high_curve)`
/// where `low_curve` is the *slower* (higher-R) bound.
pub fn band(f: f64, r_mid: f64, tol: f64) -> (f64, f64, f64) {
    let hi_r = r_mid * (1.0 + tol);
    let lo_r = (r_mid * (1.0 - tol)).max(1.0);
    (
        relative_performance(f, hi_r),
        relative_performance(f, r_mid),
        relative_performance(f, lo_r),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ss_ops_means_full_speed() {
        assert_eq!(relative_performance(0.0, 5.8), 1.0);
    }

    #[test]
    fn all_ss_ops_means_one_over_r() {
        // §2.2: "At a cache miss ratio of 1, the Bw-tree runs at 1/R of
        // in-memory performance".
        let r = 5.8;
        assert!((relative_performance(1.0, r) - 1.0 / r).abs() < 1e-12);
    }

    #[test]
    fn performance_declines_monotonically() {
        let mut prev = f64::INFINITY;
        for i in 0..=100 {
            let f = i as f64 / 100.0;
            let p = relative_performance(f, 5.8);
            assert!(p < prev, "not monotone at f={f}");
            prev = p;
        }
    }

    #[test]
    fn eq3_inverts_eq2() {
        // R derived from Eq-2-generated throughputs must round-trip.
        for &r in &[1.0, 2.0, 5.8, 9.0, 20.0] {
            for &f in &[0.01, 0.1, 0.5, 0.9, 1.0] {
                let p0 = 4e6;
                let pf = pf(p0, f, r);
                let derived = derive_r(p0, pf, f).expect("f > 0");
                assert!(
                    (derived - r).abs() < 1e-6,
                    "roundtrip failed: r={r} f={f} derived={derived}"
                );
            }
        }
    }

    #[test]
    fn derive_r_rejects_zero_f() {
        assert_eq!(derive_r(1e6, 1e6, 0.0), None);
    }

    #[test]
    fn band_orders_correctly() {
        let (lo, mid, hi) = band(0.5, 5.8, 0.3);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn half_misses_at_paper_r() {
        // With R = 5.8, a 50 % miss ratio runs at 1/3.4 of full speed.
        let rel = relative_performance(0.5, 5.8);
        assert!((rel - 1.0 / 3.4).abs() < 1e-9, "rel {rel}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn fraction_out_of_range_panics() {
        relative_performance(1.5, 5.8);
    }
}
