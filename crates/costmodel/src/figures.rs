//! Figure-series builders: the exact data series behind each figure of the
//! paper, ready for the reproduction harness to print or plot.

use crate::catalog::HardwareCatalog;
use crate::curves::{css_cost, mm_cost, ss_cost, CompressionModel};
use crate::mixed;
use crate::mm_vs_caching::{bwtree_cost, masstree_cost, Comparison};

/// An `(x, y)` sample.
pub type Point = (f64, f64);

/// A named data series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Samples in x order.
    pub points: Vec<Point>,
}

impl Series {
    /// Build from a function sampled at `xs`.
    pub fn sample(label: impl Into<String>, xs: &[f64], f: impl Fn(f64) -> f64) -> Self {
        Series {
            label: label.into(),
            points: xs.iter().map(|&x| (x, f(x))).collect(),
        }
    }

    /// The x of the first sample where this series drops below `other`
    /// (linear interpolation between samples). `None` if it never does.
    pub fn crossover_with(&self, other: &Series) -> Option<f64> {
        for (a, b) in self.points.iter().zip(self.points.iter().skip(1)) {
            let oa = other.points.iter().find(|p| p.0 == a.0)?;
            let ob = other.points.iter().find(|p| p.0 == b.0)?;
            let d0 = a.1 - oa.1;
            let d1 = b.1 - ob.1;
            if d0.signum() != d1.signum() {
                let t = d0 / (d0 - d1);
                return Some(a.0 + t * (b.0 - a.0));
            }
        }
        None
    }
}

/// Evenly spaced values in `[lo, hi]`.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Log-spaced values in `[lo, hi]` (both > 0).
pub fn logspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2);
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// Figure 1: relative performance vs SS-fraction, as the `R ± tol` band.
/// Returns `[R_high (slow bound), R_mid, R_low (fast bound)]`.
pub fn fig1_band(r_mid: f64, tol: f64, samples: usize) -> Vec<Series> {
    let xs = linspace(0.0, 1.0, samples);
    vec![
        Series::sample(
            format!("R = {:.2} (slow bound)", r_mid * (1.0 + tol)),
            &xs,
            |f| mixed::band(f, r_mid, tol).0,
        ),
        Series::sample(format!("R = {r_mid:.2}"), &xs, |f| {
            mixed::band(f, r_mid, tol).1
        }),
        Series::sample(
            format!("R = {:.2} (fast bound)", r_mid * (1.0 - tol)),
            &xs,
            |f| mixed::band(f, r_mid, tol).2,
        ),
    ]
}

/// Figure 2: MM and SS operation cost vs access rate (log-spaced).
pub fn fig2_curves(
    hw: &HardwareCatalog,
    lo_rate: f64,
    hi_rate: f64,
    samples: usize,
) -> Vec<Series> {
    let xs = logspace(lo_rate, hi_rate, samples);
    vec![
        Series::sample("MM op cost", &xs, |n| mm_cost(hw, n)),
        Series::sample("SS op cost", &xs, |n| ss_cost(hw, n)),
    ]
}

/// Figure 3: Bw-tree vs MassTree cost vs access rate for a database of
/// `size` bytes.
pub fn fig3_curves(
    hw: &HardwareCatalog,
    cmp: &Comparison,
    size: f64,
    lo_rate: f64,
    hi_rate: f64,
    samples: usize,
) -> Vec<Series> {
    let xs = logspace(lo_rate, hi_rate, samples);
    vec![
        Series::sample("Bw-tree (fully cached)", &xs, |n| bwtree_cost(hw, size, n)),
        Series::sample("MassTree", &xs, |n| masstree_cost(hw, size, n, cmp)),
    ]
}

/// Figure 7: SS cost at several I/O execution-path lengths (as `R` values),
/// plus the MM line.
pub fn fig7_curves(
    hw: &HardwareCatalog,
    rs: &[f64],
    lo_rate: f64,
    hi_rate: f64,
    samples: usize,
) -> Vec<Series> {
    let xs = logspace(lo_rate, hi_rate, samples);
    let mut out = vec![Series::sample("MM op cost", &xs, |n| mm_cost(hw, n))];
    for &r in rs {
        let h = hw.with_r(r);
        out.push(Series::sample(
            format!("SS op cost (R = {r:.2})"),
            &xs,
            move |n| ss_cost(&h, n),
        ));
    }
    out
}

/// Figure 8: MM / SS / CSS cost curves.
pub fn fig8_curves(
    hw: &HardwareCatalog,
    c: &CompressionModel,
    lo_rate: f64,
    hi_rate: f64,
    samples: usize,
) -> Vec<Series> {
    let xs = logspace(lo_rate, hi_rate, samples);
    vec![
        Series::sample("MM op cost", &xs, |n| mm_cost(hw, n)),
        Series::sample("SS op cost", &xs, |n| ss_cost(hw, n)),
        Series::sample("CSS op cost (compressed)", &xs, |n| css_cost(hw, n, c)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linspace_endpoints() {
        let xs = linspace(0.0, 1.0, 11);
        assert_eq!(xs.len(), 11);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[10], 1.0);
    }

    #[test]
    fn logspace_is_geometric() {
        let xs = logspace(1.0, 100.0, 3);
        assert!((xs[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fig1_band_shape() {
        let series = fig1_band(5.8, 0.3, 21);
        assert_eq!(series.len(), 3);
        // At F=0 all curves start at 1.0.
        for s in &series {
            assert!((s.points[0].1 - 1.0).abs() < 1e-12);
        }
        // Slow bound below mid below fast bound at F=1.
        let at_one: Vec<f64> = series.iter().map(|s| s.points.last().unwrap().1).collect();
        assert!(at_one[0] < at_one[1] && at_one[1] < at_one[2]);
    }

    #[test]
    fn fig2_crossover_matches_equation6() {
        let hw = HardwareCatalog::paper();
        let curves = fig2_curves(&hw, 1e-3, 1.0, 400);
        let x = curves[0].crossover_with(&curves[1]).expect("curves cross");
        let expected = crate::curves::mm_ss_crossover_rate(&hw);
        assert!(
            (x - expected).abs() / expected < 0.05,
            "series crossover {x} vs analytic {expected}"
        );
    }

    #[test]
    fn fig3_masstree_wins_only_when_hot() {
        let hw = HardwareCatalog::paper();
        let cmp = Comparison::paper();
        let curves = fig3_curves(&hw, &cmp, 6.1e9, 1e4, 1e7, 100);
        let bw = &curves[0];
        let mt = &curves[1];
        assert!(bw.points[0].1 < mt.points[0].1, "cold: Bw-tree cheaper");
        assert!(
            mt.points.last().unwrap().1 < bw.points.last().unwrap().1,
            "hot: MassTree cheaper"
        );
        let x = mt.crossover_with(bw).expect("cross");
        assert!((x - 0.73e6).abs() / 0.73e6 < 0.1, "crossover {x}");
    }

    #[test]
    fn fig7_lower_r_lower_curves() {
        let hw = HardwareCatalog::paper();
        let curves = fig7_curves(&hw, &[9.0, 5.8], 1e-3, 1.0, 50);
        // curves[1] = R 9, curves[2] = R 5.8.
        for (a, b) in curves[1].points.iter().zip(curves[2].points.iter()) {
            assert!(b.1 <= a.1, "R=5.8 should never cost more");
        }
    }

    #[test]
    fn fig8_three_regimes() {
        let hw = HardwareCatalog::paper();
        let c = CompressionModel::default();
        let curves = fig8_curves(&hw, &c, 1e-4, 100.0, 200);
        let (mm, ss, css) = (&curves[0], &curves[1], &curves[2]);
        // Coldest point: CSS < SS < MM.
        assert!(css.points[0].1 < ss.points[0].1 && ss.points[0].1 < mm.points[0].1);
        // Hottest point: MM < SS < CSS.
        let last = curves
            .iter()
            .map(|s| s.points.last().unwrap().1)
            .collect::<Vec<_>>();
        assert!(last[0] < last[1] && last[1] < last[2]);
    }
}
