//! The classic comparator: a fixed-block page store.
//!
//! §6.1 contrasts LLAMA's log-structured store with a "conventional
//! fixed block store": every page flush writes a full block-aligned page
//! with its own I/O, regardless of how many bytes changed or how full the
//! page is. This implements that baseline over the same simulated device,
//! so the write-reduction experiment compares like with like.

use dcs_bwtree::{PageId, PageImage, PageStore, StoreError};
use dcs_flashsim::{DeviceError, FlashDevice};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed-block page store: one device I/O per page write, each padded to
/// `block_bytes`. No incremental (delta) writes: a delta flush rewrites the
/// whole page.
pub struct FixedBlockStore {
    device: Arc<FlashDevice>,
    block_bytes: usize,
    images: Mutex<HashMap<u64, PageImage>>,
    next_token: AtomicU64,
    /// Logical page bytes accepted (for amplification accounting).
    payload_bytes: AtomicU64,
}

impl FixedBlockStore {
    /// A store writing `block_bytes` blocks to `device`.
    pub fn new(device: Arc<FlashDevice>, block_bytes: usize) -> Self {
        FixedBlockStore {
            device,
            block_bytes,
            images: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(0),
            payload_bytes: AtomicU64::new(0),
        }
    }

    /// Payload bytes accepted so far.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes.load(Ordering::Relaxed)
    }

    /// The device underneath.
    pub fn device(&self) -> &Arc<FlashDevice> {
        &self.device
    }
}

impl PageStore for FixedBlockStore {
    fn write(&self, _pid: PageId, image: &PageImage, prev: Option<u64>) -> Result<u64, StoreError> {
        // A fixed-block store cannot store deltas: materialize the full
        // page state first.
        let full = match (image.is_delta, prev) {
            (false, _) => image.clone(),
            (true, Some(p)) => {
                let mut base = self
                    .images
                    .lock()
                    .get(&p)
                    .cloned()
                    .ok_or(StoreError::UnknownToken(p))?;
                base.apply_delta(image);
                base
            }
            (true, None) => return Err(StoreError::Io("delta write without a base".into())),
        };
        let raw = full.serialize();
        self.payload_bytes
            .fetch_add(raw.len() as u64, Ordering::Relaxed);
        // Pad to the block size: the write amplification of fixed blocks.
        let mut block = raw;
        if block.len() < self.block_bytes {
            block.resize(self.block_bytes, 0);
        }
        self.device.append(&block).map_err(dev_err)?;
        let token = self.next_token.fetch_add(1, Ordering::SeqCst);
        self.images.lock().insert(token, full);
        Ok(token)
    }

    fn fetch(&self, _pid: PageId, token: u64) -> Result<PageImage, StoreError> {
        // Charge a device read of one block (the image itself is kept in a
        // side map for simplicity; the I/O accounting is what the
        // experiment measures).
        let img = self
            .images
            .lock()
            .get(&token)
            .cloned()
            .ok_or(StoreError::UnknownToken(token))?;
        let addr = dcs_flashsim::FlashAddress {
            segment: 0,
            offset: 0,
        };
        // Read block_bytes from segment 0 if anything was written there;
        // ignore failures on an empty device (fetch of a never-written
        // token is already rejected above).
        let _ = self
            .device
            .read(addr, self.block_bytes.min(self.device.segment_written(0)));
        Ok(img)
    }
}

fn dev_err(e: DeviceError) -> StoreError {
    match e {
        DeviceError::Full => StoreError::Full,
        other => StoreError::Io(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dcs_flashsim::DeviceConfig;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn every_write_is_one_block_io() {
        let device = Arc::new(FlashDevice::new(DeviceConfig {
            segment_count: 256,
            ..DeviceConfig::small_test()
        }));
        let s = FixedBlockStore::new(device.clone(), 4096);
        for pid in 0..10u64 {
            let img = PageImage::base(vec![(b("k"), b("tiny"))], None, None);
            s.write(pid, &img, None).unwrap();
        }
        let st = device.stats();
        assert_eq!(st.writes, 10, "one I/O per page write");
        assert_eq!(st.bytes_written, 10 * 4096, "blocks are padded");
    }

    #[test]
    fn delta_writes_rewrite_whole_pages() {
        let device = Arc::new(FlashDevice::new(DeviceConfig::small_test()));
        let s = FixedBlockStore::new(device.clone(), 4096);
        let base = PageImage::base(vec![(b("a"), b("1"))], None, None);
        let t0 = s.write(1, &base, None).unwrap();
        let delta = PageImage::delta(vec![dcs_bwtree::DeltaOp::Put(b("b"), b("2"))], None, None);
        let t1 = s.write(1, &delta, Some(t0)).unwrap();
        assert_eq!(device.stats().bytes_written, 2 * 4096);
        let img = s.fetch(1, t1).unwrap();
        assert_eq!(img.entries.len(), 2);
    }
}
