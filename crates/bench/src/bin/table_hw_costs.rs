//! §4.1: the hardware-cost catalog — the paper's values side by side with
//! quantities measured on this substrate (prices are taken from the paper;
//! only performance quantities can be measured here).
//!
//! Run with: `cargo run --release -p dcs-bench --bin table_hw_costs`

use dcs_bench::{load_tree, OpTimer};
use dcs_costmodel::{breakeven, render, HardwareCatalog};
use dcs_flashsim::IoPathKind;
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let paper = HardwareCatalog::paper();

    println!("measuring this substrate (Bw-tree + LLAMA + simulated SSD) ...\n");
    let t = load_tree(100_000, 100, IoPathKind::UserLevel);

    // ROPS: warm uniform reads, one core.
    let mut rng = SmallRng::seed_from_u64(5);
    let mut timer = OpTimer::new();
    for _ in 0..30_000u64 {
        let key = keys::encode(rng.gen_range(0..t.records));
        timer.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    let rops = timer.ops_per_sec();

    // R: SS-op rate against the same MM rate.
    let mut ss_timer = OpTimer::new();
    for _ in 0..2_000u64 {
        let key = keys::encode(rng.gen_range(0..t.records));
        let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        let _ = t.tree.get(&key);
    }
    for _ in 0..15_000u64 {
        let key = keys::encode(rng.gen_range(0..t.records));
        let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        ss_timer.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    let r = rops / ss_timer.ops_per_sec();

    // Ps: average in-memory leaf payload.
    let leaves: Vec<_> = t.tree.pages().into_iter().filter(|p| p.is_leaf).collect();
    let ps = leaves.iter().map(|p| p.mem_bytes).sum::<usize>() as f64 / leaves.len() as f64;

    // The device's configured IOPS (the simulated drive's rating).
    let iops = t.device.config().max_iops;

    let measured = HardwareCatalog {
        rops,
        r,
        page_bytes: ps,
        iops,
        ..paper.clone()
    };

    println!("== §4.1 hardware catalog: paper vs this substrate ==");
    let rows = vec![
        vec![
            "$M (DRAM $/byte)".into(),
            format!("{:.1e}", paper.dram_per_byte),
            "(price: taken from paper)".into(),
        ],
        vec![
            "$Fl (flash $/byte)".into(),
            format!("{:.1e}", paper.flash_per_byte),
            "(price: taken from paper)".into(),
        ],
        vec![
            "$P (processor $)".into(),
            format!("{}", paper.processor),
            "(price: taken from paper)".into(),
        ],
        vec![
            "$I (SSD IOPS capability $)".into(),
            format!("{}", paper.iops_capability),
            "(price: taken from paper)".into(),
        ],
        vec![
            "ROPS (MM reads/sec/core)".into(),
            format!("{:.1e}", paper.rops),
            format!("{rops:.3e} measured"),
        ],
        vec![
            "IOPS (device max)".into(),
            format!("{:.1e}", paper.iops),
            format!("{iops:.1e} simulated rating"),
        ],
        vec![
            "Ps (avg page bytes)".into(),
            format!("{:.2e}", paper.page_bytes),
            format!("{ps:.0} measured"),
        ],
        vec![
            "R (SS/MM CPU ratio)".into(),
            format!("{}", paper.r),
            format!("{r:.2} measured"),
        ],
    ];
    print!(
        "{}",
        render::table(&["quantity", "paper (2018)", "this substrate"], &rows)
    );

    println!("\n== derived breakeven (Equation 6) ==");
    println!(
        "paper catalog:     Ti = {:.1} s  (the paper's ≈45 s)",
        breakeven::ti_seconds(&paper)
    );
    println!(
        "measured catalog:  Ti = {:.1} s  (paper prices, this substrate's ROPS/R/Ps)",
        breakeven::ti_seconds(&measured)
    );
    println!("\nNote the paper's own caveat: prices vary widely; what the analysis");
    println!("needs is their ratios, which drift slowly.");
}
