//! Ablation: what does the cache-management policy actually cost?
//!
//! The paper's thesis is that a caching store *choosing by the cost model*
//! beats both fixed extremes. This harness runs the same skewed workload
//! under four policies and prices each run with the paper's cost algebra
//! (`dcs_costmodel::accounting`):
//!
//!   * all-DRAM   — never evict (a main-memory store's storage bill)
//!   * all-flash  — evict everything, always (maximum SS execution bill)
//!   * LRU        — classic budget-driven caching
//!   * cost-model — evict exactly at the Equation 6 breakeven Ti
//!
//! Run with: `cargo run --release -p dcs-bench --bin ablation_policy`

use dcs_core::costmodel::accounting::{price_run, RunProfile};
use dcs_core::costmodel::{breakeven, render, HardwareCatalog};
use dcs_core::workload::{keys, KeyDist};
use dcs_core::{Policy, StoreBuilder};

const RECORDS: u64 = 30_000;
const OPS: u64 = 60_000;
/// Virtual operation rate (ops per virtual second): low enough that the
/// cold tail sits past the 45 s breakeven while the hot head stays hot.
const RATE: f64 = 25.0;

struct PolicyRun {
    label: &'static str,
    profile: RunProfile,
    f: f64,
}

fn run(label: &'static str, policy: Option<Policy>, budget: usize) -> PolicyRun {
    let mut b = StoreBuilder::small_test();
    b.memory_budget = budget;
    b.sweep_every_ops = 512;
    if let Some(p) = policy {
        b.policy = p;
    } else {
        b.sweep_every_ops = 0; // all-DRAM: no sweeps at all
    }
    let store = b.build();
    for (k, v) in (0..RECORDS).map(|id| (keys::encode(id).to_vec(), keys::value_for(id, 0, 100))) {
        store.put(k, v);
    }
    store.checkpoint().expect("checkpoint");
    // Time starts now: the load phase is not billed.
    let mut zipf = KeyDist::zipfian(0.99).sampler(RECORDS, 11);
    let gap = (1e9 / RATE) as u64;
    let stats0 = store.stats();
    let mut dram_samples: Vec<f64> = Vec::new();
    for i in 0..OPS {
        let id = zipf.next_key();
        std::hint::black_box(store.get(&keys::encode(id)));
        store.advance_time(gap);
        if i % 1024 == 0 {
            dram_samples.push(store.stats().footprint_bytes as f64);
        }
    }
    let stats1 = store.stats();
    let tree = stats1.tree.delta(&stats0.tree);
    let duration_secs = OPS as f64 / RATE;
    let avg_dram = dram_samples.iter().sum::<f64>() / dram_samples.len() as f64;
    PolicyRun {
        label,
        profile: RunProfile {
            duration_secs,
            avg_dram_bytes: avg_dram,
            // Every record has a durable copy (checkpointed before timing).
            avg_flash_bytes: (RECORDS * 112) as f64,
            mm_ops: tree.mm_ops,
            ss_ops: tree.ss_ops,
        },
        f: tree.ss_fraction(),
    }
}

fn main() {
    let hw = HardwareCatalog::paper();
    let ti = breakeven::ti_seconds(&hw);
    println!(
        "workload: zipfian(0.99) reads over {RECORDS} records at {RATE} virtual ops/sec\n\
         (mean per-page interval ≈ {:.0} s vs breakeven Ti = {ti:.0} s: the tail is cold,\n\
         the head is hot — the regime where policy choice matters)\n",
        RECORDS as f64 / 36.0 / RATE
    );

    let runs = vec![
        run("all-DRAM (never evict)", None, usize::MAX),
        run("all-flash (budget 0)", Some(Policy::Lru), 0),
        run(
            "LRU (budget = 1/4 data)",
            Some(Policy::Lru),
            (RECORDS as usize * 112) / 4,
        ),
        run(
            "cost-model (evict at Ti)",
            Some(Policy::CostModel),
            usize::MAX,
        ),
    ];

    let mut rows = Vec::new();
    let mut best = (f64::INFINITY, "");
    for r in &runs {
        let cost = price_run(&hw, &r.profile);
        let per_op = cost.per_op(&r.profile);
        if per_op < best.0 {
            best = (per_op, r.label);
        }
        rows.push(vec![
            r.label.to_string(),
            format!("{:.0}", r.profile.avg_dram_bytes / 1024.0),
            format!("{:.4}", r.f),
            render::format_sig(cost.dram_rent),
            render::format_sig(cost.ss_exec),
            render::format_sig(cost.total()),
            render::format_sig(per_op),
        ]);
    }
    print!(
        "{}",
        render::table(
            &[
                "policy",
                "avg DRAM KiB",
                "F",
                "DRAM rent",
                "SS exec $",
                "total $·(1/L)",
                "$/op"
            ],
            &rows
        )
    );
    println!(
        "\ncheapest: {} at {} per op",
        best.1,
        render::format_sig(best.0)
    );
    println!("\nThe fixed extremes each overpay on one axis — all-DRAM on storage");
    println!("rent, all-flash on SS execution. The adaptive policies land between,");
    println!("holding hot pages and shedding the cold tail; the cost-model policy");
    println!("needs no tuned budget, only the hardware catalog (§3, §4.2).");
}
