//! §6.1: how log-structuring reduces writes.
//!
//! Runs the same update-heavy flush workload against LLAMA's
//! log-structured store and against a classic fixed-block store, counting
//! device write I/Os and bytes. Separately quantifies the two §6.1
//! savings: variable-size pages (no padding to a block) and delta-only
//! flushes (only updates travel once a base is stored).
//!
//! Run with: `cargo run --release -p dcs-bench --bin sec6_write_reduction`

use bytes::Bytes;
use dcs_bench::FixedBlockStore;
use dcs_bwtree::{BwTree, BwTreeConfig, FlushKind, PageStore};
use dcs_costmodel::render;
use dcs_flashsim::{DeviceConfig, FlashDevice, IoPathKind, VirtualClock};
use dcs_llama::{LogStructuredStore, LssConfig};
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const RECORDS: u64 = 20_000;
const ROUNDS: u32 = 10;
const UPDATES_PER_ROUND: u64 = 2_000;

fn device() -> Arc<FlashDevice> {
    Arc::new(FlashDevice::with_clock(
        DeviceConfig {
            segment_bytes: 1 << 20,
            segment_count: 4096,
            advance_clock_on_io: false,
            io_path: IoPathKind::Free.model(),
            ..DeviceConfig::paper_ssd()
        },
        VirtualClock::new(),
    ))
}

struct RunResult {
    write_ios: u64,
    bytes_written: u64,
    logical_updates: u64,
    full_flushes: u64,
    incremental_flushes: u64,
}

fn run(store: Arc<dyn PageStore>, dev: Arc<FlashDevice>) -> RunResult {
    let tree = BwTree::with_store(BwTreeConfig::default(), store);
    for id in 0..RECORDS {
        tree.put(
            Bytes::copy_from_slice(&keys::encode(id)),
            Bytes::from(keys::value_for(id, 0, 100)),
        );
    }
    let mut rng = SmallRng::seed_from_u64(9);
    let mut updates = 0u64;
    for round in 0..ROUNDS {
        for _ in 0..UPDATES_PER_ROUND {
            let id = rng.gen_range(0..RECORDS);
            tree.put(
                Bytes::copy_from_slice(&keys::encode(id)),
                Bytes::from(keys::value_for(id, round + 1, 100)),
            );
            updates += 1;
        }
        // Checkpoint every round: flush all dirty pages.
        for p in tree.pages() {
            if p.is_leaf && p.dirty {
                let _ = tree.flush_page(p.pid, FlushKind::FlushOnly);
            }
        }
    }
    let stats = dev.stats();
    let tstats = tree.stats();
    RunResult {
        write_ios: stats.writes,
        bytes_written: stats.bytes_written,
        logical_updates: updates,
        full_flushes: tstats.full_flushes,
        incremental_flushes: tstats.incremental_flushes,
    }
}

fn main() {
    println!(
        "workload: {RECORDS} records loaded, then {ROUNDS} rounds of {UPDATES_PER_ROUND} \
         random updates,\neach round followed by a full checkpoint\n"
    );

    let dev_lss = device();
    let lss = Arc::new(LogStructuredStore::new(
        dev_lss.clone(),
        LssConfig {
            flush_buffer_bytes: 512 << 10,
            ..LssConfig::default()
        },
    ));
    let lss_result = run(lss.clone(), dev_lss);
    let lss_stats = lss.stats();

    let dev_fixed = device();
    let fixed = Arc::new(FixedBlockStore::new(dev_fixed.clone(), 4096));
    let fixed_result = run(fixed.clone(), dev_fixed);

    print!(
        "{}",
        render::table(
            &[
                "store",
                "device write I/Os",
                "bytes written",
                "bytes/update"
            ],
            &[
                vec![
                    "LLAMA log-structured".into(),
                    format!("{}", lss_result.write_ios),
                    format!("{}", lss_result.bytes_written),
                    format!(
                        "{:.0}",
                        lss_result.bytes_written as f64 / lss_result.logical_updates as f64
                    ),
                ],
                vec![
                    "fixed 4 KB blocks".into(),
                    format!("{}", fixed_result.write_ios),
                    format!("{}", fixed_result.bytes_written),
                    format!(
                        "{:.0}",
                        fixed_result.bytes_written as f64 / fixed_result.logical_updates as f64
                    ),
                ],
            ]
        )
    );
    println!(
        "\nI/O reduction:    {:.0}× fewer write I/Os (large flush buffers)",
        fixed_result.write_ios as f64 / lss_result.write_ios as f64
    );
    println!(
        "byte reduction:   {:.1}× fewer bytes written",
        fixed_result.bytes_written as f64 / lss_result.bytes_written as f64
    );
    println!(
        "delta-only flush: {} of {} page flushes were incremental (only updates travel);\n                  {} parts, {} payload bytes framed into {} device bytes",
        lss_result.incremental_flushes,
        lss_result.incremental_flushes + lss_result.full_flushes,
        lss_stats.parts_written,
        lss_stats.payload_bytes,
        lss_result.bytes_written,
    );

    // Variable-size pages: average page payload vs the 4 KB block a fixed
    // store would write (§6.1 cites ln 2 ≈ 69 % B-tree utilization, ≈30 %
    // saved).
    let dev = device();
    let lss2 = Arc::new(LogStructuredStore::new(dev, LssConfig::default()));
    let tree = BwTree::with_store(BwTreeConfig::default(), lss2.clone());
    let mut rng = SmallRng::seed_from_u64(17);
    for _ in 0..RECORDS {
        // Random inserts so pages sit at post-split utilization.
        let id = rng.gen::<u64>() % 10_000_000;
        tree.put(
            Bytes::copy_from_slice(&keys::encode(id)),
            Bytes::from(keys::value_for(id, 0, 100)),
        );
    }
    // Serialize every leaf once: the LSS payload counter then holds the
    // exact on-flash page sizes.
    for p in tree.pages() {
        if p.is_leaf {
            let _ = tree.flush_page(p.pid, FlushKind::FlushOnly);
        }
    }
    let st = tree.stats();
    let avg = lss2.stats().payload_bytes as f64 / st.full_flushes.max(1) as f64;
    let util = avg / 4096.0;
    println!(
        "\nvariable-size pages: average serialized page {avg:.0} B of a 4096 B maximum \
         ({:.0} % utilization —\npaper cites ln2 ≈ 69 %; writing only used bytes saves ≈{:.0} %)",
        util * 100.0,
        (1.0 - util) * 100.0
    );
}
