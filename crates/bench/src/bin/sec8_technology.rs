//! §8.2–8.3: new technology (NVRAM) and old technology (HDDs), run through
//! the same cost algebra as the rest of the paper.
//!
//! Run with: `cargo run --release -p dcs-bench --bin sec8_technology`

use dcs_costmodel::technology::{
    catalog_with_hdd, iops_bound_throughput, nvram_cost, nvram_mm_crossover_rate,
    ss_nvram_crossover_rate, HddModel, NvramModel,
};
use dcs_costmodel::{breakeven, curves, render, HardwareCatalog};

fn main() {
    let hw = HardwareCatalog::paper();

    println!("== §8.2 NVRAM as an intermediate tier ==\n");
    let nv = NvramModel::between();
    println!(
        "model: ${:.2e}/byte ({}× cheaper than DRAM), R_nvram = {:.1} (no I/O stack)\n",
        nv.per_byte,
        (hw.dram_per_byte / nv.per_byte).round(),
        nv.r_nvram
    );
    let rates = [0.0, 0.005, 0.02, 0.05, 0.2, 1.0, 5.0];
    let rows: Vec<Vec<String>> = rates
        .iter()
        .map(|&n| {
            vec![
                render::format_sig(n),
                render::format_sig(curves::ss_cost(&hw, n)),
                render::format_sig(nvram_cost(&hw, &nv, n)),
                render::format_sig(curves::mm_cost(&hw, n)),
            ]
        })
        .collect();
    print!(
        "{}",
        render::table(&["ops/sec", "SS (flash)", "NVRAM", "MM (DRAM)"], &rows)
    );
    let ss_nv = ss_nvram_crossover_rate(&hw, &nv);
    let nv_mm = nvram_mm_crossover_rate(&hw, &nv);
    println!(
        "\ncrossovers: flash→NVRAM at {} ops/sec (Ti {:.0} s); NVRAM→DRAM at {} ops/sec (Ti {:.1} s)",
        render::format_sig(ss_nv),
        1.0 / ss_nv,
        render::format_sig(nv_mm),
        1.0 / nv_mm
    );
    println!("NVRAM earns a band between flash and DRAM — and its fetches cost");
    println!(
        "{}, versus {} for an SS operation ({}× less: no I/O execution path).",
        render::format_sig(nv.r_nvram * hw.mm_exec_cost()),
        render::format_sig(hw.ss_exec_cost()),
        (hw.ss_exec_cost() / (nv.r_nvram * hw.mm_exec_cost())).round()
    );

    println!("\n== §8.3 hard disks: \"disk is tape\" ==\n");
    let mut rows = Vec::new();
    for (label, model) in [
        ("performance HDD (200 IOPS)", HddModel::performance_2018()),
        ("commodity HDD (100 IOPS)", HddModel::commodity_2018()),
    ] {
        let cat = catalog_with_hdd(&hw, &model);
        let ti = breakeven::ti_seconds(&cat);
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", model.iops),
            format!("{:.0} s (= {:.0} min)", ti, ti / 60.0),
            render::format_sig(iops_bound_throughput(model.iops, 0.005)),
        ]);
    }
    rows.push(vec![
        "paper's flash SSD".to_string(),
        format!("{:.0}", hw.iops),
        format!("{:.1} s", breakeven::ti_seconds(&hw)),
        render::format_sig(iops_bound_throughput(hw.iops, 0.005)),
    ]);
    print!(
        "{}",
        render::table(
            &[
                "secondary storage",
                "IOPS",
                "breakeven Ti (Eq. 6)",
                "max ops/sec at 0.5% miss"
            ],
            &rows
        )
    );
    println!("\nAt a 0.5 % miss ratio a performance HDD caps the whole store at");
    println!("~40 K ops/sec while the SSD supports 40 M — \"even less than a small");
    println!("fraction of 1 % of operations needing to access secondary storage");
    println!("quickly saturates an HDD\" (§8.3). And the HDD breakeven interval is");
    println!("back in Gray's minutes-not-seconds regime: HDDs remain useful only");
    println!("where access rates are tiny and storage needs huge — backup, archive,");
    println!("sequential analytics. Disk is tape.");
}
