//! Figure 1 + §2.2: relative performance of a mixed MM/SS workload, and
//! the derivation of R (Equation 3) from measured throughputs.
//!
//! Method: load a Bw-tree over LLAMA on the simulated SSD (user-level I/O
//! path). Measure `P0` with every page resident. For each target fraction
//! `F`, run a mixed read workload where an SS operation is forced by
//! (untimed) evicting the target key's leaf just before the (timed) read —
//! the timed work is exactly the paper's SS operation: issue the read I/O,
//! execute the I/O path, install and search the page. Derive R per point
//! via Equation 3 and compare the measured relative performance against
//! the model band R = R̂ ± 30 %.
//!
//! Run with: `cargo run --release -p dcs-bench --bin fig1_mixed_perf`

use dcs_bench::{load_tree, OpTimer};
use dcs_costmodel::{mixed, render};
use dcs_flashsim::IoPathKind;
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const RECORDS: u64 = 100_000;
const VALUE_LEN: usize = 100;
const OPS_PER_POINT: u64 = 20_000;
const WARMUP: u64 = 2_000;

struct PointResult {
    f_target: f64,
    f_observed: f64,
    ops_per_sec: f64,
}

fn run_point(t: &dcs_bench::TreeUnderTest, f: f64, seed: u64) -> PointResult {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut timer = OpTimer::new();
    // Warm up the I/O path (the paper notes R is unstable when cold).
    for _ in 0..WARMUP {
        let key = keys::encode(rng.gen_range(0..t.records));
        if f > 0.0 {
            let pid = t.tree.locate_leaf(&key);
            let _ = t.tree.evict_page(pid);
        }
        let _ = t.tree.get(&key);
    }
    let warm_stats = t.tree.stats();
    for _ in 0..OPS_PER_POINT {
        let key = keys::encode(rng.gen_range(0..t.records));
        if rng.gen::<f64>() < f {
            // Untimed: push the page out so the next read is an SS op.
            let pid = t.tree.locate_leaf(&key);
            let _ = t.tree.evict_page(pid);
        }
        timer.time(|| {
            std::hint::black_box(t.tree.get(&key));
        });
    }
    let stats_after = t.tree.stats().delta(&warm_stats);
    PointResult {
        f_target: f,
        f_observed: stats_after.ss_fraction(),
        ops_per_sec: timer.ops_per_sec(),
    }
}

fn four_core_point(t: &dcs_bench::TreeUnderTest, f: f64) -> PointResult {
    let stats_before = t.tree.stats();
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..4u64 {
            let tree = Arc::clone(&t.tree);
            let records = t.records;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(1000 + tid);
                for _ in 0..OPS_PER_POINT / 4 {
                    let key = keys::encode(rng.gen_range(0..records));
                    if rng.gen::<f64>() < f {
                        let pid = tree.locate_leaf(&key);
                        let _ = tree.evict_page(pid);
                    }
                    std::hint::black_box(tree.get(&key));
                }
            });
        }
    });
    let wall = start.elapsed().as_secs_f64();
    let stats_after = t.tree.stats().delta(&stats_before);
    PointResult {
        f_target: f,
        f_observed: stats_after.ss_fraction(),
        // Per-core rate, as in the paper's definition of performance.
        ops_per_sec: OPS_PER_POINT as f64 / wall / 4.0,
    }
}

fn main() {
    println!("loading {RECORDS} records (user-level I/O path) ...");
    let t = load_tree(RECORDS, VALUE_LEN, IoPathKind::UserLevel);

    // P0: every page resident.
    let p0_point = run_point(&t, 0.0, 7);
    let p0 = p0_point.ops_per_sec;
    println!("P0 (all-MM, 1 core) = {:.0} ops/sec\n", p0);

    let fractions = [0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0];
    let mut rows = Vec::new();
    let mut rs = Vec::new();
    let mut one_core_points = Vec::new();
    for (i, &f) in fractions.iter().enumerate() {
        let pt = run_point(&t, f, 100 + i as u64);
        let rel = pt.ops_per_sec / p0;
        let r = mixed::derive_r(p0, pt.ops_per_sec, pt.f_observed);
        let (lo, mid, hi) = mixed::band(pt.f_observed, 5.8, 0.3);
        rows.push(vec![
            format!("{:.2}", pt.f_target),
            format!("{:.4}", pt.f_observed),
            format!("{:.0}", pt.ops_per_sec),
            format!("{rel:.4}"),
            format!("{lo:.4}"),
            format!("{mid:.4}"),
            format!("{hi:.4}"),
            r.map(|r| format!("{r:.2}")).unwrap_or_default(),
        ]);
        // The paper: "R was outside of this range when the I/O path was
        // very cold" — at F ≤ 0.02 an R estimate rests on a handful of SS
        // operations, so (like the paper) we derive R̂ from the warm points.
        if let Some(r) = r {
            if f >= 0.05 {
                rs.push(r);
            }
        }
        one_core_points.push((pt.f_observed, rel));
    }
    println!("== Figure 1 (1 core): measured vs model band ==");
    print!(
        "{}",
        render::table(
            &[
                "F target",
                "F observed",
                "ops/sec",
                "PF/P0 meas",
                "model R+30%",
                "model R=5.8",
                "model R-30%",
                "R (Eq.3)"
            ],
            &rows
        )
    );

    let r_mean = rs.iter().sum::<f64>() / rs.len() as f64;
    let r_min = rs.iter().cloned().fold(f64::INFINITY, f64::min);
    let r_max = rs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "\nderived R over the warm points (F ≥ 0.05): mean {:.2}, range [{:.2}, {:.2}]",
        r_mean, r_min, r_max
    );
    println!("(paper: R = 5.8 ± 30 % over most of the range; unstable when the I/O path is cold)");
    let within = rs
        .iter()
        .filter(|&&r| (r - r_mean).abs() / r_mean <= 0.30)
        .count();
    println!(
        "points within ±30 % of R̂: {within}/{} — {}",
        rs.len(),
        if within == rs.len() {
            "✓ shape holds"
        } else {
            "partial"
        }
    );

    println!("\n== Figure 1 (4 cores): measured points ==");
    // Under concurrency the SS path is a little more expensive (shared
    // device queue, eviction/fetch races), so the 4-core points have their
    // own R — the paper likewise plots 1-core and 4-core results as
    // separate point sets inside the band.
    let mut rows4 = Vec::new();
    let mut rs4 = Vec::new();
    let p0_4 = four_core_point(&t, 0.0).ops_per_sec;
    for &f in &[0.05, 0.2, 0.7] {
        let pt = four_core_point(&t, f);
        let rel = pt.ops_per_sec / p0_4;
        let r = mixed::derive_r(p0_4, pt.ops_per_sec, pt.f_observed);
        if let Some(r) = r {
            rs4.push(r);
        }
        rows4.push(vec![
            format!("{:.2}", pt.f_target),
            format!("{:.4}", pt.f_observed),
            format!("{:.0}", pt.ops_per_sec),
            format!("{rel:.4}"),
            r.map(|r| format!("{r:.2}")).unwrap_or_default(),
        ]);
    }
    print!(
        "{}",
        render::table(
            &[
                "F target",
                "F observed",
                "ops/sec/core",
                "PF/P0",
                "R (Eq.3)"
            ],
            &rows4
        )
    );
    let r4_mean = rs4.iter().sum::<f64>() / rs4.len() as f64;
    let within4 = rs4
        .iter()
        .filter(|&&r| (r - r4_mean).abs() / r4_mean <= 0.30)
        .count();
    println!(
        "\n4-core R̂ = {r4_mean:.2}; points within ±30 %: {within4}/{} — {}",
        rs4.len(),
        if within4 == rs4.len() {
            "✓ constant-R shape holds"
        } else {
            "partial"
        }
    );

    println!("\n== model curve at measured R̂ = {r_mean:.2} ==");
    let xs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
    let series =
        dcs_costmodel::figures::Series::sample(format!("PF/P0 at R={r_mean:.2}"), &xs, |f| {
            mixed::relative_performance(f, r_mean.max(1.0))
        });
    print!("{}", render::series_table("F", &[series]));
}
