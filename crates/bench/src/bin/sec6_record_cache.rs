//! §6.3: record caching.
//!
//! Two parts:
//!   1. Mechanism — a skewed read workload over a store whose pages were
//!      evicted *keeping recent deltas in memory*: reads of recently
//!      updated records hit the record cache and avoid I/O; the same
//!      workload with full eviction pays a fetch each time. Plus the TC's
//!      version-store/read-cache hits, which avoid even the DC visit.
//!   2. Economics — the Equation 6 breakeven at record granularity: a
//!      record being ~10× smaller than a page makes its breakeven interval
//!      ~10× longer, widening the range where caching wins.
//!
//! Run with: `cargo run --release -p dcs-bench --bin sec6_record_cache`

use bytes::Bytes;
use dcs_bench::load_tree;
use dcs_bwtree::FlushKind;
use dcs_costmodel::{breakeven, render, HardwareCatalog};
use dcs_flashsim::IoPathKind;
use dcs_tc::{TcConfig, TransactionalStore};
use dcs_workload::{keys, KeyDist};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RECORDS: u64 = 20_000;
const HOT_UPDATES: u64 = 2_000;
const READS: u64 = 10_000;

fn run(keep_deltas: bool) -> (u64, u64, u64) {
    let t = load_tree(RECORDS, 100, IoPathKind::UserLevel);
    // Flush everything clean, then lay down fresh deltas on hot records.
    for p in t.tree.pages() {
        if p.is_leaf {
            let _ = t.tree.flush_page(p.pid, FlushKind::FlushOnly);
        }
    }
    let mut rng = SmallRng::seed_from_u64(3);
    let mut zipf = KeyDist::zipfian(0.99).sampler(RECORDS, 77);
    let mut updated = Vec::new();
    for i in 0..HOT_UPDATES {
        let id = zipf.next_key();
        updated.push(id);
        t.tree.blind_update(
            Bytes::copy_from_slice(&keys::encode(id)),
            Bytes::from(keys::value_for(id, i as u32, 100)),
        );
    }
    // Evict every leaf, with or without the record cache.
    let kind = if keep_deltas {
        FlushKind::EvictBaseKeepDeltas
    } else {
        FlushKind::EvictAll
    };
    for p in t.tree.pages() {
        if p.is_leaf {
            let _ = t.tree.flush_page(p.pid, kind);
        }
    }
    let before = t.tree.stats();
    let dev_before = t.device.stats();
    // Read the recently updated records — the §6.3 scenario. Pages whose
    // reads faulted them in are re-evicted (as a cache manager keeping the
    // working set on flash would), so every read faces the same residency.
    for _ in 0..READS {
        let id = updated[rng.gen_range(0..updated.len())];
        let key = keys::encode(id);
        let fetches_before = t.tree.stats().fetches;
        std::hint::black_box(t.tree.get(&key));
        if t.tree.stats().fetches != fetches_before {
            let _ = t.tree.flush_page(t.tree.locate_leaf(&key), kind);
        }
    }
    let d = t.tree.stats().delta(&before);
    let dd = t.device.stats().delta(&dev_before);
    (d.record_cache_hits, d.fetches, dd.reads)
}

fn main() {
    println!("part 1 — mechanism: {RECORDS} records, zipfian(0.99) updates then reads\n");
    let (hits_keep, fetch_keep, io_keep) = run(true);
    let (hits_drop, fetch_drop, io_drop) = run(false);
    print!(
        "{}",
        render::table(
            &[
                "eviction mode",
                "record-cache hits",
                "page fetches",
                "device read I/Os"
            ],
            &[
                vec![
                    "evict base, keep deltas".into(),
                    format!("{hits_keep}"),
                    format!("{fetch_keep}"),
                    format!("{io_keep}"),
                ],
                vec![
                    "evict everything".into(),
                    format!("{hits_drop}"),
                    format!("{fetch_drop}"),
                    format!("{io_drop}"),
                ],
            ]
        )
    );
    println!(
        "\nkeeping deltas served {hits_keep} reads with zero I/O and cut read I/Os by {:.1}×\n",
        io_drop as f64 / io_keep.max(1) as f64
    );

    println!("part 2 — the TC record caches (Figure 6): hits avoid the DC entirely\n");
    let t = load_tree(RECORDS, 100, IoPathKind::UserLevel);
    let tc = TransactionalStore::new(t.tree.clone(), TcConfig::default());
    let mut zipf = KeyDist::zipfian(0.99).sampler(RECORDS, 5);
    for i in 0..5_000u64 {
        let mut txn = tc.begin();
        let id = zipf.next_key();
        let key = keys::encode(id);
        let _ = tc.read(&txn, &key).unwrap();
        txn.write(key.to_vec(), keys::value_for(id, i as u32, 100));
        let _ = tc.commit(txn);
    }
    let s = tc.stats();
    print!(
        "{}",
        render::table(
            &["read served by", "count"],
            &[
                vec![
                    "MVCC version store (updated-record cache)".into(),
                    format!("{}", s.version_hits)
                ],
                vec![
                    "retained recovery-log buffers".into(),
                    format!("{}", s.log_cache_hits)
                ],
                vec![
                    "log-structured read cache".into(),
                    format!("{}", s.read_cache_hits)
                ],
                vec!["data component (Bw-tree)".into(), format!("{}", s.dc_reads)],
            ]
        )
    );
    let total = s.version_hits + s.log_cache_hits + s.read_cache_hits + s.dc_reads;
    println!(
        "\nTC caches absorbed {:.0} % of reads before the DC was consulted\n",
        100.0 * (total - s.dc_reads) as f64 / total as f64
    );

    println!("part 3 — economics: breakeven interval by caching granularity\n");
    let hw = HardwareCatalog::paper();
    let mut rows = Vec::new();
    for (label, bytes) in [
        ("page (2.7 KB, §4.2)", hw.page_bytes),
        ("record, 10/page (§6.3)", hw.page_bytes / 10.0),
        ("record, 100 B", 100.0),
    ] {
        rows.push(vec![
            label.to_string(),
            format!("{:.0}", bytes),
            format!("{:.0} s", breakeven::ti_seconds_for_record(&hw, bytes)),
        ]);
    }
    print!(
        "{}",
        render::table(&["cached unit", "bytes", "breakeven Ti"], &rows)
    );
    println!("\nSmaller cached units earn proportionally longer stay-in-memory");
    println!("intervals (Eq. 6 has Ps in the denominator): \"the record breakeven");
    println!("Ti = 10× minutes instead of about one minute for the page\" (§6.3).");
}
