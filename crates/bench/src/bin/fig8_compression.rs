//! Figure 8 + §7.2: compressed secondary storage (CSS operations).
//!
//! Runs the caching store with and without the LZSS codec, *measures* the
//! real compression ratio and the real CPU overhead of a CSS operation
//! (fetch + decompress) versus a plain SS operation, then instantiates the
//! paper's three-regime cost picture with the measured parameters.
//!
//! Run with: `cargo run --release -p dcs-bench --bin fig8_compression`

use bytes::Bytes;
use dcs_bench::OpTimer;
use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_costmodel::{curves, figures, render, HardwareCatalog};
use dcs_flashsim::{DeviceConfig, FlashDevice, IoPathKind, VirtualClock};
use dcs_llama::{Codec, LogStructuredStore, LssConfig};
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const RECORDS: u64 = 50_000;
const VALUE_LEN: usize = 120;
const OPS: u64 = 8_000;

struct CssMeasurement {
    ss_rate: f64,
    stored_ratio: f64,
}

fn run(codec: Codec) -> CssMeasurement {
    let device = Arc::new(FlashDevice::with_clock(
        DeviceConfig {
            segment_bytes: 1 << 20,
            segment_count: 2048,
            advance_clock_on_io: false,
            io_path: IoPathKind::UserLevel.model(),
            ..DeviceConfig::paper_ssd()
        },
        VirtualClock::new(),
    ));
    let lss = Arc::new(LogStructuredStore::new(
        device,
        LssConfig {
            codec,
            flush_buffer_bytes: 256 << 10,
            ..LssConfig::default()
        },
    ));
    let tree = BwTree::with_store(BwTreeConfig::default(), lss.clone());
    for id in 0..RECORDS {
        tree.put(
            Bytes::copy_from_slice(&keys::encode(id)),
            // Textual payloads so compression has something to find.
            Bytes::from(format!(
                "record/{id:012}/status=active/balance=000{};{}",
                id % 997,
                "field=value;".repeat(VALUE_LEN / 12)
            )),
        );
    }
    let mut rng = SmallRng::seed_from_u64(21);
    // Warm.
    for _ in 0..1_000 {
        let key = keys::encode(rng.gen_range(0..RECORDS));
        let _ = tree.evict_page(tree.locate_leaf(&key));
        let _ = tree.get(&key);
    }
    let mut ss = OpTimer::new();
    for _ in 0..OPS {
        let key = keys::encode(rng.gen_range(0..RECORDS));
        let _ = tree.evict_page(tree.locate_leaf(&key));
        ss.time(|| std::hint::black_box(tree.get(&key)));
    }
    let stats = lss.stats();
    CssMeasurement {
        ss_rate: ss.ops_per_sec(),
        stored_ratio: stats.stored_bytes as f64 / stats.payload_bytes as f64,
    }
}

fn main() {
    println!("measuring plain SS operations ...");
    let plain = run(Codec::None);
    println!("measuring CSS operations (LZSS pages) ...\n");
    let packed = run(Codec::Lzss);

    print!(
        "{}",
        render::table(
            &["store", "SS/CSS ops/sec", "stored/raw bytes"],
            &[
                vec![
                    "uncompressed".into(),
                    format!("{:.0}", plain.ss_rate),
                    format!("{:.2}", plain.stored_ratio)
                ],
                vec![
                    "LZSS compressed".into(),
                    format!("{:.0}", packed.ss_rate),
                    format!("{:.2}", packed.stored_ratio)
                ],
            ]
        )
    );
    let cpu_penalty = plain.ss_rate / packed.ss_rate;
    println!(
        "\nmeasured: compression shrinks storage to {:.0} % and makes the read\npath {:.2}× more expensive (decompression CPU)",
        packed.stored_ratio * 100.0,
        cpu_penalty
    );

    // Translate into the cost model: CSS execution = SS execution plus the
    // measured decompression overhead (expressed against MM op cost).
    let hw = HardwareCatalog::paper();
    let extra_cpu_vs_mm = (cpu_penalty - 1.0) * hw.r;
    let cmodel = curves::CompressionModel {
        ratio: packed.stored_ratio,
        cpu_overhead: extra_cpu_vs_mm.max(0.05),
    };
    println!(
        "cost-model parameters: ratio = {:.2}, decompress CPU = {:.2}× MM op",
        cmodel.ratio, cmodel.cpu_overhead
    );

    println!("\n== Figure 8: three-regime cost curves (measured parameters) ==");
    let series = figures::fig8_curves(&hw, &cmodel, 1e-4, 100.0, 13);
    print!("{}", render::series_table("ops/sec", &series));
    println!(
        "\ncrossovers: CSS→SS at {} ops/sec, SS→MM at {} ops/sec",
        render::format_sig(curves::css_ss_crossover_rate(&hw, &cmodel)),
        render::format_sig(curves::mm_ss_crossover_rate(&hw)),
    );
    println!("\nShape (paper's Figure 8, 'all numbers hypothetical'): coldest data");
    println!("cheapest compressed (CSS), a middle band plain on flash (SS), hot");
    println!("data in DRAM (MM). A store supporting all three picks the cheapest");
    println!("tier per access rate — Facebook's RocksDB deployment in practice.");
}
