//! Figure 3 + §5: the Bw-tree (fully cached) vs MassTree cost comparison.
//!
//! Measures Px (MassTree's performance gain) and Mx (its memory expansion)
//! on this workspace's own implementations with a 4-thread read-only
//! workload — the paper's §5.1 experiment — then computes the Equation 7
//! breakeven with both the measured and the paper's point values.
//!
//! Run with: `cargo run --release -p dcs-bench --bin fig3_bwtree_vs_masstree`

use bytes::Bytes;
use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_costmodel::{figures, mm_vs_caching, render, HardwareCatalog};
use dcs_masstree::MassTree;
use dcs_workload::keys;
use std::sync::Arc;
use std::time::Instant;

const RECORDS: u64 = 200_000;
const READS: u64 = 800_000;
const VALUE_LEN: usize = 16;
const THREADS: u64 = 4;

fn measure(read: impl Fn(u64) -> usize + Sync) -> f64 {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let read = &read;
            scope.spawn(move || {
                let mut x = 0x2545_F491u64.wrapping_add(t);
                let mut sink = 0usize;
                for _ in 0..READS / THREADS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    sink += read(x % RECORDS);
                }
                std::hint::black_box(sink);
            });
        }
    });
    READS as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    println!("loading {RECORDS} records into both trees ...");
    let bw = Arc::new(BwTree::in_memory(BwTreeConfig::default()));
    let mt = Arc::new(MassTree::new());
    for id in 0..RECORDS {
        let k = Bytes::copy_from_slice(&keys::encode(id));
        let v = Bytes::from(keys::value_for(id, 0, VALUE_LEN));
        bw.put(k.clone(), v.clone());
        mt.insert(k, v);
    }

    println!("read-only, {THREADS} threads, {READS} uniform reads each system ...\n");
    // Warm both.
    measure(|id| bw.get(&keys::encode(id)).map(|v| v.len()).unwrap_or(0));
    measure(|id| mt.get(&keys::encode(id)).map(|v| v.len()).unwrap_or(0));
    let bw_rate = measure(|id| bw.get(&keys::encode(id)).map(|v| v.len()).unwrap_or(0));
    let mt_rate = measure(|id| mt.get(&keys::encode(id)).map(|v| v.len()).unwrap_or(0));
    let bw_mem = bw.footprint_bytes() as f64;
    let mt_mem = mt.footprint_bytes() as f64;
    let px = mt_rate / bw_rate;
    let mx = mt_mem / bw_mem;

    print!(
        "{}",
        render::table(
            &["system", "reads/sec (4 threads)", "footprint MiB"],
            &[
                vec![
                    "Bw-tree".into(),
                    format!("{bw_rate:.0}"),
                    format!("{:.1}", bw_mem / 1048576.0)
                ],
                vec![
                    "MassTree".into(),
                    format!("{mt_rate:.0}"),
                    format!("{:.1}", mt_mem / 1048576.0)
                ],
            ]
        )
    );
    println!("\nPx = {px:.2} (paper ≈ 2.6)    Mx = {mx:.2} (paper ≈ 2.1)");

    let hw = HardwareCatalog::paper();
    for (label, cmp) in [
        (
            "paper's point experiment",
            mm_vs_caching::Comparison::paper(),
        ),
        (
            "this substrate's measurement",
            if px > 1.0 && mx > 1.0 {
                mm_vs_caching::Comparison { px, mx }
            } else {
                println!("\n(measured Px/Mx outside the Px,Mx>1 regime; reusing paper values)");
                mm_vs_caching::Comparison::paper()
            },
        ),
    ] {
        println!(
            "\n== Equation 7/8 with {label} (Px={:.2}, Mx={:.2}) ==",
            cmp.px, cmp.mx
        );
        println!(
            "Ti · Size = {}  (paper: 8.3e3)",
            render::format_sig(mm_vs_caching::ti_size_product(&hw, &cmp))
        );
        for (gb, paper_says) in [(6.1, "0.73e6"), (100.0, "12e6")] {
            let rate = mm_vs_caching::breakeven_rate(&hw, gb * 1e9, &cmp);
            println!(
                "  {gb:>6.1} GB: MassTree cheaper above {:>10} ops/sec (paper: {paper_says})",
                render::format_sig(rate)
            );
        }
        println!(
            "  2.7 KB page: Ti must drop below {:.1} s (paper: 3.1 s)",
            mm_vs_caching::ti_seconds(&hw, hw.page_bytes, &cmp)
        );
    }

    println!("\n== Figure 3 curves (6.1 GB database, paper comparison) ==");
    let series = figures::fig3_curves(
        &hw,
        &mm_vs_caching::Comparison::paper(),
        6.1e9,
        1e4,
        1e7,
        13,
    );
    print!("{}", render::series_table("ops/sec", &series));
    println!("\nShape: Bw-tree cheaper at every rate below the crossover; the");
    println!("crossover scales linearly with database size (§5.2). And unlike");
    println!("MassTree, the Bw-tree can evict cold pages at Ti ≈ 45 s for further");
    println!("savings — it is also a data caching system.");
}
