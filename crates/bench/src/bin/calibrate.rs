//! Calibration: measure this machine's quantities for the hardware
//! catalog — ROPS (MM read rate), R (per I/O path), and the CPU-work unit
//! rate the simulated I/O path is built from.
//!
//! Run with: `cargo run --release -p dcs-bench --bin calibrate`

use dcs_bench::{load_tree, OpTimer};
use dcs_costmodel::render;
use dcs_flashsim::{calibrate_work_rate, IoPathKind};
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RECORDS: u64 = 100_000;
const OPS: u64 = 30_000;

fn measure_mm(t: &dcs_bench::TreeUnderTest) -> f64 {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut timer = OpTimer::new();
    for _ in 0..OPS {
        let key = keys::encode(rng.gen_range(0..t.records));
        timer.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    timer.ops_per_sec()
}

fn measure_ss(t: &dcs_bench::TreeUnderTest) -> f64 {
    let mut rng = SmallRng::seed_from_u64(2);
    let mut timer = OpTimer::new();
    // Warm the I/O path first.
    for _ in 0..2_000 {
        let key = keys::encode(rng.gen_range(0..t.records));
        let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        let _ = t.tree.get(&key);
    }
    for _ in 0..OPS / 2 {
        let key = keys::encode(rng.gen_range(0..t.records));
        let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        timer.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    timer.ops_per_sec()
}

fn main() {
    println!("== CPU work-unit rate ==");
    let rate = calibrate_work_rate();
    println!("{:.0} units/sec  ({:.2} ns/unit)\n", rate, 1e9 / rate);

    let mut rows = Vec::new();
    for path in [
        IoPathKind::Free,
        IoPathKind::UserLevel,
        IoPathKind::OsKernel,
    ] {
        let t = load_tree(RECORDS, 100, path);
        let mm = measure_mm(&t);
        let ss = measure_ss(&t);
        rows.push(vec![
            format!("{path:?}"),
            format!("{mm:.0}"),
            format!("{ss:.0}"),
            format!("{:.2}", mm / ss),
        ]);
    }
    println!("== Bw-tree operation rates per I/O path (1 core) ==");
    print!(
        "{}",
        render::table(
            &["I/O path", "MM ops/sec (ROPS)", "SS ops/sec", "R = MM/SS"],
            &rows
        )
    );
    println!("\npaper targets: R ≈ 9 on the OS path, ≈ 5.8 on the user-level path;");
    println!("its ROPS = 4e6 on 2018 server hardware with the production C++ codebase.");
    println!("Use the measured ROPS and R with `HardwareCatalog` to re-derive Ti for");
    println!("this machine (see the fig2_mm_vs_ss binary).");
}
