//! YCSB A–F across every store in the workspace — the workload vocabulary
//! the systems community uses, for positioning the stores against each
//! other (single-threaded, warm; see fig1/fig3 for the paper's specific
//! measurements).
//!
//! Run with: `cargo run --release -p dcs-bench --bin ycsb`

use dcs_core::bwtree::{BwTree, BwTreeConfig};
use dcs_core::costmodel::render;
use dcs_core::flashsim::{DeviceConfig, FlashDevice, IoPathKind, VirtualClock};
use dcs_core::lsm::{LsmConfig, LsmTree};
use dcs_core::masstree::MassTree;
use dcs_core::workload::{KvStore, Runner, WorkloadSpec};
use dcs_core::{BwTreeBackend, LsmBackend, MassTreeBackend, StoreBuilder};
use std::sync::Arc;
use std::time::Instant;

const RECORDS: u64 = 50_000;
const OPS: u64 = 100_000;
const VALUE_LEN: usize = 100;

fn measure<S: KvStore>(store: &S, workload: char) -> (f64, f64) {
    let spec = WorkloadSpec::ycsb(workload, RECORDS, VALUE_LEN, 42);
    let runner = Runner::new(spec);
    runner.load(store).expect("load");
    // Scan-heavy E is much slower per op; shorten it.
    let ops = if workload == 'e' { OPS / 20 } else { OPS };
    let start = Instant::now();
    let counts = runner.run(store, ops).expect("run");
    let rate = counts.total() as f64 / start.elapsed().as_secs_f64();
    let hit = if counts.reads > 0 {
        counts.read_hits as f64 / counts.reads as f64
    } else {
        1.0
    };
    (rate, hit)
}

fn main() {
    println!(
        "{RECORDS} records, {OPS} ops per workload (E: {}), 1 thread, warm\n",
        OPS / 20
    );
    let mut rows = Vec::new();
    for w in ['a', 'b', 'c', 'd', 'f', 'e'] {
        // Paper-sized pages (4 KB) and a budget holding the working set.
        let mut b = StoreBuilder::small_test();
        b.tree = BwTreeConfig::default();
        b.memory_budget = 64 << 20;
        let caching = b.build();
        let (c_rate, _) = measure(&caching, w);

        let bw = BwTreeBackend(BwTree::in_memory(BwTreeConfig::default()));
        let (b_rate, _) = measure(&bw, w);

        let mt = MassTreeBackend(MassTree::new());
        let (m_rate, _) = measure(&mt, w);

        let lsm = LsmBackend(LsmTree::new(
            Arc::new(FlashDevice::with_clock(
                DeviceConfig {
                    segment_bytes: 1 << 20,
                    segment_count: 4096,
                    advance_clock_on_io: false,
                    io_path: IoPathKind::Free.model(),
                    ..DeviceConfig::paper_ssd()
                },
                VirtualClock::new(),
            )),
            LsmConfig::default(),
        ));
        let (l_rate, _) = measure(&lsm, w);

        rows.push(vec![
            format!("YCSB-{}", w.to_ascii_uppercase()),
            format!("{c_rate:.0}"),
            format!("{b_rate:.0}"),
            format!("{m_rate:.0}"),
            format!("{l_rate:.0}"),
        ]);
    }
    print!(
        "{}",
        render::table(
            &[
                "workload",
                "CachingStore ops/s",
                "Bw-tree (mem) ops/s",
                "MassTree ops/s",
                "LSM ops/s"
            ],
            &rows
        )
    );
    println!("\nExpected shape: MassTree leads point workloads (the paper's Px > 1);");
    println!("the caching store tracks the in-memory Bw-tree while also being able");
    println!("to shed cold pages to flash; the LSM pays read amplification on");
    println!("lookups but accepts writes blind.");
}
