//! Measured miss-ratio curves vs the paper's analytic prediction.
//!
//! Consumes the `mrc` block the serving layer's load generator writes
//! with `--mrc on` (live SHARDS-sampled curves per memory consumer) and
//! renders, per consumer:
//!
//! 1. the measured curve against the frequency-optimal Zipf(θ) placement
//!    the paper's record-cache argument assumes — the gap is what the
//!    real replacement policy leaves on the table, and
//! 2. the marginal cost-per-byte fuse: where the §3 cost algebra says
//!    this consumer's cache should stop growing, at the run's own
//!    access rate.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dcs-server --bin loadgen -- --backend caching \
//!   --key-dist zipfian --theta 0.99 --memory-budget 262144 --mrc on \
//!   --out BENCH_server.json [...]
//! cargo run --release -p dcs-bench --bin fig_mrc -- BENCH_server.json \
//!   [--theta 0.99]
//! ```

use dcs_costmodel::mrc_cost::{
    marginal_curve, parse_bench_mrc, recommended_bytes, zipf_miss_ratio, MrcMeasured,
};
use dcs_costmodel::{render, HardwareCatalog};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path = "BENCH_server.json".to_string();
    let mut theta = 0.99f64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--theta" => {
                theta = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--theta needs a number");
                        std::process::exit(2);
                    });
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!("fig_mrc [BENCH_server.json] [--theta T]");
                std::process::exit(0);
            }
            p => {
                path = p.to_string();
                i += 1;
            }
        }
    }

    let json = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        eprintln!("generate it with the loadgen invocation in this bin's header");
        std::process::exit(2);
    });
    let consumers = parse_bench_mrc(&json).unwrap_or_else(|| {
        eprintln!("{path}: no mrc block — rerun loadgen with --mrc on");
        std::process::exit(2);
    });
    // The run's completed wire throughput, for quoting the access rate
    // the marginal prices are computed at.
    let wire_rate = dcs_costmodel::miss_service::parse_bench_server(&json)
        .map(|m| m.throughput_ops_per_sec)
        .unwrap_or(0.0);

    let hw = HardwareCatalog::paper();
    for c in &consumers {
        render_consumer(&hw, c, theta, wire_rate);
    }
    if consumers.is_empty() {
        eprintln!("{path}: mrc block holds no consumers (no instrumented accesses?)");
        std::process::exit(2);
    }
}

fn render_consumer(hw: &HardwareCatalog, c: &MrcMeasured, theta: f64, wire_rate: f64) {
    println!(
        "== {} : measured SHARDS curve vs frequency-optimal Zipf(θ = {theta}) ==",
        c.consumer
    );
    println!(
        "accesses {} (sampled {} at R = {}), mean entity {} bytes",
        c.accesses,
        (c.accesses as f64 * c.sample_rate).round() as u64,
        render::format_sig(c.sample_rate),
        render::format_sig(c.mean_entity_bytes)
    );
    // The analytic curve needs a universe size in entities; the largest
    // measured point *is* the observed working set (SHARDS scales
    // sampled distinct keys by 1/R), so predict against that.
    let universe = c
        .points
        .last()
        .map_or(0.0, |p| p.bytes / c.mean_entity_bytes.max(1.0));
    let rows: Vec<Vec<String>> = c
        .points
        .iter()
        .map(|p| {
            let cached = p.bytes / c.mean_entity_bytes.max(1.0);
            vec![
                render::format_sig(p.bytes / 1024.0),
                render::format_sig(p.miss_ratio),
                render::format_sig(zipf_miss_ratio(theta, universe, cached)),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(&["cache KiB", "measured miss", "zipf-opt miss"], &rows)
    );

    // The fuse: price every interval at the consumer's observed access
    // rate (its share of the wire rate — the profiler counts accesses,
    // the report counts completed wire ops; quoting both keeps the
    // scaling honest).
    let rate = if wire_rate > 0.0 { wire_rate } else { 1.0 };
    let priced = marginal_curve(hw, rate, &c.points);
    let rows: Vec<Vec<String>> = priced
        .iter()
        .map(|p| {
            vec![
                render::format_sig(p.bytes / 1024.0),
                format!("{:.3e}", p.marginal_value_per_byte),
                format!("{:.3e}", p.net_per_byte()),
            ]
        })
        .collect();
    println!(
        "{}",
        render::table(&["up to KiB", "value $/byte", "net $/byte"], &rows)
    );
    println!(
        "break-even budget at {} ops/s: {} KiB (loadgen's own fuse said {} KiB)\n",
        render::format_sig(rate),
        render::format_sig(recommended_bytes(hw, rate, &c.points) / 1024.0),
        render::format_sig(c.recommended_bytes / 1024.0)
    );
}
