//! §6.2: blind updates avoid read I/O entirely.
//!
//! Updates records whose pages are all evicted, three ways:
//!   1. Bw-tree blind updates (delta to the mapping-table entry);
//!   2. read-modify-write (fetch the page, then update) — what a classic
//!      caching store must do;
//!   3. LSM (RocksDB-style) blind puts into the memtable.
//!
//! Counts device read I/Os per 1000 updates for each.
//!
//! Run with: `cargo run --release -p dcs-bench --bin sec6_blind_updates`

use bytes::Bytes;
use dcs_bench::load_tree;
use dcs_costmodel::render;
use dcs_flashsim::IoPathKind;
use dcs_lsm::{LsmConfig, LsmTree};
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RECORDS: u64 = 20_000;
const UPDATES: u64 = 10_000;

fn evict_all(tree: &dcs_bwtree::BwTree) {
    for p in tree.pages() {
        if p.is_leaf {
            let _ = tree.evict_page(p.pid);
        }
    }
}

fn main() {
    let mut rows = Vec::new();

    // 1. Bw-tree blind updates.
    {
        let t = load_tree(RECORDS, 100, IoPathKind::UserLevel);
        evict_all(&t.tree);
        let before = t.device.stats();
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..UPDATES {
            let id = rng.gen_range(0..RECORDS);
            t.tree.blind_update(
                Bytes::copy_from_slice(&keys::encode(id)),
                Bytes::from(keys::value_for(id, i as u32, 100)),
            );
        }
        let d = t.device.stats().delta(&before);
        let ts = t.tree.stats();
        rows.push(vec![
            "Bw-tree blind update".into(),
            format!("{:.2}", d.reads as f64 / (UPDATES as f64 / 1000.0)),
            format!("{:.2}", d.writes as f64 / (UPDATES as f64 / 1000.0)),
            format!("healing fetches: {}", ts.fetches),
        ]);
    }

    // 2. Read-modify-write on the same tree shape.
    {
        let t = load_tree(RECORDS, 100, IoPathKind::UserLevel);
        evict_all(&t.tree);
        let before = t.device.stats();
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..UPDATES {
            let id = rng.gen_range(0..RECORDS);
            let key = keys::encode(id);
            // Classic store: must read the record before writing it back —
            // and we re-evict so every page starts cold, as in a big-data
            // working set that never fits.
            let _ = t.tree.get(&key);
            t.tree.put(
                Bytes::copy_from_slice(&key),
                Bytes::from(keys::value_for(id, i as u32, 100)),
            );
            let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        }
        let d = t.device.stats().delta(&before);
        rows.push(vec![
            "read-modify-write (cold)".into(),
            format!("{:.2}", d.reads as f64 / (UPDATES as f64 / 1000.0)),
            format!("{:.2}", d.writes as f64 / (UPDATES as f64 / 1000.0)),
            String::new(),
        ]);
    }

    // 3. LSM blind puts.
    {
        let device =
            dcs_bench::standard_device(IoPathKind::UserLevel, dcs_flashsim::VirtualClock::new());
        let lsm = LsmTree::new(device.clone(), LsmConfig::default());
        let mut rng = SmallRng::seed_from_u64(1);
        for id in 0..RECORDS {
            lsm.put(
                Bytes::copy_from_slice(&keys::encode(id)),
                Bytes::from(keys::value_for(id, 0, 100)),
            )
            .unwrap();
        }
        lsm.flush().unwrap();
        let before = device.stats();
        for i in 0..UPDATES {
            let id = rng.gen_range(0..RECORDS);
            lsm.put(
                Bytes::copy_from_slice(&keys::encode(id)),
                Bytes::from(keys::value_for(id, i as u32, 100)),
            )
            .unwrap();
        }
        let d = device.stats().delta(&before);
        rows.push(vec![
            "LSM (RocksDB-style) put".into(),
            format!("{:.2}", d.reads as f64 / (UPDATES as f64 / 1000.0)),
            format!("{:.2}", d.writes as f64 / (UPDATES as f64 / 1000.0)),
            format!("compactions: {}", lsm.stats().compactions),
        ]);
    }

    println!("{RECORDS} records, every page on flash; {UPDATES} random updates per system\n");
    print!(
        "{}",
        render::table(
            &[
                "update path",
                "read I/Os /1000 upd",
                "write I/Os /1000 upd",
                "notes"
            ],
            &rows
        )
    );
    println!("\nShape (§6.2): blind updaters — the Bw-tree's mapping-table deltas and");
    println!("the LSM's memtable — take ≈0 read I/Os per update (reads only from");
    println!("LSM compaction merges / Bw-tree chain healing); the classic");
    println!("read-modify-write path pays a read I/O for every cold update.");
}
