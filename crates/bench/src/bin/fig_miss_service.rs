//! Sync-vs-async miss service, in the cost model's own terms.
//!
//! Consumes the two `BENCH_server.json` documents the serving layer's
//! load generator writes when run with `--miss-mode sync` and
//! `--miss-mode async` under injected device latency, and renders:
//!
//! 1. the measured comparison (miss-service latency, hit p95 on shards
//!    with concurrent misses, achieved device queue depth), and
//! 2. the §2 relative-performance curves at each mode's *effective*
//!    `R` — the catalog `R` inflated by the measured queueing expansion
//!    (mean miss service over raw device latency).
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p dcs-server --bin loadgen -- --backend caching \
//!   --miss-mode sync  --device-latency 400000 --memory-budget 65536 \
//!   --out BENCH_server_sync.json [...]
//! cargo run --release -p dcs-server --bin loadgen -- --backend caching \
//!   --miss-mode async --device-latency 400000 --memory-budget 65536 \
//!   --out BENCH_server_async.json [...]
//! cargo run --release -p dcs-bench --bin fig_miss_service -- \
//!   BENCH_server_sync.json BENCH_server_async.json
//! ```

use dcs_costmodel::miss_service::{
    miss_service_curves, p95_speedup, parse_bench_server, MissServiceMeasurement,
};
use dcs_costmodel::{render, HardwareCatalog};

fn load(path: &str) -> MissServiceMeasurement {
    let json = match std::fs::read_to_string(path) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            eprintln!("generate it with the loadgen invocations in this bin's header");
            std::process::exit(2);
        }
    };
    match parse_bench_server(&json) {
        Some(m) => m,
        None => {
            eprintln!("{path}: not a BENCH_server.json with io_depth/miss_service blocks");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sync_path = args
        .first()
        .map(String::as_str)
        .unwrap_or("BENCH_server_sync.json");
    let async_path = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("BENCH_server_async.json");

    let sync = load(sync_path);
    let asynch = load(async_path);
    for (path, m, want) in [(sync_path, &sync, "sync"), (async_path, &asynch, "async")] {
        if m.miss_mode != want {
            eprintln!(
                "{path}: miss_mode is \"{}\", expected \"{want}\"",
                m.miss_mode
            );
            std::process::exit(2);
        }
    }

    println!("== measured miss service: blocking vs polled engine ==");
    let row = |m: &MissServiceMeasurement| {
        vec![
            m.miss_mode.clone(),
            m.misses.to_string(),
            render::format_sig(m.miss_mean_us),
            render::format_sig(m.miss_p95_us),
            render::format_sig(m.hit_p95_us),
            render::format_sig(m.io_depth_mean),
            m.io_depth_max.to_string(),
            m.parked_peak.to_string(),
            render::format_sig(m.throughput_ops_per_sec),
        ]
    };
    println!(
        "{}",
        render::table(
            &[
                "miss mode",
                "misses",
                "miss mean us",
                "miss p95 us",
                "hit p95 us",
                "io depth mean",
                "io depth max",
                "parked peak",
                "ops/s",
            ],
            &[row(&sync), row(&asynch)],
        )
    );
    println!(
        "device read latency: {} us injected",
        render::format_sig(sync.device_latency_nanos as f64 / 1000.0)
    );
    println!(
        "queueing expansion (mean miss / device read): sync {}x, async {}x",
        render::format_sig(sync.expansion()),
        render::format_sig(asynch.expansion())
    );
    println!(
        "miss-service p95 speedup from polling: {}x",
        render::format_sig(p95_speedup(&sync, &asynch))
    );

    let hw = HardwareCatalog::paper();
    println!("\n== relative performance vs SS-fraction F at effective R (Eq. 2) ==");
    println!(
        "{}",
        render::series_table("F", &miss_service_curves(hw.r, &sync, &asynch, 11))
    );
    println!(
        "catalog R = {}; effective R: sync {}, async {}",
        render::format_sig(hw.r),
        render::format_sig(sync.effective_r(hw.r)),
        render::format_sig(asynch.effective_r(hw.r))
    );
}
