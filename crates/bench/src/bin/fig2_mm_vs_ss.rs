//! Figure 2 + §4.2: the cost of MM vs SS operations as access rates
//! change, and the breakeven point — the updated five-minute rule.
//!
//! Prints the cost curves for the paper's catalog and for a catalog whose
//! performance quantities (ROPS, R) were measured on this substrate, plus
//! the record-level variant of §6.3.
//!
//! Run with: `cargo run --release -p dcs-bench --bin fig2_mm_vs_ss`

use dcs_bench::{load_tree, OpTimer};
use dcs_costmodel::{breakeven, curves, figures, render, HardwareCatalog};
use dcs_flashsim::IoPathKind;
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn measured_catalog() -> HardwareCatalog {
    let t = load_tree(100_000, 100, IoPathKind::UserLevel);
    let mut rng = SmallRng::seed_from_u64(3);
    let mut timer = OpTimer::new();
    for _ in 0..20_000u64 {
        let key = keys::encode(rng.gen_range(0..t.records));
        timer.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    let rops = timer.ops_per_sec();
    let mut ss = OpTimer::new();
    for _ in 0..10_000u64 {
        let key = keys::encode(rng.gen_range(0..t.records));
        let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        ss.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    let leaves: Vec<_> = t.tree.pages().into_iter().filter(|p| p.is_leaf).collect();
    let ps = leaves.iter().map(|p| p.mem_bytes).sum::<usize>() as f64 / leaves.len() as f64;
    HardwareCatalog {
        rops,
        r: rops / ss.ops_per_sec(),
        page_bytes: ps,
        ..HardwareCatalog::paper()
    }
}

fn report(title: &str, hw: &HardwareCatalog) {
    println!("== {title} ==");
    println!(
        "ROPS = {:.3e}, R = {:.2}, Ps = {:.0} B",
        hw.rops, hw.r, hw.page_bytes
    );
    let series = figures::fig2_curves(hw, 1e-3, 1.0, 13);
    print!("{}", render::series_table("ops/sec", &series));
    let n = curves::mm_ss_crossover_rate(hw);
    let ti = breakeven::ti_seconds(hw);
    let (io_term, cpu_term) = breakeven::ti_components(hw);
    println!(
        "\nbreakeven: N = {} ops/sec  =>  Ti = {ti:.1} s (I/O term {io_term:.1} s + CPU term {cpu_term:.1} s)",
        render::format_sig(n),
    );
    println!(
        "record-level (§6.3, Ps/10): Ti = {:.0} s — 10 records per page widen the\n  cache-worthy range tenfold\n",
        breakeven::ti_seconds_for_record(hw, hw.page_bytes / 10.0)
    );
}

fn main() {
    report("Figure 2, paper catalog", &HardwareCatalog::paper());
    println!("(paper derives Ti ≈ 45 s; Gray 1987 derived 5 minutes for HDDs)\n");
    println!("measuring this substrate for the measured-catalog variant ...\n");
    let measured = measured_catalog();
    report("Figure 2, measured catalog (paper prices)", &measured);
    println!("Shape check: in both catalogs SS is cheaper at low rates (storage-");
    println!("dominated, flash ≈11× cheaper) and MM at high rates (execution-");
    println!("dominated); only the crossover moves with ROPS/R/Ps.");
}
