//! Figure 7 + §7.1.1: the impact of the I/O execution path on
//! cost/performance.
//!
//! Measures R on this substrate under the OS-kernel path model and the
//! user-level (SPDK-style) path model, verifies the direction and rough
//! magnitude of the paper's result (R ≈ 9 → ≈ 5.8, about a third of the
//! path removed), and prints the cost curves and breakeven shift for the
//! measured R values.
//!
//! Run with: `cargo run --release -p dcs-bench --bin fig7_io_path`

use dcs_bench::{load_tree, OpTimer, TreeUnderTest};
use dcs_costmodel::{breakeven, figures, render, HardwareCatalog};
use dcs_flashsim::IoPathKind;
use dcs_workload::keys;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RECORDS: u64 = 100_000;
const OPS: u64 = 20_000;

struct PathMeasurement {
    mm_rate: f64,
    ss_rate: f64,
    r: f64,
}

fn measure(t: &TreeUnderTest, seed: u64) -> PathMeasurement {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mm = OpTimer::new();
    for _ in 0..OPS {
        let key = keys::encode(rng.gen_range(0..t.records));
        mm.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    // Warm the I/O path.
    for _ in 0..2_000 {
        let key = keys::encode(rng.gen_range(0..t.records));
        let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        let _ = t.tree.get(&key);
    }
    let mut ss = OpTimer::new();
    for _ in 0..OPS / 2 {
        let key = keys::encode(rng.gen_range(0..t.records));
        let _ = t.tree.evict_page(t.tree.locate_leaf(&key));
        ss.time(|| std::hint::black_box(t.tree.get(&key)));
    }
    PathMeasurement {
        mm_rate: mm.ops_per_sec(),
        ss_rate: ss.ops_per_sec(),
        r: ss.secs_per_op() / mm.secs_per_op(),
    }
}

fn main() {
    println!("measuring R under both I/O path models ...\n");
    let os_tree = load_tree(RECORDS, 100, IoPathKind::OsKernel);
    let os = measure(&os_tree, 11);
    drop(os_tree);
    let user_tree = load_tree(RECORDS, 100, IoPathKind::UserLevel);
    let user = measure(&user_tree, 12);
    drop(user_tree);

    print!(
        "{}",
        render::table(
            &[
                "I/O path",
                "MM ops/sec",
                "SS ops/sec",
                "R measured",
                "R paper"
            ],
            &[
                vec![
                    "OS kernel".into(),
                    format!("{:.0}", os.mm_rate),
                    format!("{:.0}", os.ss_rate),
                    format!("{:.2}", os.r),
                    "~9".into()
                ],
                vec![
                    "user level (SPDK)".into(),
                    format!("{:.0}", user.mm_rate),
                    format!("{:.0}", user.ss_rate),
                    format!("{:.2}", user.r),
                    "~5.8".into()
                ],
            ]
        )
    );
    let path_cut = 1.0 - (1.0 / user.ss_rate) / (1.0 / os.ss_rate);
    println!(
        "\nSS execution path shortened by {:.0} % (paper: \"about a third\") {}",
        path_cut * 100.0,
        if (0.15..0.55).contains(&path_cut) {
            "✓"
        } else {
            "✗"
        }
    );
    println!(
        "R dropped {:.2} → {:.2} (paper: 9 → 5.8) {}",
        os.r,
        user.r,
        if user.r < os.r {
            "✓ direction holds"
        } else {
            "✗"
        }
    );

    println!("\n== Figure 7: SS cost curves at the measured R values ==");
    let hw = HardwareCatalog::paper();
    let series = figures::fig7_curves(&hw, &[os.r, user.r], 1e-3, 1.0, 13);
    print!("{}", render::series_table("ops/sec", &series));

    println!("\n== breakeven shift ==");
    for (label, r) in [
        ("OS path (measured R)", os.r),
        ("user path (measured R)", user.r),
        ("paper OS R=9", 9.0),
        ("paper user R=5.8", 5.8),
    ] {
        let ti = breakeven::ti_seconds(&hw.with_r(r));
        println!("  {label:<26} Ti = {ti:6.1} s");
    }
    println!("\nShape: a shorter I/O path lowers the SS line's slope, cutting costs");
    println!("over the whole rate range and moving the MM/SS crossover left — pages");
    println!("can be evicted sooner at the same cost (§7.1.1, Figure 7).");
}
