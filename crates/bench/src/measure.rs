//! Timing utilities for the reproduction experiments.

use std::time::{Duration, Instant};

/// Accumulates per-operation CPU time, excluding untimed maintenance work
/// between operations (e.g. re-evicting a page so the next run sees the
/// same cache state).
#[derive(Debug, Default)]
pub struct OpTimer {
    total: Duration,
    ops: u64,
}

impl OpTimer {
    /// A fresh timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time one operation.
    #[inline]
    pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let r = f();
        self.total += start.elapsed();
        self.ops += 1;
        r
    }

    /// Operations timed.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mean seconds per operation.
    pub fn secs_per_op(&self) -> f64 {
        if self.ops == 0 {
            return 0.0;
        }
        self.total.as_secs_f64() / self.ops as f64
    }

    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        let s = self.secs_per_op();
        if s == 0.0 {
            0.0
        } else {
            1.0 / s
        }
    }
}

/// Throughput of `f` called `n` times (wall clock, no per-op exclusions).
pub fn measure_ops(n: u64, mut f: impl FnMut(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        f(i);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

/// Result of one mixed-workload run at a target SS fraction.
#[derive(Debug, Clone, Copy)]
pub struct MixedRunResult {
    /// Requested fraction of SS operations.
    pub target_f: f64,
    /// Fraction actually observed (from tree counters).
    pub observed_f: f64,
    /// Measured throughput in ops/sec (per core).
    pub ops_per_sec: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_counts_and_averages() {
        let mut t = OpTimer::new();
        for _ in 0..10 {
            t.time(|| std::hint::black_box(dcs_flashsim::do_cpu_work(1000)));
        }
        assert_eq!(t.ops(), 10);
        assert!(t.secs_per_op() > 0.0);
        assert!(t.ops_per_sec() > 0.0);
    }

    #[test]
    fn empty_timer_is_zero() {
        let t = OpTimer::new();
        assert_eq!(t.secs_per_op(), 0.0);
        assert_eq!(t.ops_per_sec(), 0.0);
    }

    #[test]
    fn measure_ops_positive() {
        let rate = measure_ops(1000, |i| {
            std::hint::black_box(i * 2);
        });
        assert!(rate > 0.0);
    }
}
