//! System construction for experiments.

use dcs_bwtree::{BwTree, BwTreeConfig, PageId, ResidencyState};
use dcs_flashsim::{DeviceConfig, FlashDevice, IoPathKind, VirtualClock};
use dcs_llama::{LogStructuredStore, LssConfig};
use dcs_workload::keys;
use std::sync::Arc;

/// A Bw-tree over LLAMA over the simulated SSD, ready for measurement.
pub struct TreeUnderTest {
    /// The tree.
    pub tree: Arc<BwTree>,
    /// Its log-structured store.
    pub lss: Arc<LogStructuredStore>,
    /// The device.
    pub device: Arc<FlashDevice>,
    /// Number of records loaded.
    pub records: u64,
    /// Value payload length.
    pub value_len: usize,
}

/// A device with a chosen I/O execution-path model. The clock does not
/// advance on I/O (experiments measure real CPU time; virtual time is for
/// the cost model, not these runs).
pub fn standard_device(path: IoPathKind, clock: VirtualClock) -> Arc<FlashDevice> {
    Arc::new(FlashDevice::with_clock(
        DeviceConfig {
            segment_bytes: 1 << 20,
            segment_count: 4096,
            advance_clock_on_io: false,
            io_path: path.model(),
            ..DeviceConfig::paper_ssd()
        },
        clock,
    ))
}

/// Build and load a tree with `records` records of `value_len`-byte values.
pub fn load_tree(records: u64, value_len: usize, path: IoPathKind) -> TreeUnderTest {
    let clock = VirtualClock::new();
    let device = standard_device(path, clock);
    let lss = Arc::new(LogStructuredStore::new(
        device.clone(),
        LssConfig {
            flush_buffer_bytes: 256 << 10,
            ..LssConfig::default()
        },
    ));
    let tree = Arc::new(BwTree::with_store(BwTreeConfig::default(), lss.clone()));
    for id in 0..records {
        tree.put(
            bytes::Bytes::copy_from_slice(&keys::encode(id)),
            bytes::Bytes::from(keys::value_for(id, 0, value_len)),
        );
    }
    TreeUnderTest {
        tree,
        lss,
        device,
        records,
        value_len,
    }
}

/// Evict (approximately) the given fraction of leaves, chosen evenly
/// across the key space. Returns the evicted PIDs.
pub fn evict_fraction_of_leaves(tree: &BwTree, fraction: f64) -> Vec<PageId> {
    let leaves: Vec<PageId> = tree
        .pages()
        .into_iter()
        .filter(|p| p.is_leaf && p.residency == ResidencyState::Resident)
        .map(|p| p.pid)
        .collect();
    let want = ((leaves.len() as f64) * fraction).round() as usize;
    let mut evicted = Vec::with_capacity(want);
    if want == 0 {
        return evicted;
    }
    let step = (leaves.len() as f64 / want as f64).max(1.0);
    let mut cursor = 0.0f64;
    while evicted.len() < want && (cursor as usize) < leaves.len() {
        let pid = leaves[cursor as usize];
        if tree.evict_page(pid).is_ok() {
            evicted.push(pid);
        }
        cursor += step;
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_tree_is_readable() {
        let t = load_tree(1000, 32, IoPathKind::Free);
        assert_eq!(t.tree.count_entries(), 1000);
        let v = t.tree.get(&keys::encode(123)).expect("key exists");
        assert_eq!(keys::parse_value(&v), Some((123, 0)));
    }

    #[test]
    fn evict_fraction_hits_target() {
        let t = load_tree(20_000, 64, IoPathKind::Free);
        let total_leaves = t.tree.pages().iter().filter(|p| p.is_leaf).count();
        let evicted = evict_fraction_of_leaves(&t.tree, 0.5);
        let frac = evicted.len() as f64 / total_leaves as f64;
        assert!(
            (frac - 0.5).abs() < 0.1,
            "evicted {} of {} leaves",
            evicted.len(),
            total_leaves
        );
    }

    #[test]
    fn evict_zero_fraction_is_empty() {
        let t = load_tree(1000, 32, IoPathKind::Free);
        assert!(evict_fraction_of_leaves(&t.tree, 0.0).is_empty());
    }
}
