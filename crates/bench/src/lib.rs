//! Shared measurement infrastructure for the reproduction harness.
//!
//! Each paper figure/table has a binary in `src/bin/` that uses these
//! helpers to build calibrated systems, drive workloads, and time
//! operations. Criterion micro-benchmarks live in `benches/`.

pub mod baseline;
pub mod measure;
pub mod setup;

pub use baseline::FixedBlockStore;
pub use measure::{measure_ops, MixedRunResult, OpTimer};
pub use setup::{evict_fraction_of_leaves, load_tree, standard_device, TreeUnderTest};
