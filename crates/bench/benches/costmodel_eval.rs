//! Cost-model micro-benchmarks: equation evaluation and figure-series
//! generation are cheap enough to run inside a cache manager's sweep loop.

use criterion::{criterion_group, criterion_main, Criterion};
use dcs_costmodel::{breakeven, curves, figures, mixed, mm_vs_caching, HardwareCatalog};
use std::hint::black_box;

fn bench_equations(c: &mut Criterion) {
    let hw = HardwareCatalog::paper();
    c.bench_function("costmodel/eq6_breakeven_ti", |b| {
        b.iter(|| black_box(breakeven::ti_seconds(black_box(&hw))))
    });
    c.bench_function("costmodel/eq4_eq5_costs", |b| {
        b.iter(|| {
            black_box(curves::mm_cost(black_box(&hw), 0.5))
                + black_box(curves::ss_cost(black_box(&hw), 0.5))
        })
    });
    c.bench_function("costmodel/eq2_mixed_perf", |b| {
        b.iter(|| black_box(mixed::relative_performance(black_box(0.3), black_box(5.8))))
    });
    let cmp = mm_vs_caching::Comparison::paper();
    c.bench_function("costmodel/eq7_mm_vs_caching", |b| {
        b.iter(|| black_box(mm_vs_caching::ti_seconds(black_box(&hw), 6.1e9, &cmp)))
    });
}

fn bench_series(c: &mut Criterion) {
    let hw = HardwareCatalog::paper();
    c.bench_function("costmodel/fig2_series_100pts", |b| {
        b.iter(|| black_box(figures::fig2_curves(&hw, 1e-3, 1.0, 100)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_equations, bench_series
}
criterion_main!(benches);
