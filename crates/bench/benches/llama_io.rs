//! LLAMA I/O micro-benchmarks: page write/fetch under each I/O path model
//! and with/without compression — the per-I/O costs behind R and the CSS
//! operation.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_bwtree::{PageImage, PageStore};
use dcs_flashsim::{DeviceConfig, FlashDevice, IoPathKind, VirtualClock};
use dcs_llama::{Codec, LogStructuredStore, LssConfig};
use std::hint::black_box;
use std::sync::Arc;

fn page_image() -> PageImage {
    let entries = (0..30u32)
        .map(|i| {
            (
                Bytes::from(format!("user:{i:08}")),
                Bytes::from(format!("record-{i}-{}", "field=value;".repeat(8))),
            )
        })
        .collect();
    PageImage::base(entries, None, None)
}

fn store_with(path: IoPathKind, codec: Codec) -> Arc<LogStructuredStore> {
    let device = Arc::new(FlashDevice::with_clock(
        DeviceConfig {
            segment_bytes: 1 << 20,
            segment_count: 8192,
            advance_clock_on_io: false,
            io_path: path.model(),
            ..DeviceConfig::paper_ssd()
        },
        VirtualClock::new(),
    ));
    Arc::new(LogStructuredStore::new(
        device,
        LssConfig {
            codec,
            flush_buffer_bytes: 512 << 10,
            ..LssConfig::default()
        },
    ))
}

fn bench_fetch_by_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("llama/fetch_by_io_path");
    for path in [
        IoPathKind::Free,
        IoPathKind::UserLevel,
        IoPathKind::OsKernel,
    ] {
        let store = store_with(path, Codec::None);
        let img = page_image();
        let token = store.write(1, &img, None).expect("write");
        store.flush().expect("flush");
        group.bench_with_input(
            BenchmarkId::new("fetch", format!("{path:?}")),
            &path,
            |b, _| b.iter(|| black_box(store.fetch(1, token).expect("fetch"))),
        );
    }
    group.finish();
}

fn bench_fetch_by_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("llama/fetch_by_codec");
    for codec in [Codec::None, Codec::Lzss] {
        let store = store_with(IoPathKind::Free, codec);
        let img = page_image();
        let token = store.write(1, &img, None).expect("write");
        store.flush().expect("flush");
        group.bench_with_input(
            BenchmarkId::new("fetch", format!("{codec:?}")),
            &codec,
            |b, _| b.iter(|| black_box(store.fetch(1, token).expect("fetch"))),
        );
    }
    group.finish();
}

fn bench_buffered_write(c: &mut Criterion) {
    let store = store_with(IoPathKind::Free, Codec::None);
    let img = page_image();
    let mut pid = 0u64;
    c.bench_function("llama/buffered_page_write", |b| {
        b.iter(|| {
            pid += 1;
            black_box(store.write(pid % 10_000, &img, None).expect("write"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fetch_by_path, bench_fetch_by_codec, bench_buffered_write
}
criterion_main!(benches);
