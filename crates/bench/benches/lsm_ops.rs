//! LSM micro-benchmarks: blind-put cost (the §6.2 path) and read cost by
//! component depth.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use dcs_flashsim::{DeviceConfig, FlashDevice, IoPathKind, VirtualClock};
use dcs_lsm::{LsmConfig, LsmTree};
use dcs_workload::keys;
use std::hint::black_box;
use std::sync::Arc;

const RECORDS: u64 = 50_000;

fn test_tree() -> LsmTree {
    let device = Arc::new(FlashDevice::with_clock(
        DeviceConfig {
            segment_bytes: 1 << 20,
            segment_count: 4096,
            advance_clock_on_io: false,
            io_path: IoPathKind::Free.model(),
            ..DeviceConfig::paper_ssd()
        },
        VirtualClock::new(),
    ));
    LsmTree::new(device, LsmConfig::default())
}

fn bench_blind_puts(c: &mut Criterion) {
    let lsm = test_tree();
    let mut x = 1u64;
    c.bench_function("lsm/blind_put", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            lsm.put(
                Bytes::copy_from_slice(&keys::encode(x % RECORDS)),
                Bytes::from(vec![9u8; 100]),
            )
            .expect("put")
        })
    });
}

fn bench_memtable_reads(c: &mut Criterion) {
    let lsm = test_tree();
    for id in 0..10_000u64 {
        lsm.put(
            Bytes::copy_from_slice(&keys::encode(id)),
            Bytes::from(vec![1u8; 50]),
        )
        .unwrap();
    }
    let mut x = 3u64;
    c.bench_function("lsm/get_memtable_hot", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(lsm.get(&keys::encode(x % 1_000)).expect("get"))
        })
    });
}

fn bench_table_reads(c: &mut Criterion) {
    let lsm = test_tree();
    for id in 0..RECORDS {
        lsm.put(
            Bytes::copy_from_slice(&keys::encode(id)),
            Bytes::from(keys::value_for(id, 0, 100)),
        )
        .unwrap();
    }
    lsm.flush().unwrap();
    let mut x = 5u64;
    c.bench_function("lsm/get_from_tables", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(lsm.get(&keys::encode(x % RECORDS)).expect("get"))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_blind_puts, bench_memtable_reads, bench_table_reads
}
criterion_main!(benches);
