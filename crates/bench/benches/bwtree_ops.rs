//! Bw-tree micro-benchmarks: the per-operation costs the figures build on,
//! plus the consolidation-threshold ablation (DESIGN.md decision 1 — delta
//! chains vs update-in-place economics).

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_bwtree::{BwTree, BwTreeConfig};
use dcs_workload::keys;
use std::hint::black_box;

const RECORDS: u64 = 100_000;

fn loaded_tree(config: BwTreeConfig) -> BwTree {
    let tree = BwTree::in_memory(config);
    for id in 0..RECORDS {
        tree.put(
            Bytes::copy_from_slice(&keys::encode(id)),
            Bytes::from(keys::value_for(id, 0, 100)),
        );
    }
    tree
}

fn bench_point_reads(c: &mut Criterion) {
    let tree = loaded_tree(BwTreeConfig::default());
    let mut x = 7u64;
    c.bench_function("bwtree/get_warm", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(tree.get(&keys::encode(x % RECORDS)))
        })
    });
}

fn bench_upserts(c: &mut Criterion) {
    let tree = loaded_tree(BwTreeConfig::default());
    let mut x = 9u64;
    let value = Bytes::from(vec![7u8; 100]);
    c.bench_function("bwtree/put_overwrite", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            tree.put(
                Bytes::copy_from_slice(&keys::encode(x % RECORDS)),
                value.clone(),
            );
        })
    });
}

fn bench_scan(c: &mut Criterion) {
    let tree = loaded_tree(BwTreeConfig::default());
    let mut x = 3u64;
    c.bench_function("bwtree/scan_100", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let start = keys::encode(x % (RECORDS - 200));
            black_box(
                tree.range(&start, None)
                    .take(100)
                    .filter(|r| r.is_ok())
                    .count(),
            )
        })
    });
}

/// Ablation: the consolidation threshold trades read chain-walk cost
/// against consolidation (copy) cost — the knob behind delta updating.
fn bench_consolidation_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("bwtree/consolidate_threshold_ablation");
    for threshold in [2usize, 8, 32, 128] {
        let tree = loaded_tree(BwTreeConfig {
            consolidate_threshold: threshold,
            ..BwTreeConfig::default()
        });
        let value = Bytes::from(vec![1u8; 100]);
        let mut x = 11u64;
        group.bench_with_input(
            BenchmarkId::new("mixed_50_50", threshold),
            &threshold,
            |b, _| {
                b.iter(|| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let key = keys::encode(x % RECORDS);
                    if x.is_multiple_of(2) {
                        tree.put(Bytes::copy_from_slice(&key), value.clone());
                    } else {
                        black_box(tree.get(&key));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_point_reads, bench_upserts, bench_scan, bench_consolidation_threshold
}
criterion_main!(benches);
