//! MassTree micro-benchmarks: the Px numerator (per-read cost) and the
//! layer-descent cost for shared-prefix keys.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use dcs_masstree::MassTree;
use dcs_workload::keys;
use std::hint::black_box;

const RECORDS: u64 = 100_000;

fn bench_reads(c: &mut Criterion) {
    let tree = MassTree::new();
    for id in 0..RECORDS {
        tree.insert(
            Bytes::copy_from_slice(&keys::encode(id)),
            Bytes::from(keys::value_for(id, 0, 100)),
        );
    }
    let mut x = 5u64;
    c.bench_function("masstree/get_warm", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            black_box(tree.get(&keys::encode(x % RECORDS)))
        })
    });
}

fn bench_inserts(c: &mut Criterion) {
    let tree = MassTree::new();
    let mut id = 0u64;
    c.bench_function("masstree/insert_fresh", |b| {
        b.iter(|| {
            id += 1;
            tree.insert(
                Bytes::copy_from_slice(&keys::encode(id)),
                Bytes::from(vec![3u8; 100]),
            )
        })
    });
}

fn bench_deep_layers(c: &mut Criterion) {
    // Keys sharing a 24-byte prefix force descent through 3 trie layers.
    let tree = MassTree::new();
    let prefix = "p".repeat(24);
    for i in 0..10_000u32 {
        tree.insert(
            Bytes::from(format!("{prefix}{i:08}")),
            Bytes::from(vec![1u8; 32]),
        );
    }
    let mut x = 1u64;
    c.bench_function("masstree/get_3_layers_deep", |b| {
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = format!("{prefix}{:08}", x % 10_000);
            black_box(tree.get(key.as_bytes()))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_reads, bench_inserts, bench_deep_layers
}
criterion_main!(benches);
