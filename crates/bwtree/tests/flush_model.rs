//! Property test: the Bw-tree over a page store, under random interleaving
//! of record operations and every cache-management transition — flush,
//! evict-all, evict-base-keep-deltas — must stay equivalent to a
//! `BTreeMap`.

use bytes::Bytes;
use dcs_bwtree::{BwTree, BwTreeConfig, FlushKind, MemStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Put(u16, u8),
    BlindUpdate(u16, u8),
    Del(u16),
    Get(u16),
    FlushAll(FlushKindChoice),
    FlushOne(u16, FlushKindChoice),
    Scan(u16, u16),
}

#[derive(Debug, Clone, Copy)]
enum FlushKindChoice {
    Only,
    KeepDeltas,
    All,
}

impl FlushKindChoice {
    fn kind(self) -> FlushKind {
        match self {
            FlushKindChoice::Only => FlushKind::FlushOnly,
            FlushKindChoice::KeepDeltas => FlushKind::EvictBaseKeepDeltas,
            FlushKindChoice::All => FlushKind::EvictAll,
        }
    }
}

fn kind_strategy() -> impl Strategy<Value = FlushKindChoice> {
    prop_oneof![
        Just(FlushKindChoice::Only),
        Just(FlushKindChoice::KeepDeltas),
        Just(FlushKindChoice::All),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::Put(k % 256, v)),
        2 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| Op::BlindUpdate(k % 256, v)),
        2 => any::<u16>().prop_map(|k| Op::Del(k % 256)),
        5 => any::<u16>().prop_map(|k| Op::Get(k % 256)),
        1 => kind_strategy().prop_map(Op::FlushAll),
        2 => (any::<u16>(), kind_strategy()).prop_map(|(k, c)| Op::FlushOne(k % 256, c)),
        1 => (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Op::Scan(a % 256, b % 256)),
    ]
}

fn key(k: u16) -> Bytes {
    Bytes::from(format!("key{k:04}"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn tree_matches_model_under_cache_transitions(
        ops in proptest::collection::vec(op_strategy(), 1..250)
    ) {
        let store = Arc::new(MemStore::new());
        let tree = BwTree::with_store(BwTreeConfig::small_pages(), store);
        let mut model: BTreeMap<u16, u8> = BTreeMap::new();
        for op in &ops {
            match op {
                Op::Put(k, v) => {
                    tree.put(key(*k), Bytes::from(vec![*v]));
                    model.insert(*k, *v);
                }
                Op::BlindUpdate(k, v) => {
                    tree.blind_update(key(*k), Bytes::from(vec![*v]));
                    model.insert(*k, *v);
                }
                Op::Del(k) => {
                    tree.delete(key(*k));
                    model.remove(k);
                }
                Op::Get(k) => {
                    let expect = model.get(k).map(|v| Bytes::from(vec![*v]));
                    prop_assert_eq!(tree.get(&key(*k)), expect, "get {}", k);
                }
                Op::FlushAll(c) => {
                    for p in tree.pages() {
                        if p.is_leaf {
                            let _ = tree.flush_page(p.pid, c.kind());
                        }
                    }
                }
                Op::FlushOne(k, c) => {
                    let pid = tree.locate_leaf(&key(*k));
                    let _ = tree.flush_page(pid, c.kind());
                }
                Op::Scan(a, b) => {
                    let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
                    let got: Vec<u16> = tree
                        .range(&key(lo), Some(&key(hi)))
                        .map(|r| {
                            let (k, _) = r.expect("scan");
                            String::from_utf8(k[3..].to_vec())
                                .unwrap()
                                .parse()
                                .unwrap()
                        })
                        .collect();
                    let expect: Vec<u16> = model.range(lo..hi).map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, expect, "scan [{}, {})", lo, hi);
                }
            }
        }
        // Final full agreement.
        for (k, v) in &model {
            prop_assert_eq!(
                tree.get(&key(*k)),
                Some(Bytes::from(vec![*v])),
                "final {}",
                k
            );
        }
        prop_assert_eq!(tree.count_entries(), model.len());
        // Residency invariant: every page readable after a final mass evict.
        for p in tree.pages() {
            if p.is_leaf {
                let _ = tree.flush_page(p.pid, FlushKind::EvictAll);
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(
                tree.get(&key(*k)),
                Some(Bytes::from(vec![*v])),
                "post-evict {}",
                k
            );
        }
    }
}
