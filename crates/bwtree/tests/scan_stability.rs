//! Scan stability under concurrent structure modification: scans must
//! return ascending, duplicate-free keys and never miss a key that was
//! present for the scan's whole lifetime, while writers force splits,
//! merges, consolidations, and evictions underneath.

use bytes::Bytes;
use dcs_bwtree::{BwTree, BwTreeConfig, FlushKind, MemStore};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn key(i: u32) -> Bytes {
    Bytes::from(format!("key{i:06}"))
}

#[test]
fn scans_are_ordered_and_complete_under_churn() {
    let store = Arc::new(MemStore::new());
    let tree = Arc::new(BwTree::with_store(BwTreeConfig::small_pages(), store));

    // A stable band that no writer touches: scans must always see all of it.
    const STABLE_LO: u32 = 40_000;
    const STABLE_HI: u32 = 41_000;
    for i in STABLE_LO..STABLE_HI {
        tree.put(key(i), Bytes::from("stable"));
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Churners insert/delete around the stable band, forcing SMOs.
    for t in 0..3u32 {
        let tree = tree.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            let base = t * 10_000;
            let mut round = 0u32;
            while !stop.load(Ordering::Relaxed) {
                for i in 0..500 {
                    tree.put(key(base + i), Bytes::from(format!("r{round}")));
                }
                for i in 0..500 {
                    if (i + round).is_multiple_of(3) {
                        tree.delete(key(base + i));
                    }
                }
                round += 1;
            }
        }));
    }
    // An evictor keeps pushing pages to the store and back.
    {
        let tree = tree.clone();
        let stop = stop.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for p in tree.pages() {
                    if p.is_leaf && p.pid % 3 == 0 {
                        let _ = tree.flush_page(p.pid, FlushKind::EvictAll);
                    }
                }
                std::thread::yield_now();
            }
        }));
    }

    // Scanning thread: full scans and banded scans, checked each time.
    for _ in 0..60 {
        let all: Vec<Bytes> = tree.range(b"", None).map(|r| r.expect("scan").0).collect();
        assert!(
            all.windows(2).all(|w| w[0] < w[1]),
            "scan keys out of order / duplicated"
        );
        let stable: Vec<Bytes> = tree
            .range(&key(STABLE_LO), Some(&key(STABLE_HI)))
            .map(|r| r.expect("scan").0)
            .collect();
        assert_eq!(
            stable.len(),
            (STABLE_HI - STABLE_LO) as usize,
            "stable band lost keys mid-scan"
        );
    }

    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn merge_storm_leaves_scannable_tree() {
    // Grow, then collapse almost everything, many times; scans stay sane.
    let tree = BwTree::in_memory(BwTreeConfig::small_pages());
    for round in 0..5u32 {
        for i in 0..3_000u32 {
            tree.put(key(i), Bytes::from(format!("r{round}")));
        }
        for i in 0..3_000u32 {
            if i % 11 != 0 {
                tree.delete(key(i));
            }
        }
        // Drive consolidations (and thus merges) over the carnage.
        for i in (0..3_000u32).step_by(11) {
            tree.put(key(i), Bytes::from(format!("r{round}-keep")));
        }
        let survivors: Vec<Bytes> = tree.range(b"", None).map(|r| r.expect("scan").0).collect();
        assert_eq!(survivors.len(), 3_000usize.div_ceil(11), "round {round}");
        assert!(survivors.windows(2).all(|w| w[0] < w[1]));
    }
    assert!(
        tree.stats().leaf_merges > 0,
        "the storm should have merged pages"
    );
}

#[test]
fn merges_abort_cleanly_under_eviction_races() {
    // Interleave heavy deletion (merge pressure) with aggressive eviction:
    // absorb deltas must never land on flash-resident chains, and no data
    // may be lost either way.
    let store = Arc::new(MemStore::new());
    let tree = Arc::new(BwTree::with_store(BwTreeConfig::small_pages(), store));
    for i in 0..4_000u32 {
        tree.put(key(i), Bytes::from("seed"));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let evictor = {
        let tree = tree.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for p in tree.pages() {
                    if p.is_leaf {
                        let _ = tree.flush_page(p.pid, FlushKind::EvictAll);
                    }
                }
            }
        })
    };
    // Deletion storm with re-inserts to drive consolidation+merge attempts.
    for round in 0..6u32 {
        for i in 0..4_000u32 {
            if i % 9 != 0 {
                tree.delete(key(i));
            }
        }
        for i in (0..4_000u32).step_by(9) {
            tree.put(key(i), Bytes::from(format!("r{round}")));
        }
    }
    stop.store(true, Ordering::Relaxed);
    evictor.join().unwrap();
    // Survivors intact, deletions effective.
    for i in 0..4_000u32 {
        let got = tree.get(&key(i));
        if i % 9 == 0 {
            assert_eq!(got, Some(Bytes::from("r5")), "survivor {i}");
        } else {
            assert_eq!(got, None, "deleted {i} returned");
        }
    }
    let all: Vec<Bytes> = tree.range(b"", None).map(|r| r.expect("scan").0).collect();
    assert!(all.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(all.len(), 4_000usize.div_ceil(9));
}
