//! A latch-free Bw-tree (Levandoski, Lomet, Sengupta — ICDE 2013).
//!
//! The Bw-tree is the data component of Deuteronomy and the "data caching
//! system" of the paper this workspace reproduces. Its distinguishing
//! mechanics, all implemented here:
//!
//! * **Mapping table** ([`MappingTable`]): logical page ids (PIDs) indirect
//!   through a table of atomic words to the physical page representation.
//!   All page updates install with a single compare-and-swap on the PID's
//!   slot — no latches anywhere.
//! * **Delta updates**: updates *prepend* a delta record to the page's chain
//!   rather than modifying the page. Chains are folded into a fresh
//!   consolidated base page once they grow past a threshold.
//! * **Structure modification operations**: page splits are decomposed into
//!   atomic steps (child split delta, then parent index-entry delta), each a
//!   single CAS, with readers helping lagging steps along.
//! * **Blind updates** (§6.2 of the cost/performance paper): a delta can be
//!   prepended to a page whose base is *not in memory* — the mapping entry
//!   simply chains the delta above a flash-resident base reference. No read
//!   I/O is needed to update.
//! * **Record caching** (§6.3): eviction can drop only the base page and
//!   keep recent deltas in memory; reads served from those deltas avoid
//!   I/O entirely.
//! * **Page states for caching**: a page is `Resident` (base in memory),
//!   `Partial` (deltas in memory, base on flash) or `Evicted` (everything on
//!   flash). Movement between states is driven by a cache manager (see
//!   `dcs-llama`) through [`BwTree::flush_page`], [`BwTree::evict_page`] and
//!   friends; the tree fetches flash-resident bases through the
//!   [`PageStore`] trait on demand.
//!
//! Memory reclamation uses epoch-based reclamation from `dcs-ebr`: every
//! replaced chain is retired and freed only after all concurrent readers
//! have unpinned.
//!
//! # Example
//!
//! ```
//! use dcs_bwtree::{BwTree, BwTreeConfig};
//! use bytes::Bytes;
//!
//! let tree = BwTree::in_memory(BwTreeConfig::default());
//! tree.put(Bytes::from("k1"), Bytes::from("v1"));
//! assert_eq!(tree.get(b"k1"), Some(Bytes::from("v1")));
//! tree.delete(Bytes::from("k1"));
//! assert_eq!(tree.get(b"k1"), None);
//! ```

mod audit;
mod config;
mod delta;
mod iter;
mod mapping;
mod page;
mod stats;
mod store;
pub(crate) mod sync;
mod tree;

pub use audit::AuditReport;
pub use config::BwTreeConfig;
pub use iter::RangeIter;
pub use mapping::{MappingTable, PageId};
pub use page::PageCodecError;
pub use page::{DeltaOp, PageImage};
pub use stats::TreeStats;
pub use store::{MemStore, NullStore, PageStore, StoreError};
pub use tree::FlushKind;
pub use tree::{BwTree, PageInfo, RecoveredPage, ResidencyState, TreeError, TryGetAsync};
