//! Tree operation counters.
//!
//! These counters are what the reproduction harness reads to classify
//! operations as MM (main-memory) or SS (secondary-storage) — the paper's
//! two operation forms (§2.1) — and to account record-cache hits (§6.3) and
//! blind updates (§6.2).

use std::sync::atomic::{AtomicU64, Ordering};

/// Internal atomic counters.
#[derive(Default)]
pub(crate) struct StatsInner {
    pub gets: AtomicU64,
    pub puts: AtomicU64,
    pub deletes: AtomicU64,
    pub blind_updates: AtomicU64,
    pub mm_ops: AtomicU64,
    pub ss_ops: AtomicU64,
    pub record_cache_hits: AtomicU64,
    pub consolidations: AtomicU64,
    pub leaf_splits: AtomicU64,
    pub inner_splits: AtomicU64,
    pub leaf_merges: AtomicU64,
    pub full_flushes: AtomicU64,
    pub incremental_flushes: AtomicU64,
    pub evictions: AtomicU64,
    pub base_evictions: AtomicU64,
    pub fetches: AtomicU64,
}

macro_rules! bump {
    ($self:expr, $field:ident) => {
        // ORDERING: independent monotone counter; only aggregated by
        // snapshot(), which tolerates being a moment stale.
        $self.$field.fetch_add(1, Ordering::Relaxed)
    };
}

impl StatsInner {
    /// Count one main-memory operation, mirroring it into the process-wide
    /// cost ledger. SS ops are deliberately *not* mirrored here: they are
    /// attributed once, at the flash device every page fetch funnels
    /// through, so a tree-level mirror would double-count them.
    pub(crate) fn mm_op(&self) {
        // ORDERING: monotone counter; no other memory depends on it.
        self.mm_ops.fetch_add(1, Ordering::Relaxed);
        // SPAN: the tree operation that called this mirror holds the
        // open bwtree.* span; the mirror only forwards the count.
        dcs_telemetry::ledger().mm_op();
    }

    /// Count one background restructuring (consolidation or SMO) in the
    /// ledger's maintenance term.
    pub(crate) fn maintenance(&self) {
        // SPAN: the consolidation/SMO site holds the open maintenance
        // span; this helper only attributes the ledger count.
        dcs_telemetry::ledger().maintenance_op();
    }

    pub fn snapshot(&self) -> TreeStats {
        TreeStats {
            // ORDERING: independent monotone counters; a snapshot is
            // allowed to be a torn cross-field view (each field is
            // individually exact, the set is advisory).
            gets: self.gets.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            blind_updates: self.blind_updates.load(Ordering::Relaxed),
            mm_ops: self.mm_ops.load(Ordering::Relaxed),
            ss_ops: self.ss_ops.load(Ordering::Relaxed),
            record_cache_hits: self.record_cache_hits.load(Ordering::Relaxed),
            consolidations: self.consolidations.load(Ordering::Relaxed),
            leaf_splits: self.leaf_splits.load(Ordering::Relaxed),
            inner_splits: self.inner_splits.load(Ordering::Relaxed),
            leaf_merges: self.leaf_merges.load(Ordering::Relaxed),
            full_flushes: self.full_flushes.load(Ordering::Relaxed),
            incremental_flushes: self.incremental_flushes.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            base_evictions: self.base_evictions.load(Ordering::Relaxed),
            fetches: self.fetches.load(Ordering::Relaxed),
        }
    }
}

pub(crate) use bump;

/// A snapshot of a tree's operation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Point lookups issued.
    pub gets: u64,
    /// Upserts issued.
    pub puts: u64,
    /// Deletes issued.
    pub deletes: u64,
    /// Blind updates issued (no base fetch even when evicted).
    pub blind_updates: u64,
    /// Operations completed without any page-store fetch.
    pub mm_ops: u64,
    /// Operations that required at least one page-store fetch.
    pub ss_ops: u64,
    /// Reads answered from in-memory deltas above a flash-resident base.
    pub record_cache_hits: u64,
    /// Delta chains folded into new base pages.
    pub consolidations: u64,
    /// Leaf split SMOs completed.
    pub leaf_splits: u64,
    /// Inner split SMOs completed.
    pub inner_splits: u64,
    /// Leaf merge SMOs completed (right sibling absorbed into the left).
    pub leaf_merges: u64,
    /// Full page images written to the store.
    pub full_flushes: u64,
    /// Incremental (delta-only) images written to the store.
    pub incremental_flushes: u64,
    /// Full page evictions.
    pub evictions: u64,
    /// Base-only evictions (deltas kept as a record cache).
    pub base_evictions: u64,
    /// Page-store fetches (cache misses / swap-ins).
    pub fetches: u64,
}

impl TreeStats {
    /// Fraction of completed operations that touched secondary storage —
    /// the paper's `F` (§2.2).
    pub fn ss_fraction(&self) -> f64 {
        let total = self.mm_ops + self.ss_ops;
        if total == 0 {
            0.0
        } else {
            self.ss_ops as f64 / total as f64
        }
    }

    /// Difference between two snapshots (`self` - `earlier`).
    pub fn delta(&self, earlier: &TreeStats) -> TreeStats {
        TreeStats {
            gets: self.gets - earlier.gets,
            puts: self.puts - earlier.puts,
            deletes: self.deletes - earlier.deletes,
            blind_updates: self.blind_updates - earlier.blind_updates,
            mm_ops: self.mm_ops - earlier.mm_ops,
            ss_ops: self.ss_ops - earlier.ss_ops,
            record_cache_hits: self.record_cache_hits - earlier.record_cache_hits,
            consolidations: self.consolidations - earlier.consolidations,
            leaf_splits: self.leaf_splits - earlier.leaf_splits,
            inner_splits: self.inner_splits - earlier.inner_splits,
            leaf_merges: self.leaf_merges - earlier.leaf_merges,
            full_flushes: self.full_flushes - earlier.full_flushes,
            incremental_flushes: self.incremental_flushes - earlier.incremental_flushes,
            evictions: self.evictions - earlier.evictions,
            base_evictions: self.base_evictions - earlier.base_evictions,
            fetches: self.fetches - earlier.fetches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ss_fraction_basics() {
        let mut s = TreeStats::default();
        assert_eq!(s.ss_fraction(), 0.0);
        s.mm_ops = 90;
        s.ss_ops = 10;
        assert!((s.ss_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn delta_subtracts() {
        let a = TreeStats {
            gets: 10,
            mm_ops: 8,
            ss_ops: 2,
            ..Default::default()
        };
        let b = TreeStats {
            gets: 25,
            mm_ops: 20,
            ss_ops: 5,
            ..Default::default()
        };
        let d = b.delta(&a);
        assert_eq!(d.gets, 15);
        assert_eq!(d.mm_ops, 12);
        assert_eq!(d.ss_ops, 3);
    }
}
