//! The page-store boundary between the Bw-tree and its cache/storage layer.
//!
//! In Deuteronomy, the Bw-tree sits on LLAMA: the tree asks the storage
//! subsystem to persist page images and to fetch flash-resident pages on a
//! cache miss. This trait is that interface; `dcs-llama` implements it over
//! the simulated flash device, and tests can substitute simple in-memory
//! stores.

use crate::mapping::PageId;
use crate::page::PageImage;

/// Errors from a page store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The token does not name a live page (GC bug or corruption).
    UnknownToken(u64),
    /// The device failed the I/O.
    Io(String),
    /// Storage is full and garbage collection could not free space.
    Full,
    /// This tree was built without secondary storage
    /// ([`crate::BwTree::in_memory`]); eviction and fetch are unavailable.
    NoStore,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownToken(t) => write!(f, "unknown page token {t}"),
            StoreError::Io(e) => write!(f, "page store I/O error: {e}"),
            StoreError::Full => write!(f, "page store full"),
            StoreError::NoStore => write!(f, "tree has no secondary storage attached"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Secondary storage for Bw-tree pages.
///
/// Tokens are opaque `u64`s minted by the store. A *full* write persists a
/// complete base image; an *incremental* write (`prev = Some(token)`)
/// persists only a delta image that extends the page state at `prev` —
/// the log-structuring write-shrink of §6.1.
pub trait PageStore: Send + Sync {
    /// Persist `image` for `pid`. Returns the token for the page's new
    /// durable state. `prev` chains an incremental flush to the page's
    /// previous durable state.
    fn write(&self, pid: PageId, image: &PageImage, prev: Option<u64>) -> Result<u64, StoreError>;

    /// Materialize the full up-to-date base image for `token`, reading and
    /// folding every part of the page's flash chain.
    fn fetch(&self, pid: PageId, token: u64) -> Result<PageImage, StoreError>;

    /// Durably retire a page that no longer exists (merge SMOs): its parts
    /// become dead and recovery must not resurrect it. Default: no-op (for
    /// stores without durability semantics).
    fn retire_page(&self, _pid: PageId) -> Result<(), StoreError> {
        Ok(())
    }
}

/// A store that refuses all traffic: used by pure main-memory trees, where
/// eviction is a configuration error.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullStore;

impl PageStore for NullStore {
    fn write(
        &self,
        _pid: PageId,
        _image: &PageImage,
        _prev: Option<u64>,
    ) -> Result<u64, StoreError> {
        Err(StoreError::NoStore)
    }

    fn fetch(&self, _pid: PageId, _token: u64) -> Result<PageImage, StoreError> {
        Err(StoreError::NoStore)
    }
}

/// A trivial in-memory page store for tests: full fidelity (including
/// incremental flush chains) with no device underneath.
#[derive(Default)]
pub struct MemStore {
    parts: std::sync::Mutex<Vec<(PageImage, Option<u64>)>>,
}

impl MemStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of parts written so far.
    pub fn parts_written(&self) -> usize {
        self.parts.lock().unwrap().len()
    }
}

impl PageStore for MemStore {
    fn write(&self, _pid: PageId, image: &PageImage, prev: Option<u64>) -> Result<u64, StoreError> {
        let mut parts = self.parts.lock().unwrap();
        parts.push((image.clone(), prev));
        Ok(parts.len() as u64 - 1)
    }

    fn fetch(&self, _pid: PageId, token: u64) -> Result<PageImage, StoreError> {
        let parts = self.parts.lock().unwrap();
        // Collect the chain newest → oldest, then fold oldest-up.
        let mut chain = Vec::new();
        let mut cur = Some(token);
        while let Some(t) = cur {
            let (img, prev) = parts.get(t as usize).ok_or(StoreError::UnknownToken(t))?;
            chain.push(img.clone());
            cur = *prev;
        }
        let mut base = chain.pop().ok_or(StoreError::UnknownToken(token))?;
        if base.is_delta {
            return Err(StoreError::Io("chain bottom is a delta part".into()));
        }
        for delta in chain.into_iter().rev() {
            base.apply_delta(&delta);
        }
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DeltaOp;
    use bytes::Bytes;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn null_store_refuses() {
        let s = NullStore;
        assert_eq!(
            s.write(0, &PageImage::base(vec![], None, None), None),
            Err(StoreError::NoStore)
        );
        assert_eq!(s.fetch(0, 0), Err(StoreError::NoStore));
    }

    #[test]
    fn memstore_roundtrip() {
        let s = MemStore::new();
        let img = PageImage::base(vec![(b("a"), b("1"))], None, None);
        let t = s.write(1, &img, None).unwrap();
        assert_eq!(s.fetch(1, t).unwrap(), img);
    }

    #[test]
    fn memstore_incremental_chain_folds() {
        let s = MemStore::new();
        let base = PageImage::base(vec![(b("a"), b("1")), (b("b"), b("2"))], None, None);
        let t0 = s.write(1, &base, None).unwrap();
        let d1 = PageImage::delta(vec![DeltaOp::Put(b("c"), b("3"))], None, None);
        let t1 = s.write(1, &d1, Some(t0)).unwrap();
        let d2 = PageImage::delta(vec![DeltaOp::Del(b("a"))], None, None);
        let t2 = s.write(1, &d2, Some(t1)).unwrap();

        let img = s.fetch(1, t2).unwrap();
        assert_eq!(img.entries, vec![(b("b"), b("2")), (b("c"), b("3"))]);
        // Older tokens still fetch older states.
        assert_eq!(s.fetch(1, t0).unwrap().entries.len(), 2);
    }

    #[test]
    fn memstore_unknown_token() {
        let s = MemStore::new();
        assert_eq!(s.fetch(0, 99), Err(StoreError::UnknownToken(99)));
    }
}
