//! Structural invariant auditor for the Bw-tree.
//!
//! [`BwTree::audit`] walks the whole logical tree through the mapping table
//! and cross-checks the invariants that latch-free updates are supposed to
//! preserve:
//!
//! * **key order** — consolidated leaf/absorb entries strictly sorted and
//!   inside the page's fence (`< high_key`); inner separators strictly
//!   sorted;
//! * **chain discipline** — leaf chains hold only leaf-kind deltas and end
//!   in a leaf base, inner chains likewise; chain length stays within a
//!   generous multiple of the consolidation threshold (a runaway chain
//!   means consolidation can no longer win its CAS);
//! * **mapping-table hygiene** — every PID referenced by a reachable page
//!   is itself reachable and not on the free list, every allocated PID is
//!   reachable from the root (no leaked pages), and no reachable slot is
//!   empty.
//!
//! The audit is compiled in every build (it has no checker dependency) and
//! is intended to be called at *quiescence*: after worker threads joined in
//! a test, or under the deterministic checker at the end of a scenario. It
//! takes a guard so chain walks are safe against any straggling reclaim.

use crate::delta::{chain_iter, Node};
use crate::mapping::PageId;
use crate::tree::BwTree;
use dcs_ebr::Guard;
use std::collections::{BTreeSet, VecDeque};

/// Summary of a successful audit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Pages reachable from the root (including via sibling links).
    pub reachable_pages: usize,
    /// Leaf pages seen.
    pub leaf_pages: usize,
    /// Inner pages seen.
    pub inner_pages: usize,
    /// Longest delta chain encountered.
    pub max_chain_len: usize,
    /// Total records in consolidated leaf bases (excludes un-consolidated
    /// put/del deltas — a structural count, not a logical one).
    pub base_records: usize,
}

impl BwTree {
    /// Audit structural invariants; see the module docs. `Err` carries a
    /// human-readable description of the first violation found.
    ///
    /// Call at quiescence: concurrent structure modifications can make the
    /// audit report transient states as violations.
    pub fn audit(&self, guard: &Guard) -> Result<AuditReport, String> {
        let _ = guard; // the pin itself is what we need; keeps chains live
        let mapping = self.mapping();
        let mut report = AuditReport::default();
        // Chains can legitimately exceed the consolidation threshold (a
        // consolidation that loses its CAS simply retries later), but not by
        // an unbounded amount at quiescence.
        let chain_limit = self.config().consolidate_threshold * 4 + 16;

        let mut queue = VecDeque::new();
        let mut visited = BTreeSet::new();
        queue.push_back(self.root_pid());
        visited.insert(self.root_pid());

        let enqueue = |pid: PageId,
                       from: PageId,
                       queue: &mut VecDeque<PageId>,
                       visited: &mut BTreeSet<PageId>|
         -> Result<(), String> {
            if pid as usize >= mapping.capacity() {
                return Err(format!("page {from} references out-of-range pid {pid}"));
            }
            if visited.insert(pid) {
                queue.push_back(pid);
            }
            Ok(())
        };

        while let Some(pid) = queue.pop_front() {
            let head = mapping.load(pid);
            if head.is_null() {
                return Err(format!(
                    "pid {pid} is reachable but its mapping slot is empty"
                ));
            }
            report.reachable_pages += 1;
            let mut chain_len = 0usize;
            let mut base_kind: Option<bool> = None; // Some(true) = leaf
            let mut delta_is_leaf: Option<bool> = None;
            // SAFETY: `head` was loaded from the mapping table under `guard`,
            // so the chain is live for the duration of this walk.
            for node in unsafe { chain_iter(head) } {
                chain_len += 1;
                if chain_len > chain_limit {
                    return Err(format!(
                        "pid {pid}: delta chain exceeds {chain_limit} nodes — runaway chain"
                    ));
                }
                match node {
                    Node::Put { .. } | Node::Del { .. } => {
                        delta_is_leaf = Some(true);
                    }
                    Node::LeafSplit { right, .. } => {
                        delta_is_leaf = Some(true);
                        enqueue(*right, pid, &mut queue, &mut visited)?;
                    }
                    Node::Absorb {
                        sep,
                        entries,
                        high_key,
                        right,
                        ..
                    } => {
                        delta_is_leaf = Some(true);
                        check_sorted_in_fence(pid, "absorb", entries.iter().map(|(k, _)| k))?;
                        for (k, _) in entries {
                            if k < sep {
                                return Err(format!("pid {pid}: absorb entry below its separator"));
                            }
                            if let Some(h) = high_key {
                                if k >= h {
                                    return Err(format!(
                                        "pid {pid}: absorb entry at/above high key"
                                    ));
                                }
                            }
                        }
                        if let Some(r) = right {
                            enqueue(*r, pid, &mut queue, &mut visited)?;
                        }
                    }
                    Node::FlushMarker { .. } => {}
                    Node::RemoveNode { left, .. } => {
                        enqueue(*left, pid, &mut queue, &mut visited)?;
                    }
                    Node::IndexInsert { child, .. } => {
                        delta_is_leaf = Some(false);
                        enqueue(*child, pid, &mut queue, &mut visited)?;
                    }
                    Node::IndexDelete { .. } => {
                        delta_is_leaf = Some(false);
                    }
                    Node::InnerSplit { right, .. } => {
                        delta_is_leaf = Some(false);
                        enqueue(*right, pid, &mut queue, &mut visited)?;
                    }
                    Node::LeafBase(base) => {
                        base_kind = Some(true);
                        check_sorted_in_fence(
                            pid,
                            "leaf base",
                            base.entries.iter().map(|(k, _)| k),
                        )?;
                        if let Some(h) = &base.high_key {
                            if let Some((k, _)) = base.entries.last() {
                                if k >= h {
                                    return Err(format!(
                                        "pid {pid}: leaf base entry at/above high key"
                                    ));
                                }
                            }
                        }
                        report.base_records += base.entries.len();
                        if let Some(r) = base.right {
                            enqueue(r, pid, &mut queue, &mut visited)?;
                        }
                    }
                    Node::FlashBase { right, .. } => {
                        base_kind = Some(true);
                        if let Some(r) = right {
                            enqueue(*r, pid, &mut queue, &mut visited)?;
                        }
                    }
                    Node::InnerBase(base) => {
                        base_kind = Some(false);
                        check_sorted_in_fence(
                            pid,
                            "inner base",
                            base.entries.iter().map(|(k, _)| k),
                        )?;
                        enqueue(base.first_child, pid, &mut queue, &mut visited)?;
                        for (_, child) in &base.entries {
                            enqueue(*child, pid, &mut queue, &mut visited)?;
                        }
                        if let Some(r) = base.right {
                            enqueue(r, pid, &mut queue, &mut visited)?;
                        }
                    }
                }
            }
            let is_leaf = match base_kind {
                Some(kind) => kind,
                None => {
                    return Err(format!("pid {pid}: chain has no base node"));
                }
            };
            if let Some(delta_kind) = delta_is_leaf {
                if delta_kind != is_leaf {
                    return Err(format!(
                        "pid {pid}: {} deltas stacked on {} base",
                        if delta_kind { "leaf" } else { "inner" },
                        if is_leaf { "leaf" } else { "inner" },
                    ));
                }
            }
            if is_leaf {
                report.leaf_pages += 1;
            } else {
                report.inner_pages += 1;
            }
            report.max_chain_len = report.max_chain_len.max(chain_len);
        }

        // Mapping-table hygiene: reachable ∩ free list = ∅, and every
        // populated slot is reachable (no leaked pages).
        let free: BTreeSet<PageId> = mapping.free_pids().into_iter().collect();
        if let Some(pid) = visited.intersection(&free).next() {
            return Err(format!("pid {pid} is reachable but sits on the free list"));
        }
        for pid in 0..mapping.high_water() {
            let populated = !mapping.load(pid).is_null();
            if populated && !visited.contains(&pid) {
                return Err(format!(
                    "pid {pid} holds a chain but is unreachable from the root — leaked page"
                ));
            }
            if !populated && !free.contains(&pid) && visited.contains(&pid) {
                // Already reported above as empty reachable slot; defensive.
                return Err(format!("pid {pid} reachable with empty slot"));
            }
        }
        Ok(report)
    }
}

fn check_sorted_in_fence<'a>(
    pid: PageId,
    what: &str,
    keys: impl Iterator<Item = &'a bytes::Bytes>,
) -> Result<(), String> {
    let mut prev: Option<&bytes::Bytes> = None;
    for k in keys {
        if let Some(p) = prev {
            if p >= k {
                return Err(format!("pid {pid}: {what} keys not strictly sorted"));
            }
        }
        prev = Some(k);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::tree::BwTree;
    use crate::BwTreeConfig;

    #[test]
    fn empty_tree_audits_clean() {
        let tree = BwTree::in_memory(BwTreeConfig::small_pages());
        let guard = dcs_ebr::pin();
        let report = tree.audit(&guard).unwrap();
        assert!(report.reachable_pages >= 1);
        assert_eq!(report.base_records, 0);
    }

    #[test]
    fn populated_tree_audits_clean() {
        let tree = BwTree::in_memory(BwTreeConfig::small_pages());
        let n = 500;
        for i in 0..n {
            let k = format!("key{i:05}");
            tree.put(k.into_bytes(), b"v".to_vec());
        }
        // Deletes and overwrites exercise del deltas and consolidation.
        for i in (0..n).step_by(3) {
            let k = format!("key{i:05}");
            tree.delete(k.into_bytes());
        }
        let guard = dcs_ebr::pin();
        let report = tree.audit(&guard).unwrap();
        assert!(report.leaf_pages >= 1);
        assert!(report.inner_pages >= 1, "500 keys should split the root");
        assert!(report.max_chain_len >= 1);
    }
}
