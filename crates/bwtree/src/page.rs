//! Page images: the serialized form pages take on secondary storage.
//!
//! LLAMA (the cache/storage subsystem) stores pages as *parts*: a base part
//! holding a consolidated page, optionally followed over time by delta parts
//! holding only the updates since the previous flush (§6.1, Figure 5 —
//! "need only store delta updates when the base page has previously been
//! stored"). A [`PageImage`] is one such part in memory; the binary codec
//! here is what actually travels to the flash device.

use bytes::Bytes;

/// One logical record operation inside a delta part.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// Upsert of `key` to `value`.
    Put(Bytes, Bytes),
    /// Deletion of `key`.
    Del(Bytes),
}

impl DeltaOp {
    /// The key this op addresses.
    pub fn key(&self) -> &Bytes {
        match self {
            DeltaOp::Put(k, _) | DeltaOp::Del(k) => k,
        }
    }
}

/// An in-memory page part, ready to serialize or just deserialized.
///
/// *Base* images carry the full sorted record set (`entries`) and page
/// fencing; *delta* images carry only `ops` (newest first) and must be
/// applied over an older image.
#[derive(Debug, Clone, PartialEq)]
pub struct PageImage {
    /// Sorted records (base images; empty for delta images).
    pub entries: Vec<(Bytes, Bytes)>,
    /// Update ops newest-first (delta images; empty for base images).
    pub ops: Vec<DeltaOp>,
    /// Exclusive high fence key; `None` = +∞.
    pub high_key: Option<Bytes>,
    /// Right sibling PID (u64::MAX encodes "none").
    pub right: Option<u64>,
    /// True if this is a delta-only part.
    pub is_delta: bool,
}

impl PageImage {
    /// A base image over sorted entries.
    pub fn base(entries: Vec<(Bytes, Bytes)>, high_key: Option<Bytes>, right: Option<u64>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "unsorted base");
        PageImage {
            entries,
            ops: Vec::new(),
            high_key,
            right,
            is_delta: false,
        }
    }

    /// A delta image of `ops`, newest first.
    pub fn delta(ops: Vec<DeltaOp>, high_key: Option<Bytes>, right: Option<u64>) -> Self {
        PageImage {
            entries: Vec::new(),
            ops,
            high_key,
            right,
            is_delta: true,
        }
    }

    /// Payload bytes this image will occupy on storage (excluding framing).
    pub fn payload_bytes(&self) -> usize {
        let e: usize = self.entries.iter().map(|(k, v)| k.len() + v.len()).sum();
        let o: usize = self
            .ops
            .iter()
            .map(|op| match op {
                DeltaOp::Put(k, v) => k.len() + v.len(),
                DeltaOp::Del(k) => k.len(),
            })
            .sum();
        e + o
    }

    /// Apply a newer delta image over this (base) image, producing the
    /// up-to-date base. `self` must be a base image; `delta` a delta image.
    pub fn apply_delta(&mut self, delta: &PageImage) {
        debug_assert!(!self.is_delta && delta.is_delta);
        // Ops are newest-first; the first op for a key wins. Walk oldest →
        // newest so later (newer) ops overwrite earlier ones.
        for op in delta.ops.iter().rev() {
            match op {
                DeltaOp::Put(k, v) => match self.entries.binary_search_by(|(ek, _)| ek.cmp(k)) {
                    Ok(i) => self.entries[i].1 = v.clone(),
                    Err(i) => self.entries.insert(i, (k.clone(), v.clone())),
                },
                DeltaOp::Del(k) => {
                    if let Ok(i) = self.entries.binary_search_by(|(ek, _)| ek.cmp(k)) {
                        self.entries.remove(i);
                    }
                }
            }
        }
        self.high_key = delta.high_key.clone();
        self.right = delta.right;
    }

    /// Serialize to the on-flash byte format.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_bytes() + 64);
        out.push(if self.is_delta { 1u8 } else { 0u8 });
        match &self.high_key {
            Some(hk) => {
                out.push(1);
                out.extend_from_slice(&(hk.len() as u32).to_le_bytes());
                out.extend_from_slice(hk);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.right.unwrap_or(u64::MAX).to_le_bytes());
        if self.is_delta {
            out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
            for op in &self.ops {
                match op {
                    DeltaOp::Put(k, v) => {
                        out.push(0);
                        put_bytes(&mut out, k);
                        put_bytes(&mut out, v);
                    }
                    DeltaOp::Del(k) => {
                        out.push(1);
                        put_bytes(&mut out, k);
                    }
                }
            }
        } else {
            out.extend_from_slice(&(self.entries.len() as u32).to_le_bytes());
            for (k, v) in &self.entries {
                put_bytes(&mut out, k);
                put_bytes(&mut out, v);
            }
        }
        out
    }

    /// Deserialize from [`PageImage::serialize`] output.
    ///
    /// Performs one block copy of `buf`; all keys and values are zero-copy
    /// reference-counted slices into it (this keeps the SS-operation CPU
    /// cost — the paper's R — dominated by the I/O path, not by per-record
    /// allocation).
    pub fn deserialize(buf: &[u8]) -> Result<Self, PageCodecError> {
        let owned = Bytes::copy_from_slice(buf);
        Self::deserialize_owned(owned)
    }

    /// Zero-copy variant of [`PageImage::deserialize`] for callers that
    /// already hold the bytes.
    pub fn deserialize_owned(owned: Bytes) -> Result<Self, PageCodecError> {
        let mut cur = Cursor {
            buf: &owned,
            pos: 0,
        };
        let is_delta = cur.u8()? == 1;
        let high_key = if cur.u8()? == 1 {
            Some(cur.bytes_field()?)
        } else {
            None
        };
        let right_raw = cur.u64()?;
        let right = if right_raw == u64::MAX {
            None
        } else {
            Some(right_raw)
        };
        let n = cur.u32()? as usize;
        if is_delta {
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = cur.u8()?;
                let k = cur.bytes_field()?;
                match tag {
                    0 => {
                        let v = cur.bytes_field()?;
                        ops.push(DeltaOp::Put(k, v));
                    }
                    1 => ops.push(DeltaOp::Del(k)),
                    t => return Err(PageCodecError::BadTag(t)),
                }
            }
            Ok(PageImage::delta(ops, high_key, right))
        } else {
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let k = cur.bytes_field()?;
                let v = cur.bytes_field()?;
                entries.push((k, v));
            }
            Ok(PageImage {
                entries,
                ops: Vec::new(),
                high_key,
                right,
                is_delta: false,
            })
        }
    }
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Codec failures (corrupt or truncated page bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageCodecError {
    /// The buffer ended before the structure did.
    Truncated,
    /// An unknown op tag was encountered.
    BadTag(u8),
}

impl std::fmt::Display for PageCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageCodecError::Truncated => write!(f, "page bytes truncated"),
            PageCodecError::BadTag(t) => write!(f, "unknown page op tag {t}"),
        }
    }
}

impl std::error::Error for PageCodecError {}

struct Cursor<'a> {
    buf: &'a Bytes,
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PageCodecError> {
        if self.pos + n > self.buf.len() {
            return Err(PageCodecError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PageCodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, PageCodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> Result<u64, PageCodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
    /// Zero-copy: a refcounted slice of the underlying buffer.
    fn bytes_field(&mut self) -> Result<Bytes, PageCodecError> {
        let len = self.u32()? as usize;
        if self.pos + len > self.buf.len() {
            return Err(PageCodecError::Truncated);
        }
        let out = self.buf.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    #[test]
    fn base_roundtrip() {
        let img = PageImage::base(
            vec![(b("a"), b("1")), (b("bb"), b("22"))],
            Some(b("zz")),
            Some(17),
        );
        let bytes = img.serialize();
        assert_eq!(PageImage::deserialize(&bytes).unwrap(), img);
    }

    #[test]
    fn delta_roundtrip() {
        let img = PageImage::delta(
            vec![DeltaOp::Put(b("k"), b("v")), DeltaOp::Del(b("x"))],
            None,
            None,
        );
        let bytes = img.serialize();
        assert_eq!(PageImage::deserialize(&bytes).unwrap(), img);
    }

    #[test]
    fn empty_base_roundtrip() {
        let img = PageImage::base(vec![], None, None);
        assert_eq!(PageImage::deserialize(&img.serialize()).unwrap(), img);
    }

    #[test]
    fn apply_delta_newest_wins() {
        let mut base = PageImage::base(vec![(b("a"), b("old")), (b("c"), b("3"))], None, None);
        let delta = PageImage::delta(
            vec![
                DeltaOp::Put(b("a"), b("newest")), // newest first
                DeltaOp::Put(b("a"), b("middle")),
                DeltaOp::Del(b("c")),
                DeltaOp::Put(b("b"), b("2")),
            ],
            Some(b("m")),
            Some(5),
        );
        base.apply_delta(&delta);
        assert_eq!(base.entries, vec![(b("a"), b("newest")), (b("b"), b("2"))]);
        assert_eq!(base.high_key, Some(b("m")));
        assert_eq!(base.right, Some(5));
    }

    #[test]
    fn truncated_bytes_detected() {
        let img = PageImage::base(vec![(b("key"), b("value"))], None, None);
        let bytes = img.serialize();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(
                PageImage::deserialize(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_tag_detected() {
        let img = PageImage::delta(vec![DeltaOp::Del(b("k"))], None, None);
        let mut bytes = img.serialize();
        // Tag byte follows header (1) + high-key flag (1) + right (8) + count (4).
        bytes[14] = 9;
        assert_eq!(
            PageImage::deserialize(&bytes),
            Err(PageCodecError::BadTag(9))
        );
    }

    #[test]
    fn payload_bytes_counts_keys_and_values() {
        let img = PageImage::base(vec![(b("ab"), b("cde"))], None, None);
        assert_eq!(img.payload_bytes(), 5);
        let d = PageImage::delta(vec![DeltaOp::Del(b("xyz"))], None, None);
        assert_eq!(d.payload_bytes(), 3);
    }
}
