//! Facade over the synchronization primitives this crate uses.
//!
//! Default build: `std::sync` re-exports, zero cost. With the `check`
//! feature: the instrumented shims from `dcs-check`, turning every atomic
//! access on the mapping table and tree hot paths into a schedule point for
//! the deterministic interleaving checker.
//!
//! `stats.rs` deliberately keeps plain `std` atomics: statistics counters
//! cannot affect correctness, and instrumenting them would only inflate the
//! schedule space the checker must explore.

#[cfg(feature = "check")]
pub use dcs_check::sync::{AtomicPtr, AtomicU64, Mutex, Ordering};

#[cfg(not(feature = "check"))]
pub use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
#[cfg(not(feature = "check"))]
pub use std::sync::Mutex;
