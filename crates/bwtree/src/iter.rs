//! Range scans.
//!
//! A scan walks the leaf level through sibling links, snapshotting one leaf
//! at a time. Each leaf snapshot is a merged view of its chain at the moment
//! it is visited; the scan is therefore *not* a point-in-time snapshot of
//! the whole tree (standard for latch-free B-link designs), but every record
//! returned was live at the moment its leaf was read, and keys arrive in
//! strictly ascending order with no duplicates.

use crate::tree::{BwTree, TreeError};
use bytes::Bytes;

/// Iterator over `[start, end)` in key order.
pub struct RangeIter<'t> {
    tree: &'t BwTree,
    /// Records of the current leaf snapshot not yet yielded.
    buffer: std::vec::IntoIter<(Bytes, Bytes)>,
    /// Next key to resume from (exclusive lower bound handled by filtering).
    cursor: Option<Bytes>,
    /// Exclusive upper bound.
    end: Option<Bytes>,
    done: bool,
    /// Deferred store error (surfaced as the last item).
    error: Option<TreeError>,
}

impl BwTree {
    /// Scan keys in `[start, end)`; `end = None` scans to the end of the
    /// key space. Evicted leaves are faulted in as the scan reaches them.
    pub fn range(&self, start: &[u8], end: Option<&[u8]>) -> RangeIter<'_> {
        RangeIter {
            tree: self,
            buffer: Vec::new().into_iter(),
            cursor: Some(Bytes::copy_from_slice(start)),
            end: end.map(Bytes::copy_from_slice),
            done: false,
            error: None,
        }
    }

    /// Count all records (full scan).
    pub fn count_entries(&self) -> usize {
        self.range(b"", None).fold(0, |n, r| {
            r.expect("scan failed");
            n + 1
        })
    }

    /// Snapshot the merged contents of the leaf owning `key`, plus the key
    /// to resume from (the leaf's high key).
    fn leaf_snapshot(&self, key: &[u8]) -> Result<crate::tree::LeafSnapshot, TreeError> {
        // Ensure the owning leaf is resident, then snapshot it via the read
        // path helpers: a get on the first key in range faults it in. We use
        // the internal snapshot entry point for this.
        self.snapshot_leaf_for_scan(key)
    }
}

impl Iterator for RangeIter<'_> {
    type Item = Result<(Bytes, Bytes), TreeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if let Some(e) = self.error.take() {
            self.done = true;
            return Some(Err(e));
        }
        loop {
            if self.done {
                return None;
            }
            if let Some((k, v)) = self.buffer.next() {
                if let Some(end) = &self.end {
                    if k >= *end {
                        self.done = true;
                        return None;
                    }
                }
                return Some(Ok((k, v)));
            }
            // Refill from the next leaf.
            let Some(cursor) = self.cursor.clone() else {
                self.done = true;
                return None;
            };
            if let Some(end) = &self.end {
                if cursor >= *end {
                    self.done = true;
                    return None;
                }
            }
            match self.tree.leaf_snapshot(&cursor) {
                Ok((entries, resume)) => {
                    let filtered: Vec<(Bytes, Bytes)> =
                        entries.into_iter().filter(|(k, _)| *k >= cursor).collect();
                    self.buffer = filtered.into_iter();
                    self.cursor = resume;
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::BwTreeConfig;
    use crate::store::MemStore;
    use crate::tree::BwTree;
    use bytes::Bytes;
    use std::sync::Arc;

    fn kv(i: u32) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:06}")),
            Bytes::from(format!("value-{i}")),
        )
    }

    fn loaded_tree(n: u32) -> BwTree {
        let t = BwTree::in_memory(BwTreeConfig::small_pages());
        for i in 0..n {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        t
    }

    #[test]
    fn full_scan_in_order() {
        let t = loaded_tree(1000);
        let got: Vec<_> = t.range(b"", None).map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 1000);
        for (i, (k, v)) in got.iter().enumerate() {
            let (ek, ev) = kv(i as u32);
            assert_eq!((k, v), (&ek, &ev));
        }
    }

    #[test]
    fn bounded_range() {
        let t = loaded_tree(500);
        let got: Vec<_> = t
            .range(&kv(100).0, Some(&kv(110).0))
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0].0, kv(100).0);
        assert_eq!(got[9].0, kv(109).0);
    }

    #[test]
    fn empty_range() {
        let t = loaded_tree(100);
        assert_eq!(
            t.range(&kv(50).0, Some(&kv(50).0)).count(),
            0,
            "empty interval"
        );
        assert_eq!(t.range(b"zzzz", None).count(), 0, "past the end");
    }

    #[test]
    fn range_sees_deletes() {
        let t = loaded_tree(100);
        t.delete(kv(5).0);
        t.delete(kv(7).0);
        let got: Vec<_> = t
            .range(&kv(0).0, Some(&kv(10).0))
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(got.len(), 8);
        assert!(!got.contains(&kv(5).0));
        assert!(!got.contains(&kv(7).0));
    }

    #[test]
    fn scan_faults_in_evicted_leaves() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::small_pages(), store);
        for i in 0..600u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        for p in t.pages() {
            if p.is_leaf {
                t.evict_page(p.pid).unwrap();
            }
        }
        let got: Vec<_> = t.range(b"", None).map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 600);
        assert!(t.stats().fetches > 0);
    }

    #[test]
    fn count_entries_matches() {
        let t = loaded_tree(321);
        assert_eq!(t.count_entries(), 321);
    }

    #[test]
    fn scan_start_mid_leaf() {
        let t = loaded_tree(200);
        let got: Vec<_> = t
            .range(&kv(3).0, Some(&kv(6).0))
            .map(|r| r.unwrap().0)
            .collect();
        assert_eq!(got, vec![kv(3).0, kv(4).0, kv(5).0]);
    }
}
