//! Tree configuration.

/// Tuning knobs for a [`crate::BwTree`].
#[derive(Debug, Clone)]
pub struct BwTreeConfig {
    /// Consolidate a page once its delta chain exceeds this length.
    pub consolidate_threshold: usize,
    /// Split a leaf whose consolidated payload exceeds this many bytes.
    ///
    /// The paper sets the maximum page size to 4 KB; with B-tree-style
    /// half-splits the *average* page comes out near 2.7 KB (§4.1).
    pub max_leaf_bytes: usize,
    /// Split an inner page once it routes more than this many children.
    pub max_inner_children: usize,
    /// Capacity of the mapping table (maximum number of pages).
    pub mapping_capacity: usize,
    /// Merge a leaf into its neighbor once its consolidated payload falls
    /// below this many bytes (0 disables merges).
    pub min_leaf_bytes: usize,
    /// Heal a flash-resident page once this many record deltas pile up
    /// above its base: the base is faulted in and the chain consolidated
    /// (and split if oversized). Keeps blind-update chains bounded.
    pub max_partial_deltas: usize,
}

impl Default for BwTreeConfig {
    fn default() -> Self {
        BwTreeConfig {
            consolidate_threshold: 8,
            max_leaf_bytes: 4096,
            min_leaf_bytes: 512,
            max_inner_children: 64,
            mapping_capacity: 1 << 20,
            max_partial_deltas: 32,
        }
    }
}

impl BwTreeConfig {
    /// A configuration with small pages, useful in tests to force deep trees
    /// and frequent structure modifications.
    pub fn small_pages() -> Self {
        BwTreeConfig {
            consolidate_threshold: 4,
            max_leaf_bytes: 256,
            min_leaf_bytes: 32,
            max_inner_children: 4,
            mapping_capacity: 1 << 16,
            max_partial_deltas: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_page_size() {
        assert_eq!(BwTreeConfig::default().max_leaf_bytes, 4096);
    }

    #[test]
    fn small_pages_are_small() {
        let c = BwTreeConfig::small_pages();
        assert!(c.max_leaf_bytes < 1024);
        assert!(c.max_inner_children <= 8);
    }
}
