//! The mapping table: logical page ids → physical chain heads.
//!
//! This is the Bw-tree's central trick (Figure 4 of the cost/performance
//! paper): all pointers between pages are *logical* PIDs, so a page's
//! physical representation can be replaced — delta prepended, consolidated,
//! relocated to flash and back — with one CAS on its slot, without touching
//! any other page.

use crate::delta::Node;
use crate::sync::{AtomicPtr, AtomicU64, Mutex, Ordering};

/// Logical page identifier: an index into the mapping table.
pub type PageId = u64;

struct Slot {
    /// Head of the page's delta chain. Null = unallocated.
    head: AtomicPtr<Node>,
    /// Virtual-time stamp of the last access (for cache-management policy).
    last_access: AtomicU64,
}

/// Fixed-capacity table of atomic page slots.
///
/// Capacity is set at construction; `dcs-llama`'s cache manager and the
/// tree's structure modifications allocate and free PIDs through it.
pub struct MappingTable {
    slots: Box<[Slot]>,
    next_unused: AtomicU64,
    free_list: Mutex<Vec<PageId>>,
}

impl MappingTable {
    /// Create a table with room for `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        assert!(
            capacity >= 2,
            "mapping table needs at least root + one leaf"
        );
        let slots = (0..capacity)
            .map(|_| Slot {
                head: AtomicPtr::new(std::ptr::null_mut()),
                last_access: AtomicU64::new(0),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        MappingTable {
            slots,
            next_unused: AtomicU64::new(0),
            free_list: Mutex::new(Vec::new()),
        }
    }

    /// Allocate a fresh PID. Panics if the table is exhausted.
    pub fn allocate(&self) -> PageId {
        if let Some(pid) = self.free_list.lock().unwrap().pop() {
            return pid;
        }
        // ORDERING: the counter only hands out unique ids; slot
        // contents are published by the slot's own atomic pointer.
        let pid = self.next_unused.fetch_add(1, Ordering::Relaxed);
        assert!(
            (pid as usize) < self.slots.len(),
            "mapping table exhausted at {} pages",
            self.slots.len()
        );
        pid
    }

    /// Return a PID to the free pool. The caller must have detached and
    /// retired its chain (or never published one).
    pub fn free(&self, pid: PageId) {
        self.slots[pid as usize]
            .head
            .store(std::ptr::null_mut(), Ordering::SeqCst);
        self.free_list.lock().unwrap().push(pid);
    }

    pub(crate) fn load(&self, pid: PageId) -> *mut Node {
        let head = self.slots[pid as usize].head.load(Ordering::SeqCst);
        // A published head must never point at reclaimed memory; surfacing
        // it at the load keeps the checker's report close to the bad unlink.
        #[cfg(feature = "check")]
        if !head.is_null() {
            dcs_check::shadow::on_access(head);
        }
        head
    }

    /// Install `new` if the slot still holds `expected`.
    pub(crate) fn cas(&self, pid: PageId, expected: *mut Node, new: *mut Node) -> bool {
        self.slots[pid as usize]
            .head
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// Unconditionally publish a chain at an unpublished PID (fresh
    /// allocations only: no concurrent reader can hold the PID yet).
    pub(crate) fn store_new(&self, pid: PageId, head: *mut Node) {
        self.slots[pid as usize].head.store(head, Ordering::SeqCst);
    }

    /// Stamp an access time (virtual nanoseconds) onto a page.
    pub fn touch(&self, pid: PageId, vtime: u64) {
        // ORDERING: advisory LRU stamp; eviction tolerates stale or
        // racing values, no other memory is published through it.
        self.slots[pid as usize]
            .last_access
            .store(vtime, Ordering::Relaxed);
    }

    /// Last access stamp for a page.
    pub fn last_access(&self, pid: PageId) -> u64 {
        // ORDERING: advisory LRU stamp, see touch().
        self.slots[pid as usize].last_access.load(Ordering::Relaxed)
    }

    /// Highest PID ever allocated (exclusive). Iterating `0..high_water()`
    /// visits every slot that may hold a page.
    pub fn high_water(&self) -> PageId {
        // ORDERING: monotone watermark; a stale read only makes the
        // caller scan fewer freshly-allocated (still empty) slots.
        self.next_unused.load(Ordering::Relaxed)
    }

    /// Ensure future allocations hand out PIDs strictly above `pid`.
    /// Used by recovery, which re-installs pages at their pre-crash PIDs.
    pub fn reserve_through(&self, pid: PageId) {
        let mut cur = self.next_unused.load(Ordering::SeqCst);
        while cur <= pid {
            match self.next_unused.compare_exchange_weak(
                cur,
                pid + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whether `pid` currently has a published chain.
    pub fn is_allocated(&self, pid: PageId) -> bool {
        (pid as usize) < self.slots.len() && !self.load(pid).is_null()
    }

    /// Table capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Snapshot of the free list, for structural audits.
    pub(crate) fn free_pids(&self) -> Vec<PageId> {
        self.free_list.lock().unwrap().clone()
    }
}

impl Drop for MappingTable {
    fn drop(&mut self) {
        // Exclusive access: free every remaining chain immediately.
        for slot in self.slots.iter() {
            let head = slot.head.load(Ordering::SeqCst);
            if !head.is_null() {
                // SAFETY: `&mut self` proves no concurrent readers.
                unsafe { crate::delta::free_chain_now(head) };
            }
        }
    }
}

impl std::fmt::Debug for MappingTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappingTable")
            .field("capacity", &self.slots.len())
            .field("high_water", &self.high_water())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{LeafBase, Node};

    fn empty_leaf() -> *mut Node {
        Node::LeafBase(LeafBase {
            entries: vec![],
            high_key: None,
            right: None,
            stored: None,
        })
        .into_raw()
    }

    #[test]
    fn allocate_is_dense_then_recycled() {
        let t = MappingTable::new(16);
        assert_eq!(t.allocate(), 0);
        assert_eq!(t.allocate(), 1);
        assert_eq!(t.allocate(), 2);
        t.free(1);
        assert_eq!(t.allocate(), 1);
        assert_eq!(t.allocate(), 3);
    }

    #[test]
    fn cas_succeeds_only_on_expected() {
        let t = MappingTable::new(4);
        let pid = t.allocate();
        let a = empty_leaf();
        let b = empty_leaf();
        t.store_new(pid, a);
        assert!(!t.cas(pid, b, a));
        assert!(t.cas(pid, a, b));
        assert_eq!(t.load(pid), b);
        // SAFETY: `a` lost the CAS race above, so it was never published
        // in the table; this test thread is its only owner.
        unsafe {
            crate::delta::free_chain_now(a);
        }
        // b freed by table drop
    }

    #[test]
    fn touch_and_last_access() {
        let t = MappingTable::new(4);
        let pid = t.allocate();
        assert_eq!(t.last_access(pid), 0);
        t.touch(pid, 42);
        assert_eq!(t.last_access(pid), 42);
    }

    #[test]
    fn allocation_state_tracking() {
        let t = MappingTable::new(4);
        let pid = t.allocate();
        assert!(!t.is_allocated(pid));
        t.store_new(pid, empty_leaf());
        assert!(t.is_allocated(pid));
        assert_eq!(t.high_water(), 1);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let t = MappingTable::new(2);
        t.allocate();
        t.allocate();
        t.allocate();
    }

    #[test]
    fn drop_frees_chains() {
        // Doesn't assert, but runs under the test allocator / miri-style
        // leak checks in CI; mainly ensures drop doesn't crash on chains.
        let t = MappingTable::new(4);
        let pid = t.allocate();
        t.store_new(pid, empty_leaf());
        drop(t);
    }

    #[test]
    fn concurrent_allocate_unique() {
        let t = std::sync::Arc::new(MappingTable::new(10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| t.allocate()).collect::<Vec<_>>()
            }));
        }
        let mut seen = std::collections::HashSet::new();
        for h in handles {
            for pid in h.join().unwrap() {
                assert!(seen.insert(pid), "pid {pid} allocated twice");
            }
        }
    }
}
