//! Page representation: delta records and base pages.
//!
//! A logical page is a *chain* of immutable heap nodes. The mapping table
//! points at the chain head; each node links to the next via a raw pointer.
//! Updates prepend; consolidation and eviction replace the whole chain with
//! a single CAS and retire the detached nodes through EBR.

use crate::mapping::PageId;
use bytes::Bytes;
use dcs_ebr::Guard;

/// A node in a page's delta chain.
///
/// Leaf chains terminate in [`Node::LeafBase`] (base in memory) or
/// [`Node::FlashBase`] (base on secondary storage). Inner chains terminate
/// in [`Node::InnerBase`] and are always memory-resident (the paper assumes
/// index pages stay cached).
#[allow(clippy::enum_variant_names)] // RemoveNode is the Bw-tree paper's own term
pub(crate) enum Node {
    /// Leaf upsert delta.
    Put {
        /// Record key.
        key: Bytes,
        /// New record value.
        value: Bytes,
        /// Older chain.
        next: *const Node,
    },
    /// Leaf delete delta.
    Del {
        /// Deleted key.
        key: Bytes,
        /// Older chain.
        next: *const Node,
    },
    /// Leaf split delta: keys ≥ `sep` now live at `right`.
    LeafSplit {
        /// Separator key.
        sep: Bytes,
        /// New right sibling.
        right: PageId,
        /// Older chain.
        next: *const Node,
    },
    /// Consolidated leaf contents.
    LeafBase(LeafBase),
    /// The base page (and any earlier flushed deltas) live on flash at
    /// `token`; everything above this node is the in-memory record cache.
    ///
    /// The page's fence and sibling link are kept in memory so writers can
    /// route (and blind-update) without fetching the base.
    FlashBase {
        /// Opaque page-store token (for `dcs-llama`, a flash address).
        token: u64,
        /// Exclusive upper bound of the page's key space; `None` = +∞.
        high_key: Option<Bytes>,
        /// Right sibling.
        right: Option<PageId>,
    },
    /// Everything below this node is durable at `token`; a flush collects
    /// only deltas *above* the topmost marker (LLAMA's flush delta).
    FlushMarker {
        /// Token of the durable state covering the chain below.
        token: u64,
        /// Older chain.
        next: *const Node,
    },
    /// Merge freeze: this page is being merged into its left sibling
    /// `left`; it accepts no further updates and accessors redirect left.
    RemoveNode {
        /// The absorbing left sibling.
        left: PageId,
        /// The frozen chain.
        next: *const Node,
    },
    /// Merge absorb: this page now also owns `[sep, high_key)` with the
    /// materialized `entries` (the folded contents of the removed right
    /// sibling at merge time).
    Absorb {
        /// Inclusive lower bound of the absorbed range (the old fence).
        sep: Bytes,
        /// Sorted records of the absorbed range.
        entries: Vec<(Bytes, Bytes)>,
        /// New exclusive upper fence.
        high_key: Option<Bytes>,
        /// New right sibling.
        right: Option<PageId>,
        /// Older chain.
        next: *const Node,
    },
    /// Inner index-entry delta: keys in `[sep, …)` route to `child` until a
    /// larger separator intervenes.
    IndexInsert {
        /// New separator.
        sep: Bytes,
        /// Child page for keys ≥ `sep`.
        child: PageId,
        /// Older chain.
        next: *const Node,
    },
    /// Inner index-entry delete: the routing entry at exactly `sep` is
    /// removed (merge SMO step 3); keys fall through to the previous entry.
    IndexDelete {
        /// Separator whose entry is deleted.
        sep: Bytes,
        /// Older chain.
        next: *const Node,
    },
    /// Inner split delta: separators ≥ `sep` now live at `right`.
    InnerSplit {
        /// Separator key.
        sep: Bytes,
        /// New right sibling.
        right: PageId,
        /// Older chain.
        next: *const Node,
    },
    /// Consolidated inner contents.
    InnerBase(InnerBase),
}

/// Consolidated, sorted leaf page.
pub(crate) struct LeafBase {
    /// Sorted `(key, value)` records.
    pub entries: Vec<(Bytes, Bytes)>,
    /// Exclusive upper bound of this page's key space; `None` = +∞.
    pub high_key: Option<Bytes>,
    /// Right sibling (set by splits), for scans and lagging-parent routing.
    pub right: Option<PageId>,
    /// Token of an identical flash copy, if one exists (page is "clean").
    pub stored: Option<u64>,
}

impl LeafBase {
    /// Approximate payload bytes (keys + values).
    pub fn payload_bytes(&self) -> usize {
        self.entries.iter().map(|(k, v)| k.len() + v.len()).sum()
    }
}

/// Consolidated inner page: `first_child` routes keys below the first
/// separator; `entries[i]` routes keys in `[sep_i, sep_{i+1})`.
pub(crate) struct InnerBase {
    /// Child for keys below `entries[0].0`.
    pub first_child: PageId,
    /// Sorted `(separator, child)` routing entries.
    pub entries: Vec<(Bytes, PageId)>,
    /// Exclusive upper bound; `None` = +∞.
    pub high_key: Option<Bytes>,
    /// Right sibling inner page.
    pub right: Option<PageId>,
}

impl InnerBase {
    /// Number of children routed.
    pub fn child_count(&self) -> usize {
        1 + self.entries.len()
    }
}

impl Node {
    /// The next-older node in the chain, if this is a delta.
    pub fn next(&self) -> Option<*const Node> {
        match self {
            Node::Put { next, .. }
            | Node::Del { next, .. }
            | Node::LeafSplit { next, .. }
            | Node::FlushMarker { next, .. }
            | Node::RemoveNode { next, .. }
            | Node::Absorb { next, .. }
            | Node::IndexInsert { next, .. }
            | Node::IndexDelete { next, .. }
            | Node::InnerSplit { next, .. } => Some(*next),
            Node::LeafBase(_) | Node::FlashBase { .. } | Node::InnerBase(_) => None,
        }
    }

    /// Whether this node terminates a chain.
    pub fn is_base(&self) -> bool {
        self.next().is_none()
    }

    /// True for nodes that can appear in inner-page chains.
    pub fn is_inner(&self) -> bool {
        matches!(
            self,
            Node::IndexInsert { .. }
                | Node::IndexDelete { .. }
                | Node::InnerSplit { .. }
                | Node::InnerBase(_)
        )
    }

    /// Approximate heap bytes attributable to this node.
    pub fn approx_bytes(&self) -> usize {
        let body = match self {
            Node::Put { key, value, .. } => key.len() + value.len(),
            Node::Del { key, .. } => key.len(),
            Node::LeafSplit { sep, .. } | Node::InnerSplit { sep, .. } => sep.len(),
            // Consolidated bases are accounted as the packed page a real
            // Bw-tree materializes (payload + a small per-record slot), not
            // this port's Vec-of-Bytes representation: the paper's page-size
            // and footprint arithmetic (Ps ≈ 2.7 KB, Mx) assumes packed
            // pages at ~100 % utilization.
            Node::LeafBase(b) => b.payload_bytes() + b.entries.len() * 8,
            Node::FlashBase { high_key, .. } => high_key.as_ref().map(|k| k.len()).unwrap_or(0),
            Node::FlushMarker { .. } => 0,
            Node::RemoveNode { .. } => 0,
            Node::Absorb { entries, .. } => entries
                .iter()
                .map(|(k, v)| k.len() + v.len() + 8)
                .sum::<usize>(),
            Node::IndexDelete { sep, .. } => sep.len(),
            Node::IndexInsert { sep, .. } => sep.len() + 8,
            Node::InnerBase(b) => b.entries.iter().map(|(s, _)| s.len() + 8).sum::<usize>() + 8,
        };
        body + std::mem::size_of::<Node>()
    }

    /// Allocate on the heap, returning a raw chain pointer.
    pub fn into_raw(self) -> *mut Node {
        let ptr = Box::into_raw(Box::new(self));
        // Shadow-heap bookkeeping: a fresh allocation may reuse an address
        // the checker saw freed earlier; registering it resets that slot.
        #[cfg(feature = "check")]
        dcs_check::shadow::on_alloc(ptr);
        ptr
    }
}

/// Iterate a chain from `head` down to (and including) its base.
///
/// # Safety
/// `head` must point to a live chain and the caller must hold an EBR guard
/// pinned since before loading `head` from the mapping table.
pub(crate) unsafe fn chain_iter<'g>(head: *const Node) -> ChainIter<'g> {
    ChainIter {
        cur: head,
        _marker: std::marker::PhantomData,
    }
}

pub(crate) struct ChainIter<'g> {
    cur: *const Node,
    _marker: std::marker::PhantomData<&'g Node>,
}

impl<'g> Iterator for ChainIter<'g> {
    type Item = &'g Node;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur.is_null() {
            return None;
        }
        // Under the checker, every chain dereference is validated against the
        // shadow heap: walking into a node whose destructor already ran is a
        // use-after-free and aborts the execution with the seed.
        #[cfg(feature = "check")]
        dcs_check::shadow::on_access(self.cur);
        // SAFETY: guaranteed live by the guard held per `chain_iter` contract.
        let node = unsafe { &*self.cur };
        self.cur = node.next().unwrap_or(std::ptr::null());
        Some(node)
    }
}

/// Statistics of a chain walk.
pub(crate) struct ChainShape {
    /// Number of delta nodes above the base.
    pub deltas: usize,
    /// Total approximate bytes of all nodes.
    pub bytes: usize,
    /// Whether the chain bottom is a flash-resident base.
    pub flash_base: bool,
}

/// Measure a chain.
///
/// # Safety
/// Same contract as [`chain_iter`].
pub(crate) unsafe fn chain_shape(head: *const Node) -> ChainShape {
    let mut deltas = 0;
    let mut bytes = 0;
    let mut flash_base = false;
    // SAFETY: forwarding this function's own contract — same as
    // [`chain_iter`]'s.
    for node in unsafe { chain_iter(head) } {
        bytes += node.approx_bytes();
        if node.is_base() {
            flash_base = matches!(node, Node::FlashBase { .. });
        } else {
            deltas += 1;
        }
    }
    ChainShape {
        deltas,
        bytes,
        flash_base,
    }
}

/// Retire every node of a detached chain through the guard's collector.
///
/// # Safety
/// The chain rooted at `head` must have been atomically unlinked from the
/// mapping table (no new references can form) and must not be retired twice.
pub(crate) unsafe fn retire_chain(guard: &Guard, head: *mut Node) {
    if head.is_null() {
        return;
    }
    // Report every node of the chain as retired. Overlapping retirements
    // (the same node reachable from two retired chains) surface as a
    // double-retire failure in the checker instead of a latent double-free.
    #[cfg(feature = "check")]
    {
        let mut cur = head as *const Node;
        while !cur.is_null() {
            dcs_check::shadow::on_retire(cur);
            // SAFETY: the guard is pinned and the chain was just unlinked,
            // so every node is still live for this walk.
            cur = unsafe { (*cur).next().unwrap_or(std::ptr::null()) };
        }
    }
    let addr = head as usize;
    guard.defer(move || {
        let mut cur = addr as *mut Node;
        while !cur.is_null() {
            #[cfg(feature = "check")]
            dcs_check::shadow::on_free(cur as *const Node);
            // SAFETY: chain is unlinked and the grace period has elapsed.
            let boxed = unsafe { Box::from_raw(cur) };
            cur = boxed
                .next()
                .map(|p| p as *mut Node)
                .unwrap_or(std::ptr::null_mut());
            // `boxed` drops here, freeing the node.
        }
    });
}

/// Free a chain immediately. Only for never-published chains (e.g. a failed
/// split's orphan page) and for teardown in `Drop` when no readers exist.
pub(crate) unsafe fn free_chain_now(head: *mut Node) {
    let mut cur = head;
    while !cur.is_null() {
        #[cfg(feature = "check")]
        dcs_check::shadow::on_free(cur as *const Node);
        // SAFETY: caller guarantees exclusivity.
        let boxed = unsafe { Box::from_raw(cur) };
        cur = boxed
            .next()
            .map(|p| p as *mut Node)
            .unwrap_or(std::ptr::null_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf_base(entries: Vec<(&str, &str)>) -> *mut Node {
        Node::LeafBase(LeafBase {
            entries: entries
                .into_iter()
                .map(|(k, v)| (Bytes::from(k.to_owned()), Bytes::from(v.to_owned())))
                .collect(),
            high_key: None,
            right: None,
            stored: None,
        })
        .into_raw()
    }

    #[test]
    fn chain_iteration_reaches_base() {
        let base = leaf_base(vec![("a", "1")]);
        let d1 = Node::Put {
            key: Bytes::from("b"),
            value: Bytes::from("2"),
            next: base,
        }
        .into_raw();
        let d2 = Node::Del {
            key: Bytes::from("a"),
            next: d1,
        }
        .into_raw();

        // SAFETY: `d2` heads a chain this test just built and owns.
        let nodes: Vec<_> = unsafe { chain_iter(d2) }.collect();
        assert_eq!(nodes.len(), 3);
        assert!(matches!(nodes[0], Node::Del { .. }));
        assert!(matches!(nodes[1], Node::Put { .. }));
        assert!(matches!(nodes[2], Node::LeafBase(_)));

        // SAFETY: never published; this test is the only owner.
        unsafe { free_chain_now(d2) };
    }

    #[test]
    fn chain_shape_counts_deltas() {
        let base = leaf_base(vec![("a", "1"), ("b", "2")]);
        let d1 = Node::Put {
            key: Bytes::from("c"),
            value: Bytes::from("3"),
            next: base,
        }
        .into_raw();
        // SAFETY: `d1` heads a chain this test just built and owns.
        let shape = unsafe { chain_shape(d1) };
        assert_eq!(shape.deltas, 1);
        assert!(!shape.flash_base);
        assert!(shape.bytes > 0);
        // SAFETY: never published; this test is the only owner.
        unsafe { free_chain_now(d1) };
    }

    #[test]
    fn flash_base_detected() {
        let fb = Node::FlashBase {
            token: 9,
            high_key: None,
            right: None,
        }
        .into_raw();
        // SAFETY: `fb` is a single-node chain this test just built and owns.
        let shape = unsafe { chain_shape(fb) };
        assert!(shape.flash_base);
        assert_eq!(shape.deltas, 0);
        // SAFETY: never published; this test is the only owner.
        unsafe { free_chain_now(fb) };
    }

    #[test]
    fn retire_chain_frees_through_ebr() {
        let collector = dcs_ebr::Collector::new();
        let handle = collector.register();
        let base = leaf_base(vec![("x", "y")]);
        let d = Node::Put {
            key: Bytes::from("k"),
            value: Bytes::from("v"),
            next: base,
        }
        .into_raw();
        {
            let guard = handle.pin();
            // SAFETY: `d` was never published; retiring under the guard is
            // trivially exclusive.
            unsafe { retire_chain(&guard, d) };
        }
        for _ in 0..64 {
            handle.pin().flush();
        }
        let stats = collector.stats();
        assert_eq!(stats.freed_total, 1, "chain retirement is one deferred fn");
    }

    #[test]
    fn inner_base_child_count() {
        let b = InnerBase {
            first_child: 1,
            entries: vec![(Bytes::from("m"), 2), (Bytes::from("t"), 3)],
            high_key: None,
            right: None,
        };
        assert_eq!(b.child_count(), 3);
    }

    #[test]
    fn node_kind_predicates() {
        let ib = Node::InnerBase(InnerBase {
            first_child: 0,
            entries: vec![],
            high_key: None,
            right: None,
        });
        assert!(ib.is_base());
        assert!(ib.is_inner());
        let lb = Node::FlashBase {
            token: 0,
            high_key: None,
            right: None,
        };
        assert!(lb.is_base());
        assert!(!lb.is_inner());
        drop(ib);
        drop(lb);
    }
}
