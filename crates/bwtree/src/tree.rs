//! The Bw-tree proper: descent, reads, delta updates, consolidation,
//! structure modifications, and page flush/eviction.

use crate::config::BwTreeConfig;
use crate::delta::{
    chain_iter, chain_shape, free_chain_now, retire_chain, InnerBase, LeafBase, Node,
};
use crate::mapping::{MappingTable, PageId};
use crate::page::{DeltaOp, PageImage};
use crate::stats::{bump, StatsInner, TreeStats};
use crate::store::{NullStore, PageStore, StoreError};
use crate::sync::{AtomicU64, Ordering};
use bytes::Bytes;
use dcs_ebr::Guard;
use std::sync::Arc;

/// Errors surfaced by tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The page store failed.
    Store(StoreError),
    /// The PID does not name a live page.
    PageNotFound(PageId),
    /// Flush/evict was asked of an inner page (index pages stay cached).
    InnerPageNotEvictable(PageId),
    /// The recovered page set is not a consistent leaf partition.
    RecoveryInvalid(String),
}

impl From<StoreError> for TreeError {
    fn from(e: StoreError) -> Self {
        TreeError::Store(e)
    }
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Store(e) => write!(f, "page store: {e}"),
            TreeError::PageNotFound(p) => write!(f, "page {p} not found"),
            TreeError::InnerPageNotEvictable(p) => write!(f, "page {p} is an index page"),
            TreeError::RecoveryInvalid(m) => write!(f, "recovery: {m}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Where a page's bytes currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidencyState {
    /// Base page in memory (possibly plus deltas).
    Resident,
    /// Base on flash, one or more record deltas in memory (record cache).
    Partial,
    /// Everything on flash; only a stub in memory.
    Evicted,
}

/// What to do with the in-memory page state after making it durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushKind {
    /// Make durable, keep the page fully resident (clean).
    FlushOnly,
    /// Make durable, drop the base page but keep record deltas in memory as
    /// a record cache (§6.3).
    EvictBaseKeepDeltas,
    /// Make durable and drop everything except a flash stub.
    EvictAll,
}

/// Outcome of a non-blocking point lookup ([`BwTree::try_get_async`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryGetAsync {
    /// Answered entirely from memory.
    Hit(Option<Bytes>),
    /// The owning leaf's base is flash-resident: fetch durable state
    /// `token` of page `pid` from the page store, install it with
    /// [`BwTree::install_fetched`], and re-probe with
    /// [`BwTree::resume_get`].
    NeedFetch {
        /// The flash-resident leaf.
        pid: PageId,
        /// Its newest durable token.
        token: u64,
    },
}

/// Point-in-time description of one page, for cache managers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageInfo {
    /// The page's id.
    pub pid: PageId,
    /// Leaf or index page.
    pub is_leaf: bool,
    /// Residency state.
    pub residency: ResidencyState,
    /// Delta-chain length above the base.
    pub chain_len: usize,
    /// Approximate in-memory bytes.
    pub mem_bytes: usize,
    /// Last access stamp (virtual nanoseconds, host-supplied).
    pub last_access: u64,
    /// Whether the page has state not yet durable in the page store.
    pub dirty: bool,
}

/// A durable page found during recovery: the inputs to
/// [`BwTree::from_recovered`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredPage {
    /// The page's pre-crash PID.
    pub pid: PageId,
    /// Token of its newest durable state.
    pub token: u64,
    /// Exclusive upper fence (`None` = +∞, the rightmost leaf).
    pub high_key: Option<Bytes>,
    /// Right sibling PID.
    pub right: Option<PageId>,
}

/// A latch-free Bw-tree. See the crate docs for the design overview.
pub struct BwTree {
    config: BwTreeConfig,
    mapping: MappingTable,
    root: AtomicU64,
    store: Arc<dyn PageStore>,
    stats: StatsInner,
    /// Host-driven virtual time used to stamp page accesses.
    vtime: AtomicU64,
    /// Miss-ratio-curve profiler over the leaf-page access stream
    /// (entity = PID, sized at the configured leaf capacity).
    mrc: Arc<dcs_telemetry::MrcProfiler>,
}

/// Result of searching one leaf chain.
enum LeafSearch {
    Found {
        value: Bytes,
        from_delta_over_flash: bool,
    },
    Deleted,
    Missing,
    GoRight(PageId),
    NeedFetch {
        token: u64,
    },
}

/// A merged leaf snapshot and the key to resume a scan from.
pub(crate) type LeafSnapshot = (Vec<(Bytes, Bytes)>, Option<Bytes>);

/// Routing decision inside an inner chain.
enum Route {
    Child(PageId),
    Sibling(PageId),
}

impl BwTree {
    /// A tree with no secondary storage: eviction is unavailable and every
    /// operation is a main-memory operation.
    pub fn in_memory(config: BwTreeConfig) -> Self {
        Self::with_store(config, Arc::new(NullStore))
    }

    /// A tree backed by a page store (see `dcs-llama`).
    pub fn with_store(config: BwTreeConfig, store: Arc<dyn PageStore>) -> Self {
        let mapping = MappingTable::new(config.mapping_capacity);
        let root = mapping.allocate();
        mapping.store_new(
            root,
            Node::LeafBase(LeafBase {
                entries: Vec::new(),
                high_key: None,
                right: None,
                stored: None,
            })
            .into_raw(),
        );
        BwTree {
            config,
            mapping,
            root: AtomicU64::new(root),
            store,
            stats: StatsInner::default(),
            vtime: AtomicU64::new(0),
            mrc: dcs_telemetry::mrc().profiler("mrc.page_cache"),
        }
    }

    /// Rebuild a tree from recovered flash-resident leaves.
    ///
    /// Every leaf is re-installed at its **original PID** as a flash stub
    /// (`FlashBase`), so future flushes keep superseding the same logical
    /// pages across restarts — exactly like LLAMA recovering its mapping
    /// table. The index levels are rebuilt from the leaves' fence keys; no
    /// record data is read (pages fault in lazily on first access).
    pub fn from_recovered(
        config: BwTreeConfig,
        store: Arc<dyn PageStore>,
        pages: Vec<RecoveredPage>,
    ) -> Result<Self, TreeError> {
        if pages.is_empty() {
            return Ok(Self::with_store(config, store));
        }
        // Order the leaves by their right-link chain.
        let mut by_pid = std::collections::HashMap::new();
        let mut referenced = std::collections::HashSet::new();
        for (i, p) in pages.iter().enumerate() {
            if by_pid.insert(p.pid, i).is_some() {
                return Err(TreeError::RecoveryInvalid(format!(
                    "duplicate pid {}",
                    p.pid
                )));
            }
            if let Some(r) = p.right {
                referenced.insert(r);
            }
        }
        let head = pages
            .iter()
            .find(|p| !referenced.contains(&p.pid))
            .ok_or_else(|| TreeError::RecoveryInvalid("leaf chain has a cycle".into()))?;
        let mut chain: Vec<&RecoveredPage> = Vec::with_capacity(pages.len());
        let mut cur = Some(head.pid);
        while let Some(pid) = cur {
            let idx = *by_pid.get(&pid).ok_or_else(|| {
                TreeError::RecoveryInvalid(format!("right link to unknown pid {pid}"))
            })?;
            let page = &pages[idx];
            chain.push(page);
            if chain.len() > pages.len() {
                return Err(TreeError::RecoveryInvalid("leaf chain has a cycle".into()));
            }
            cur = page.right;
        }
        if chain.len() != pages.len() {
            return Err(TreeError::RecoveryInvalid(format!(
                "leaf chain covers {} of {} pages",
                chain.len(),
                pages.len()
            )));
        }
        // Fences must ascend, ending in the open (None) fence.
        for w in chain.windows(2) {
            match (&w[0].high_key, &w[1].high_key) {
                (Some(a), Some(b)) if a < b => {}
                (Some(_), None) => {}
                _ => {
                    return Err(TreeError::RecoveryInvalid(
                        "leaf fences are not ascending".into(),
                    ))
                }
            }
        }
        if chain.last().expect("non-empty").high_key.is_some() {
            return Err(TreeError::RecoveryInvalid(
                "rightmost leaf must have an open fence".into(),
            ));
        }

        let mapping = MappingTable::new(config.mapping_capacity);
        let mut max_pid = 0;
        for page in &chain {
            mapping.store_new(
                page.pid,
                Node::FlashBase {
                    token: page.token,
                    high_key: page.high_key.clone(),
                    right: page.right,
                }
                .into_raw(),
            );
            max_pid = max_pid.max(page.pid);
        }
        mapping.reserve_through(max_pid);

        // Build the index bottom-up from the fence keys (fresh PIDs).
        let fan = config.max_inner_children.max(2);
        let mut level: Vec<(Option<Bytes>, PageId)> =
            chain.iter().map(|p| (p.high_key.clone(), p.pid)).collect();
        while level.len() > 1 {
            let chunks: Vec<&[(Option<Bytes>, PageId)]> = level.chunks(fan).collect();
            let pids: Vec<PageId> = chunks.iter().map(|_| mapping.allocate()).collect();
            let mut next: Vec<(Option<Bytes>, PageId)> = Vec::with_capacity(chunks.len());
            for (ci, chunk) in chunks.iter().enumerate() {
                let first_child = chunk[0].1;
                let entries: Vec<(Bytes, PageId)> = chunk
                    .windows(2)
                    .map(|w| (w[0].0.clone().expect("inner fences are closed"), w[1].1))
                    .collect();
                let high_key = chunk.last().expect("non-empty chunk").0.clone();
                let right = pids.get(ci + 1).copied();
                mapping.store_new(
                    pids[ci],
                    Node::InnerBase(InnerBase {
                        first_child,
                        entries,
                        high_key: high_key.clone(),
                        right,
                    })
                    .into_raw(),
                );
                next.push((high_key, pids[ci]));
            }
            level = next;
        }
        let root = level[0].1;
        Ok(BwTree {
            config,
            mapping,
            root: AtomicU64::new(root),
            store,
            stats: StatsInner::default(),
            vtime: AtomicU64::new(0),
            mrc: dcs_telemetry::mrc().profiler("mrc.page_cache"),
        })
    }

    /// The tree's configuration.
    pub fn config(&self) -> &BwTreeConfig {
        &self.config
    }

    /// Set the virtual time used to stamp page accesses (cache managers
    /// drive this from their clock).
    pub fn set_vtime(&self, nanos: u64) {
        // ORDERING: advisory access-time source for LRU stamps; no
        // other memory is published through it.
        self.vtime.store(nanos, Ordering::Relaxed);
    }

    /// Current virtual time.
    pub fn vtime(&self) -> u64 {
        // ORDERING: advisory access-time source, see set_vtime().
        self.vtime.load(Ordering::Relaxed)
    }

    /// Snapshot of operation counters.
    pub fn stats(&self) -> TreeStats {
        self.stats.snapshot()
    }

    /// The mapping table (for cache managers and diagnostics).
    pub fn mapping(&self) -> &MappingTable {
        &self.mapping
    }

    pub(crate) fn root_pid(&self) -> PageId {
        self.root.load(Ordering::SeqCst)
    }

    // ------------------------------------------------------------------
    // Descent
    // ------------------------------------------------------------------

    /// Route within an inner chain. Collects the (short) chain first so
    /// split fences apply to deltas regardless of their position.
    ///
    /// # Safety
    /// `head` must be a live inner chain protected by `_guard`.
    unsafe fn route_inner(&self, head: *const Node, key: &[u8], _guard: &Guard) -> Route {
        // SAFETY: forwarding this function's own contract — `head` is a live
        // chain protected by the caller's guard.
        let nodes: Vec<&Node> = unsafe { chain_iter(head) }.collect();
        // Tightest split fence seen anywhere in the chain.
        let mut bound: Option<&Bytes> = None;
        for node in &nodes {
            if let Node::InnerSplit { sep, right, .. } = node {
                if key >= sep.as_ref() {
                    return Route::Sibling(*right);
                }
                if bound.map(|b| sep < b).unwrap_or(true) {
                    bound = Some(sep);
                }
            }
        }
        // Per-separator decisions, newest-first: an insert or delete for a
        // separator shadows everything older for that separator.
        let mut decisions: Vec<(&Bytes, Option<PageId>)> = Vec::new();
        for node in &nodes {
            let (sep, decision) = match node {
                Node::IndexInsert { sep, child, .. } => (sep, Some(*child)),
                Node::IndexDelete { sep, .. } => (sep, None),
                _ => continue,
            };
            if !decisions.iter().any(|(s, _)| *s == sep) {
                decisions.push((sep, decision));
            }
        }
        // Best routing entry from deltas: greatest live sep ≤ key, below
        // the fence.
        let mut best: Option<(&Bytes, PageId)> = None;
        let mut deleted: Vec<&Bytes> = Vec::new();
        for (sep, decision) in &decisions {
            match decision {
                None => deleted.push(sep),
                Some(child) => {
                    if key < sep.as_ref() {
                        continue;
                    }
                    if bound.map(|b| sep.as_ref() >= b.as_ref()).unwrap_or(false) {
                        continue;
                    }
                    if best.map(|(bs, _)| *sep > bs).unwrap_or(true) {
                        best = Some((sep, *child));
                    }
                }
            }
        }
        let base = nodes.last().expect("chain has a base");
        let Node::InnerBase(ib) = base else {
            unreachable!("inner chain must end in InnerBase");
        };
        if let Some(hk) = &ib.high_key {
            // Keys beyond the (fenced) high key chase the right link.
            let effective_fence_hit = bound.is_none() && key >= hk.as_ref();
            if effective_fence_hit {
                if let Some(r) = ib.right {
                    return Route::Sibling(r);
                }
            }
        }
        // Rightmost base separator ≤ key, below the fence.
        let limit = match bound {
            Some(b) => ib.entries.partition_point(|(s, _)| s.as_ref() < b.as_ref()),
            None => ib.entries.len(),
        };
        let idx = ib.entries[..limit].partition_point(|(s, _)| s.as_ref() <= key);
        // Walk leftward past separators deleted by merge SMOs.
        let base_candidate = ib.entries[..idx]
            .iter()
            .rev()
            .find(|(s, _)| !deleted.contains(&s))
            .map(|(s, c)| (s, *c));
        let chosen = match (best, base_candidate) {
            (Some((ds, dc)), Some((bs, bc))) => {
                if ds >= bs {
                    dc
                } else {
                    bc
                }
            }
            (Some((_, dc)), None) => dc,
            (None, Some((_, bc))) => bc,
            (None, None) => ib.first_child,
        };
        Route::Child(chosen)
    }

    /// Whether `head` is an inner-page chain (checked at the chain head —
    /// every node kind identifies its level, except markers, which only
    /// appear on leaves).
    ///
    /// # Safety
    /// `head` must be live under a guard.
    unsafe fn head_is_inner(&self, head: *const Node) -> bool {
        // SAFETY: forwarding this function's own contract — `head` is live
        // under the caller's guard.
        unsafe { (*head).is_inner() }
    }

    /// Descend to the leaf owning `key`.
    ///
    /// # Safety: caller holds `guard`.
    fn find_leaf(&self, key: &[u8], guard: &Guard) -> PageId {
        let mut pid = self.root_pid();
        let mut hops = 0usize;
        loop {
            hops += 1;
            assert!(hops < 1_000_000, "descent livelock: tree invariant broken");
            let head = self.mapping.load(pid);
            if head.is_null() {
                pid = self.root_pid();
                continue;
            }
            // SAFETY: guard pinned before load.
            unsafe {
                if self.head_is_inner(head) {
                    match self.route_inner(head, key, guard) {
                        Route::Child(c) => pid = c,
                        Route::Sibling(s) => pid = s,
                    }
                } else {
                    match leaf_route(head, key) {
                        Some(r) => pid = r,
                        None => return pid,
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Point lookup. Fetches the base page from the store if it is
    /// flash-resident (a secondary-storage operation).
    pub fn try_get(&self, key: &[u8]) -> Result<Option<Bytes>, TreeError> {
        let guard = dcs_ebr::pin();
        bump!(self.stats, gets);
        let vt = self.vtime();
        let mut fetched = false;
        let mut pid = self.find_leaf(key, &guard);
        self.mrc.record(pid, self.config.max_leaf_bytes as u64);
        self.mapping.touch(pid, vt);
        loop {
            let head = self.mapping.load(pid);
            if head.is_null() {
                pid = self.find_leaf(key, &guard);
                continue;
            }
            // SAFETY: guard held since before the load.
            let result = unsafe { search_leaf(head, key) };
            match result {
                LeafSearch::Found {
                    value,
                    from_delta_over_flash,
                } => {
                    if from_delta_over_flash {
                        bump!(self.stats, record_cache_hits);
                    }
                    self.finish_read(fetched);
                    return Ok(Some(value));
                }
                LeafSearch::Deleted | LeafSearch::Missing => {
                    self.finish_read(fetched);
                    return Ok(None);
                }
                LeafSearch::GoRight(r) => {
                    pid = r;
                    self.mapping.touch(pid, vt);
                }
                LeafSearch::NeedFetch { token } => {
                    match self.fetch_install(pid, head, token, &guard) {
                        Ok(()) => {}
                        Err(TreeError::Store(StoreError::UnknownToken(_)))
                            if self.mapping.load(pid) != head =>
                        {
                            // A concurrent flush superseded the token and the
                            // store reclaimed it; the fresh head has the live
                            // token. Retry.
                        }
                        Err(e) => return Err(e),
                    }
                    fetched = true;
                }
            }
        }
    }

    /// Point lookup; panics on a page-store failure (which cannot occur for
    /// in-memory trees). Use [`BwTree::try_get`] when the store can fail.
    pub fn get(&self, key: &[u8]) -> Option<Bytes> {
        self.try_get(key).expect("page store failure")
    }

    /// Non-blocking point lookup: answered from memory, or halted at the
    /// first flash-resident leaf. On [`TryGetAsync::NeedFetch`] the caller
    /// fetches the page image itself (possibly asynchronously, overlapping
    /// other work), installs it with [`BwTree::install_fetched`], and
    /// re-probes with [`BwTree::resume_get`].
    ///
    /// Counts one logical get; a hit additionally counts one main-memory
    /// operation, matching [`BwTree::try_get`].
    pub fn try_get_async(&self, key: &[u8]) -> TryGetAsync {
        bump!(self.stats, gets);
        self.probe_get(key, true)
    }

    /// Re-probe after [`BwTree::install_fetched`]. Does **not** count a new
    /// logical get (the original [`BwTree::try_get_async`] did); a hit here
    /// counts no main-memory op either — the install already charged the
    /// secondary-storage op, as the blocking miss path does.
    pub fn resume_get(&self, key: &[u8]) -> TryGetAsync {
        self.probe_get(key, false)
    }

    fn probe_get(&self, key: &[u8], count_hit: bool) -> TryGetAsync {
        let guard = dcs_ebr::pin();
        let vt = self.vtime();
        let mut pid = self.find_leaf(key, &guard);
        if count_hit {
            // One logical get, one MRC access; the resume probe after an
            // install must not count the page twice.
            self.mrc.record(pid, self.config.max_leaf_bytes as u64);
        }
        self.mapping.touch(pid, vt);
        loop {
            let head = self.mapping.load(pid);
            if head.is_null() {
                pid = self.find_leaf(key, &guard);
                continue;
            }
            // SAFETY: guard held since before the load.
            let result = unsafe { search_leaf(head, key) };
            match result {
                LeafSearch::Found {
                    value,
                    from_delta_over_flash,
                } => {
                    if from_delta_over_flash {
                        bump!(self.stats, record_cache_hits);
                    }
                    if count_hit {
                        self.stats.mm_op();
                    }
                    return TryGetAsync::Hit(Some(value));
                }
                LeafSearch::Deleted | LeafSearch::Missing => {
                    if count_hit {
                        self.stats.mm_op();
                    }
                    return TryGetAsync::Hit(None);
                }
                LeafSearch::GoRight(r) => {
                    pid = r;
                    self.mapping.touch(pid, vt);
                }
                LeafSearch::NeedFetch { token } => return TryGetAsync::NeedFetch { pid, token },
            }
        }
    }

    /// Install an externally fetched page image as `pid`'s new in-memory
    /// base, preserving unflushed deltas above it — the asynchronous
    /// counterpart of the blocking fetch inside [`BwTree::try_get`].
    ///
    /// Returns `false` without installing when the chain moved on (fetched
    /// token superseded by a newer flush, page became resident, or the CAS
    /// raced): the caller simply re-probes with [`BwTree::resume_get`],
    /// which re-fetches if still needed. Counts one fetch and one
    /// secondary-storage op either way — an I/O happened.
    pub fn install_fetched(&self, pid: PageId, token: u64, img: PageImage) -> bool {
        bump!(self.stats, fetches);
        bump!(self.stats, ss_ops);
        let guard = dcs_ebr::pin();
        let head = self.mapping.load(pid);
        if head.is_null() {
            return false;
        }
        // The image is only installable while the chain's durable state is
        // still exactly `token`.
        // SAFETY: guard held since before the load.
        let current = unsafe {
            match analyze_leaf_chain(head) {
                LeafChainInfo::FlashBase { durable_token, .. } => Some(durable_token),
                _ => None,
            }
        };
        if current != Some(token) {
            return false;
        }
        // Clone unflushed deltas above the topmost marker, as the blocking
        // fetch does; everything below is contained in the image.
        let mut deltas: Vec<&Node> = Vec::new();
        // SAFETY: guard held.
        unsafe {
            for node in chain_iter(head) {
                match node {
                    Node::FlushMarker { .. } | Node::FlashBase { .. } => break,
                    Node::LeafBase(_) | Node::InnerBase(_) => return false,
                    _ => deltas.push(node),
                }
            }
        }
        let base = Node::LeafBase(LeafBase {
            entries: img.entries,
            high_key: img.high_key,
            right: img.right,
            stored: Some(token),
        })
        .into_raw();
        let mut new_head = base;
        for node in deltas.into_iter().rev() {
            new_head = clone_delta(node, new_head);
        }
        if self.mapping.cas(pid, head, new_head) {
            // SAFETY: old chain atomically unlinked.
            unsafe { retire_chain(&guard, head) };
            true
        } else {
            // SAFETY: new chain never published.
            unsafe { free_chain_now(new_head) };
            false
        }
    }

    fn finish_read(&self, fetched: bool) {
        if fetched {
            bump!(self.stats, ss_ops);
        } else {
            self.stats.mm_op();
        }
    }

    /// Fetch the durable page state at `token` and install it as the new
    /// in-memory base, preserving unflushed deltas above it.
    fn fetch_install(
        &self,
        pid: PageId,
        observed_head: *mut Node,
        token: u64,
        guard: &Guard,
    ) -> Result<(), TreeError> {
        bump!(self.stats, fetches);
        let img = self.store.fetch(pid, token)?;
        // Clone unflushed deltas (those above the topmost marker); everything
        // at or below the marker is contained in the fetched image.
        let mut deltas: Vec<&Node> = Vec::new();
        // SAFETY: guard held.
        unsafe {
            for node in chain_iter(observed_head) {
                match node {
                    Node::FlushMarker { .. } | Node::FlashBase { .. } => break,
                    Node::LeafBase(_) | Node::InnerBase(_) => {
                        // Chain changed under us (no longer flash-resident);
                        // nothing to install.
                        return Ok(());
                    }
                    _ => deltas.push(node),
                }
            }
        }
        let base = Node::LeafBase(LeafBase {
            entries: img.entries,
            high_key: img.high_key,
            right: img.right,
            stored: Some(token),
        })
        .into_raw();
        let mut new_head = base;
        for node in deltas.into_iter().rev() {
            new_head = clone_delta(node, new_head);
        }
        if self.mapping.cas(pid, observed_head, new_head) {
            // SAFETY: old chain atomically unlinked.
            unsafe { retire_chain(guard, observed_head) };
            Ok(())
        } else {
            // SAFETY: new chain never published.
            unsafe { free_chain_now(new_head) };
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Upsert. At the Bw-tree every update is a blind delta prepend: the
    /// base page is *not* read, even if it is on flash (§6.2).
    pub fn put(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        bump!(self.stats, puts);
        self.write_delta(key.into(), Some(value.into()));
    }

    /// An update the caller asserts is blind; identical mechanics to
    /// [`BwTree::put`] but counted separately.
    pub fn blind_update(&self, key: impl Into<Bytes>, value: impl Into<Bytes>) {
        bump!(self.stats, blind_updates);
        self.write_delta(key.into(), Some(value.into()));
    }

    /// Delete (blind): prepends a delete delta whether or not the key exists.
    pub fn delete(&self, key: impl Into<Bytes>) {
        bump!(self.stats, deletes);
        self.write_delta(key.into(), None);
    }

    fn write_delta(&self, key: Bytes, value: Option<Bytes>) {
        let guard = dcs_ebr::pin();
        let vt = self.vtime();
        let mut pid = self.find_leaf(&key, &guard);
        loop {
            self.mapping.touch(pid, vt);
            let head = self.mapping.load(pid);
            if head.is_null() {
                pid = self.find_leaf(&key, &guard);
                continue;
            }
            // Re-check fencing at this leaf (it may have split since descent).
            // SAFETY: guard held.
            if let Some(r) = unsafe { leaf_route(head, &key) } {
                pid = r;
                continue;
            }
            let node = match &value {
                Some(v) => Node::Put {
                    key: key.clone(),
                    value: v.clone(),
                    next: head,
                },
                None => Node::Del {
                    key: key.clone(),
                    next: head,
                },
            };
            let ptr = node.into_raw();
            if self.mapping.cas(pid, head, ptr) {
                self.stats.mm_op();
                self.maybe_consolidate_leaf(pid, &guard);
                return;
            }
            // SAFETY: never published; `next` is raw so the drop is shallow.
            unsafe { drop(Box::from_raw(ptr)) };
        }
    }

    // ------------------------------------------------------------------
    // Consolidation
    // ------------------------------------------------------------------

    fn maybe_consolidate_leaf(&self, pid: PageId, guard: &Guard) {
        let head = self.mapping.load(pid);
        if head.is_null() {
            return;
        }
        // SAFETY: guard held.
        let shape = unsafe { chain_shape(head) };
        if shape.flash_base {
            // Blind updates have been accumulating above an evicted base.
            // Past the healing threshold, fault the base in so the chain
            // can consolidate (and split): unbounded partial chains would
            // otherwise grow write and read costs without limit.
            if shape.deltas >= self.config.max_partial_deltas {
                self.heal_partial_page(pid, guard);
            }
            return;
        }
        if shape.deltas < self.config.consolidate_threshold {
            return;
        }
        self.consolidate_leaf(pid, guard);
    }

    /// Fault in the base of a flash-resident page and consolidate it.
    /// Best-effort: store failures leave the chain as-is (still correct,
    /// just long).
    fn heal_partial_page(&self, pid: PageId, guard: &Guard) {
        let head = self.mapping.load(pid);
        if head.is_null() {
            return;
        }
        // SAFETY: guard held.
        let token = match unsafe { analyze_leaf_chain(head) } {
            LeafChainInfo::FlashBase { durable_token, .. } => durable_token,
            LeafChainInfo::MemBase { .. } => {
                self.consolidate_leaf(pid, guard);
                return;
            }
            LeafChainInfo::Frozen => return,
        };
        if self.fetch_install(pid, head, token, guard).is_ok() {
            self.consolidate_leaf(pid, guard);
        }
    }

    fn consolidate_leaf(&self, pid: PageId, guard: &Guard) {
        let head = self.mapping.load(pid);
        if head.is_null() {
            return;
        }
        // SAFETY: guard held.
        let Some(merged) = (unsafe { merge_leaf_chain(head) }) else {
            return;
        };
        if merged.deltas == 0 {
            return;
        }
        let _span = dcs_telemetry::span(
            "bwtree.consolidate_leaf",
            dcs_telemetry::CostClass::Maintenance,
        );
        let new_base = Node::LeafBase(LeafBase {
            entries: merged.entries,
            high_key: merged.high_key,
            right: merged.right,
            stored: None,
        })
        .into_raw();
        if self.mapping.cas(pid, head, new_base) {
            bump!(self.stats, consolidations);
            self.stats.maintenance();
            // SAFETY: old chain unlinked by the CAS.
            unsafe { retire_chain(guard, head) };
            self.maybe_split_leaf(pid, new_base, guard);
            self.maybe_merge_leaf(pid, new_base, guard);
        } else {
            // SAFETY: never published.
            unsafe { free_chain_now(new_base) };
        }
    }

    // ------------------------------------------------------------------
    // Structure modifications
    // ------------------------------------------------------------------

    fn maybe_split_leaf(&self, pid: PageId, base_ptr: *mut Node, guard: &Guard) {
        // SAFETY: base_ptr is the chain we just installed; guard held.
        let base = unsafe {
            match &*base_ptr {
                Node::LeafBase(b) => b,
                _ => return,
            }
        };
        if base.payload_bytes() <= self.config.max_leaf_bytes || base.entries.len() < 2 {
            return;
        }
        // Split at the half-payload point.
        let total = base.payload_bytes();
        let mut acc = 0usize;
        let mut idx = 0usize;
        for (i, (k, v)) in base.entries.iter().enumerate() {
            acc += k.len() + v.len();
            if acc >= total / 2 {
                idx = i + 1;
                break;
            }
        }
        idx = idx.clamp(1, base.entries.len() - 1);
        let sep = base.entries[idx].0.clone();
        let qid = self.mapping.allocate();
        let right_base = Node::LeafBase(LeafBase {
            entries: base.entries[idx..].to_vec(),
            high_key: base.high_key.clone(),
            right: base.right,
            stored: None,
        })
        .into_raw();
        self.mapping.store_new(qid, right_base);
        let split = Node::LeafSplit {
            sep: sep.clone(),
            right: qid,
            next: base_ptr,
        }
        .into_raw();
        if !self.mapping.cas(pid, base_ptr, split) {
            // Lost a race; undo the unpublished right page.
            // SAFETY: qid never reachable from the tree.
            unsafe {
                free_chain_now(right_base);
                drop(Box::from_raw(split));
            }
            self.mapping.free(qid);
            return;
        }
        bump!(self.stats, leaf_splits);
        self.stats.maintenance();
        let _span = dcs_telemetry::span("bwtree.leaf_split", dcs_telemetry::CostClass::Maintenance);
        self.post_index_entry(pid, sep, qid, guard);
    }

    /// Merge SMO: absorb the right sibling into `pid` when `pid`'s
    /// consolidated payload is below the configured minimum (Bw-tree
    /// ICDE'13 §IV.B, adapted: the absorb delta carries the folded
    /// contents of the removed page, so no chain is shared between the two
    /// mapping entries).
    ///
    /// Three atomic steps, all single CAS: (1) freeze the right sibling
    /// with a remove-node delta; (2) post an absorb delta on `pid` carrying
    /// the sibling's folded records and fences; (3) post an index-term
    /// delete at the parent. Any failure before step 2 rolls the freeze
    /// back; accessors reaching the frozen page redirect left.
    fn maybe_merge_leaf(&self, pid: PageId, base_ptr: *mut Node, guard: &Guard) {
        if self.config.min_leaf_bytes == 0 {
            return;
        }
        // SAFETY: base_ptr is the chain we just installed; guard held.
        let base = unsafe {
            match &*base_ptr {
                Node::LeafBase(b) => b,
                _ => return,
            }
        };
        if base.payload_bytes() >= self.config.min_leaf_bytes {
            return;
        }
        let Some(right_pid) = base.right else {
            return; // rightmost leaf: nothing to absorb
        };
        let Some(sep) = base.high_key.clone() else {
            return; // inconsistent (right without fence); be safe
        };

        // Step 1: freeze the right sibling.
        let r_head = self.mapping.load(right_pid);
        if r_head.is_null() {
            return;
        }
        // SAFETY: guard held.
        unsafe {
            if (*r_head).is_inner() {
                return;
            }
        }
        let remove = Node::RemoveNode {
            left: pid,
            next: r_head,
        }
        .into_raw();
        if !self.mapping.cas(right_pid, r_head, remove) {
            // SAFETY: never published; shallow drop.
            unsafe { drop(Box::from_raw(remove)) };
            return;
        }

        // Merges must not cross parent boundaries: the dead page needs an
        // explicit routing entry `(sep → right_pid)` to delete in step 3.
        // A page reachable only as its parent's first child (sep is that
        // parent's low fence) cannot be merged from the left.
        if !self.parent_has_exact_entry(right_pid, pid, &sep, guard) {
            let ok = self.mapping.cas(right_pid, remove, r_head);
            debug_assert!(ok, "freeze rollback must succeed");
            // SAFETY: never observed as committed state by writers.
            unsafe { drop(Box::from_raw(remove)) };
            return;
        }

        // Step 2: fold the frozen sibling and absorb it. The fold fails on
        // flash-resident or already-merging chains: roll the freeze back.
        // SAFETY: the chain below the freeze is immutable now.
        let folded = unsafe { merge_leaf_chain(r_head) };
        let Some(folded) = folded else {
            let ok = self.mapping.cas(right_pid, remove, r_head);
            debug_assert!(ok, "freeze rollback must succeed");
            // SAFETY: never observed as published state by writers.
            unsafe { drop(Box::from_raw(remove)) };
            return;
        };
        let mut attempts = 0;
        loop {
            attempts += 1;
            let l_head = self.mapping.load(pid);
            // Abort if we ourselves are being frozen, or if our base was
            // concurrently evicted: an absorb delta may only sit on a
            // memory-resident chain (flush and swap-in paths fold it via
            // consolidation, which needs the base).
            // SAFETY: guard held.
            let l_unmergeable = unsafe {
                chain_iter(l_head)
                    .any(|n| matches!(n, Node::RemoveNode { .. } | Node::FlashBase { .. }))
            };
            if l_unmergeable || attempts > 8 {
                let ok = self.mapping.cas(right_pid, remove, r_head);
                debug_assert!(ok, "freeze rollback must succeed");
                // SAFETY: as above.
                unsafe { drop(Box::from_raw(remove)) };
                return;
            }
            let absorb = Node::Absorb {
                sep: sep.clone(),
                entries: folded.entries.clone(),
                high_key: folded.high_key.clone(),
                right: folded.right,
                next: l_head,
            }
            .into_raw();
            if self.mapping.cas(pid, l_head, absorb) {
                break;
            }
            // SAFETY: never published; shallow drop.
            unsafe { drop(Box::from_raw(absorb)) };
        }
        bump!(self.stats, leaf_merges);
        self.stats.maintenance();
        let _span = dcs_telemetry::span("bwtree.leaf_merge", dcs_telemetry::CostClass::Maintenance);

        // Step 3: remove the parent's routing entry for the dead page.
        self.post_index_delete(right_pid, pid, &sep, guard);

        // Step 4: unpublish the dead page and retire its frozen chain. The
        // PID itself is not recycled (stale readers may still hold routes
        // to it within their grace period; a null slot restarts them).
        // A durable tombstone keeps recovery from resurrecting the page;
        // it becomes crash-atomic with the absorbing page's next flush at
        // the following checkpoint barrier.
        let _ = self.store.retire_page(right_pid);
        let ok = self.mapping.cas(right_pid, remove, std::ptr::null_mut());
        debug_assert!(ok, "nobody else may replace a frozen chain");
        // SAFETY: unlinked by the CAS above.
        unsafe { retire_chain(guard, remove) };
    }

    /// Whether some inner page holds an explicit routing entry
    /// `(sep → child)` for `child` (as opposed to reaching it through a
    /// first-child slot or sibling links).
    fn parent_has_exact_entry(
        &self,
        child: PageId,
        left_pid: PageId,
        sep: &Bytes,
        guard: &Guard,
    ) -> bool {
        let mut cur = self.root_pid();
        let mut hops = 0usize;
        loop {
            hops += 1;
            if hops > 100_000 {
                return false; // give up conservatively
            }
            let head = self.mapping.load(cur);
            if head.is_null() {
                return false;
            }
            // SAFETY: guard held.
            unsafe {
                if !self.head_is_inner(head) {
                    return false;
                }
                match self.route_inner(head, sep.as_ref(), guard) {
                    Route::Sibling(s) => cur = s,
                    Route::Child(c) if c == child => {
                        // Fold this inner page and look for the exact entry.
                        let Some(m) = merge_inner_chain(head) else {
                            return false;
                        };
                        return m
                            .entries
                            .binary_search_by(|(k, _)| k.cmp(sep))
                            .map(|i| m.entries[i].1 == child)
                            .unwrap_or(false);
                    }
                    Route::Child(c) if c == left_pid => return false,
                    Route::Child(c) => cur = c,
                }
            }
        }
    }

    /// Remove the routing entry `(sep → dead_pid)` from whichever inner
    /// page currently holds it.
    fn post_index_delete(&self, dead_pid: PageId, left_pid: PageId, sep: &Bytes, guard: &Guard) {
        let mut spins = 0usize;
        'outer: loop {
            spins += 1;
            assert!(spins < 1_000_000, "index-delete post livelock");
            let mut cur = self.root_pid();
            let mut hops = 0usize;
            loop {
                hops += 1;
                if hops > 100_000 {
                    continue 'outer;
                }
                let head = self.mapping.load(cur);
                if head.is_null() {
                    continue 'outer;
                }
                // SAFETY: guard held.
                unsafe {
                    if !self.head_is_inner(head) {
                        // Entry already gone (or never reachable): done.
                        return;
                    }
                    match self.route_inner(head, sep.as_ref(), guard) {
                        Route::Sibling(s) => cur = s,
                        Route::Child(c) if c == dead_pid => {
                            let delta = Node::IndexDelete {
                                sep: sep.clone(),
                                next: head,
                            }
                            .into_raw();
                            if self.mapping.cas(cur, head, delta) {
                                self.maybe_consolidate_inner(cur, guard);
                                return;
                            }
                            // SAFETY: never published.
                            drop(Box::from_raw(delta));
                            continue 'outer;
                        }
                        Route::Child(c) if c == left_pid => return, // already deleted
                        Route::Child(c) => cur = c,
                    }
                }
            }
        }
    }

    /// Install the routing entry `(sep → qid)` in the parent of `split_pid`,
    /// retrying across races, splitting the root if `split_pid` is the root.
    fn post_index_entry(&self, split_pid: PageId, sep: Bytes, qid: PageId, guard: &Guard) {
        let mut spins = 0usize;
        loop {
            spins += 1;
            assert!(spins < 1_000_000, "index-entry post livelock");
            match self.find_parent(split_pid, qid, &sep, guard) {
                ParentSearch::AlreadyPosted => return,
                ParentSearch::SplitPageIsRoot => {
                    let rid = self.mapping.allocate();
                    let new_root = Node::InnerBase(InnerBase {
                        first_child: split_pid,
                        entries: vec![(sep.clone(), qid)],
                        high_key: None,
                        right: None,
                    })
                    .into_raw();
                    self.mapping.store_new(rid, new_root);
                    if self
                        .root
                        .compare_exchange(split_pid, rid, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        return;
                    }
                    // Someone else grew the tree first; retry via descent.
                    // SAFETY: rid never published.
                    unsafe { free_chain_now(new_root) };
                    self.mapping.free(rid);
                }
                ParentSearch::Parent(ppid) => {
                    let head = self.mapping.load(ppid);
                    if head.is_null() {
                        continue;
                    }
                    let delta = Node::IndexInsert {
                        sep: sep.clone(),
                        child: qid,
                        next: head,
                    }
                    .into_raw();
                    if self.mapping.cas(ppid, head, delta) {
                        self.maybe_consolidate_inner(ppid, guard);
                        return;
                    }
                    // SAFETY: never published.
                    unsafe { drop(Box::from_raw(delta)) };
                }
            }
        }
    }

    /// Find the inner page that should hold the routing entry
    /// `(sep → qid)` for the split of `split_pid`.
    ///
    /// The descent may legitimately not pass *through* `split_pid`:
    /// concurrent, not-yet-posted sibling splits can route `sep` through a
    /// left sibling (reaching `split_pid` by a same-level sibling walk) or,
    /// for re-split leaves, directly into a newer sibling leaf. In both
    /// cases the node we last took a child step from is at the parent level
    /// and its key range covers `sep`, so it is a valid home for the entry
    /// (readers reach `qid` via the split delta / sibling links either
    /// way, as in a B-link tree).
    fn find_parent(
        &self,
        split_pid: PageId,
        qid: PageId,
        sep: &Bytes,
        guard: &Guard,
    ) -> ParentSearch {
        let mut cur = self.root_pid();
        if cur == split_pid {
            return ParentSearch::SplitPageIsRoot;
        }
        let split_head = self.mapping.load(split_pid);
        if split_head.is_null() {
            // The split page was merged away concurrently; its absorb delta
            // carries the (sep, qid) fence, so readers reach qid through
            // sibling links. Nothing to post.
            return ParentSearch::AlreadyPosted;
        }
        // SAFETY: guard held; checked non-null above.
        let split_is_leaf = unsafe { !self.head_is_inner(split_head) };
        // The node we most recently descended from (a parent-level
        // candidate); sibling steps stay on the same level and keep it.
        let mut last_from: Option<PageId> = None;
        let mut hops = 0usize;
        loop {
            hops += 1;
            assert!(hops < 1_000_000, "find_parent livelock");
            let head = self.mapping.load(cur);
            if head.is_null() {
                cur = self.root_pid();
                last_from = None;
                continue;
            }
            if cur == split_pid || cur == qid {
                // A sibling walk arrived at the split level itself.
                if let Some(p) = last_from {
                    return ParentSearch::Parent(p);
                }
                cur = self.root_pid();
                if cur == split_pid {
                    return ParentSearch::SplitPageIsRoot;
                }
                continue;
            }
            // SAFETY: guard held.
            unsafe {
                if !self.head_is_inner(head) {
                    // Landed on a foreign leaf. If the split page is a leaf
                    // too, the node we came from covers `sep` one level up.
                    if split_is_leaf {
                        if let Some(p) = last_from {
                            return ParentSearch::Parent(p);
                        }
                    }
                    cur = self.root_pid();
                    last_from = None;
                    if cur == split_pid {
                        return ParentSearch::SplitPageIsRoot;
                    }
                    continue;
                }
                match self.route_inner(head, sep.as_ref(), guard) {
                    Route::Sibling(s) => cur = s,
                    Route::Child(c) if c == qid => return ParentSearch::AlreadyPosted,
                    Route::Child(c) if c == split_pid => return ParentSearch::Parent(cur),
                    Route::Child(c) => {
                        last_from = Some(cur);
                        cur = c;
                    }
                }
            }
        }
    }

    fn maybe_consolidate_inner(&self, pid: PageId, guard: &Guard) {
        let head = self.mapping.load(pid);
        if head.is_null() {
            return;
        }
        // SAFETY: guard held.
        let shape = unsafe { chain_shape(head) };
        if shape.deltas < self.config.consolidate_threshold {
            return;
        }
        // SAFETY: guard held.
        let Some(merged) = (unsafe { merge_inner_chain(head) }) else {
            return;
        };
        let new_base = Node::InnerBase(InnerBase {
            first_child: merged.first_child,
            entries: merged.entries,
            high_key: merged.high_key,
            right: merged.right,
        })
        .into_raw();
        if self.mapping.cas(pid, head, new_base) {
            bump!(self.stats, consolidations);
            self.stats.maintenance();
            // SAFETY: unlinked by CAS.
            unsafe { retire_chain(guard, head) };
            self.maybe_split_inner(pid, new_base, guard);
        } else {
            // SAFETY: never published.
            unsafe { free_chain_now(new_base) };
        }
    }

    fn maybe_split_inner(&self, pid: PageId, base_ptr: *mut Node, guard: &Guard) {
        // SAFETY: just-installed chain; guard held.
        let base = unsafe {
            match &*base_ptr {
                Node::InnerBase(b) => b,
                _ => return,
            }
        };
        if base.child_count() <= self.config.max_inner_children || base.entries.len() < 3 {
            return;
        }
        let m = base.entries.len() / 2;
        let sep = base.entries[m].0.clone();
        let qid = self.mapping.allocate();
        let right_base = Node::InnerBase(InnerBase {
            first_child: base.entries[m].1,
            entries: base.entries[m + 1..].to_vec(),
            high_key: base.high_key.clone(),
            right: base.right,
        })
        .into_raw();
        self.mapping.store_new(qid, right_base);
        let split = Node::InnerSplit {
            sep: sep.clone(),
            right: qid,
            next: base_ptr,
        }
        .into_raw();
        if !self.mapping.cas(pid, base_ptr, split) {
            // SAFETY: unpublished.
            unsafe {
                free_chain_now(right_base);
                drop(Box::from_raw(split));
            }
            self.mapping.free(qid);
            return;
        }
        bump!(self.stats, inner_splits);
        self.stats.maintenance();
        let _span =
            dcs_telemetry::span("bwtree.inner_split", dcs_telemetry::CostClass::Maintenance);
        self.post_index_entry(pid, sep, qid, guard);
    }

    // ------------------------------------------------------------------
    // Flush / eviction (the cache-management surface used by dcs-llama)
    // ------------------------------------------------------------------

    /// Make `pid` durable and transition its in-memory state per `kind`.
    /// Returns the token of the page's durable state.
    pub fn flush_page(&self, pid: PageId, kind: FlushKind) -> Result<u64, TreeError> {
        let guard = dcs_ebr::pin();
        let mut spins = 0usize;
        loop {
            spins += 1;
            assert!(spins < 1_000_000, "flush livelock");
            let head = self.mapping.load(pid);
            if head.is_null() {
                return Err(TreeError::PageNotFound(pid));
            }
            // SAFETY: guard held.
            if unsafe { self.head_is_inner(head) } {
                return Err(TreeError::InnerPageNotEvictable(pid));
            }
            match self.flush_attempt(pid, head, kind, &guard)? {
                Some(token) => return Ok(token),
                None => continue, // lost a CAS; retry
            }
        }
    }

    /// One flush attempt against an observed chain head. `Ok(None)` = raced.
    fn flush_attempt(
        &self,
        pid: PageId,
        head: *mut Node,
        kind: FlushKind,
        guard: &Guard,
    ) -> Result<Option<u64>, TreeError> {
        // Analyze the chain.
        // SAFETY: guard held.
        let analysis = unsafe { analyze_leaf_chain(head) };
        match analysis {
            LeafChainInfo::Frozen => {
                // Mid-merge: the page is about to disappear into its left
                // sibling; cache managers treat this like a vanished page.
                Err(TreeError::PageNotFound(pid))
            }
            LeafChainInfo::MemBase {
                deltas,
                has_split,
                stored,
            } => {
                // SAFETY: guard held (merge re-walks the same chain).
                let merged = unsafe { merge_leaf_chain(head) }.expect("mem base merges");
                let token = if deltas == 0 {
                    match stored {
                        Some(t) => t, // clean page, no write needed
                        None => {
                            let img = PageImage::base(
                                merged.entries.clone(),
                                merged.high_key.clone(),
                                merged.right,
                            );
                            bump!(self.stats, full_flushes);
                            self.store.write(pid, &img, None)?
                        }
                    }
                } else if let (Some(t), false) = (stored, has_split) {
                    // Incremental flush: only the deltas travel.
                    // SAFETY: guard held.
                    let ops = unsafe { collect_unflushed_ops(head) };
                    let img = PageImage::delta(ops, merged.high_key.clone(), merged.right);
                    bump!(self.stats, incremental_flushes);
                    self.store.write(pid, &img, Some(t))?
                } else {
                    let img = PageImage::base(
                        merged.entries.clone(),
                        merged.high_key.clone(),
                        merged.right,
                    );
                    bump!(self.stats, full_flushes);
                    self.store.write(pid, &img, None)?
                };
                let new_head = match kind {
                    FlushKind::FlushOnly => Node::LeafBase(LeafBase {
                        entries: merged.entries,
                        high_key: merged.high_key,
                        right: merged.right,
                        stored: Some(token),
                    })
                    .into_raw(),
                    FlushKind::EvictAll => Node::FlashBase {
                        token,
                        high_key: merged.high_key,
                        right: merged.right,
                    }
                    .into_raw(),
                    FlushKind::EvictBaseKeepDeltas => {
                        let flash = Node::FlashBase {
                            token,
                            high_key: merged.high_key,
                            right: merged.right,
                        }
                        .into_raw();
                        // Keep record deltas (not splits/markers) in memory
                        // purely as a read cache; they are already durable in
                        // `token`, so a top marker prevents re-flushing them.
                        let mut chain = flash;
                        // SAFETY: guard held.
                        let record_deltas: Vec<&Node> = unsafe {
                            chain_iter(head)
                                .filter(|n| matches!(n, Node::Put { .. } | Node::Del { .. }))
                                .collect()
                        };
                        for node in record_deltas.into_iter().rev() {
                            chain = clone_delta(node, chain);
                        }
                        Node::FlushMarker { token, next: chain }.into_raw()
                    }
                };
                if self.mapping.cas(pid, head, new_head) {
                    match kind {
                        FlushKind::EvictAll => {
                            bump!(self.stats, evictions);
                        }
                        FlushKind::EvictBaseKeepDeltas => {
                            bump!(self.stats, base_evictions);
                        }
                        FlushKind::FlushOnly => {}
                    }
                    // SAFETY: unlinked by CAS.
                    unsafe { retire_chain(guard, head) };
                    Ok(Some(token))
                } else {
                    // SAFETY: never published.
                    unsafe { free_chain_now(new_head) };
                    Ok(None)
                }
            }
            LeafChainInfo::FlashBase {
                durable_token,
                unflushed,
                high_key,
                right,
            } => {
                if unflushed == 0 {
                    if kind != FlushKind::EvictAll {
                        return Ok(Some(durable_token));
                    }
                    let new_head = Node::FlashBase {
                        token: durable_token,
                        high_key,
                        right,
                    }
                    .into_raw();
                    if self.mapping.cas(pid, head, new_head) {
                        bump!(self.stats, evictions);
                        // SAFETY: unlinked.
                        unsafe { retire_chain(guard, head) };
                        return Ok(Some(durable_token));
                    }
                    // SAFETY: unpublished.
                    unsafe { free_chain_now(new_head) };
                    return Ok(None);
                }
                // Incremental flush of the unflushed deltas.
                // SAFETY: guard held.
                let ops = unsafe { collect_unflushed_ops(head) };
                let img = PageImage::delta(ops, high_key.clone(), right);
                bump!(self.stats, incremental_flushes);
                let t2 = self.store.write(pid, &img, Some(durable_token))?;
                let new_head = match kind {
                    FlushKind::EvictAll => Node::FlashBase {
                        token: t2,
                        high_key,
                        right,
                    }
                    .into_raw(),
                    FlushKind::FlushOnly | FlushKind::EvictBaseKeepDeltas => {
                        let flash = Node::FlashBase {
                            token: t2,
                            high_key,
                            right,
                        }
                        .into_raw();
                        let mut chain = flash;
                        // Keep the just-flushed deltas as the record cache.
                        // SAFETY: guard held.
                        let record_deltas: Vec<&Node> = unsafe {
                            collect_nodes_above_marker(head)
                                .into_iter()
                                .filter(|n| matches!(n, Node::Put { .. } | Node::Del { .. }))
                                .collect()
                        };
                        for node in record_deltas.into_iter().rev() {
                            chain = clone_delta(node, chain);
                        }
                        Node::FlushMarker {
                            token: t2,
                            next: chain,
                        }
                        .into_raw()
                    }
                };
                if self.mapping.cas(pid, head, new_head) {
                    match kind {
                        FlushKind::EvictAll => {
                            bump!(self.stats, evictions);
                        }
                        FlushKind::EvictBaseKeepDeltas => {
                            bump!(self.stats, base_evictions);
                        }
                        FlushKind::FlushOnly => {}
                    }
                    // SAFETY: unlinked.
                    unsafe { retire_chain(guard, head) };
                    Ok(Some(t2))
                } else {
                    // SAFETY: unpublished.
                    unsafe { free_chain_now(new_head) };
                    Ok(None)
                }
            }
        }
    }

    /// Flush and fully evict a page: afterwards only a flash stub remains.
    pub fn evict_page(&self, pid: PageId) -> Result<u64, TreeError> {
        self.flush_page(pid, FlushKind::EvictAll)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The PID of the leaf currently owning `key` (for cache-management
    /// harnesses; the answer can be stale the moment it returns).
    pub fn locate_leaf(&self, key: &[u8]) -> PageId {
        let guard = dcs_ebr::pin();
        self.find_leaf(key, &guard)
    }

    /// Describe one page, or `None` if the PID is unallocated.
    pub fn page_info(&self, pid: PageId) -> Option<PageInfo> {
        if pid >= self.mapping.high_water() {
            return None;
        }
        let guard = dcs_ebr::pin();
        let head = self.mapping.load(pid);
        if head.is_null() {
            return None;
        }
        let _ = &guard;
        // SAFETY: guard held since before the load.
        let (is_leaf, residency, chain_len, mem_bytes, dirty) = unsafe {
            let is_leaf = !self.head_is_inner(head);
            let shape = chain_shape(head);
            let residency = if !is_leaf || !shape.flash_base {
                ResidencyState::Resident
            } else {
                let has_record_delta =
                    chain_iter(head).any(|n| matches!(n, Node::Put { .. } | Node::Del { .. }));
                if has_record_delta {
                    ResidencyState::Partial
                } else {
                    ResidencyState::Evicted
                }
            };
            let dirty = if !is_leaf {
                false // index pages are rebuilt, not flushed
            } else {
                match analyze_leaf_chain(head) {
                    LeafChainInfo::MemBase { deltas, stored, .. } => deltas > 0 || stored.is_none(),
                    LeafChainInfo::FlashBase { unflushed, .. } => unflushed > 0,
                    LeafChainInfo::Frozen => false, // disappearing into its sibling
                }
            };
            (is_leaf, residency, shape.deltas, shape.bytes, dirty)
        };
        Some(PageInfo {
            pid,
            is_leaf,
            residency,
            chain_len,
            mem_bytes,
            last_access: self.mapping.last_access(pid),
            dirty,
        })
    }

    /// Describe every allocated page.
    pub fn pages(&self) -> Vec<PageInfo> {
        (0..self.mapping.high_water())
            .filter_map(|pid| self.page_info(pid))
            .collect()
    }

    /// Approximate total in-memory footprint: page chains plus the mapping
    /// table's fixed per-slot overhead.
    pub fn footprint_bytes(&self) -> usize {
        let pages: usize = self.pages().iter().map(|p| p.mem_bytes).sum();
        pages + self.mapping.high_water() as usize * 16
    }

    /// Merged snapshot of the leaf owning `key` plus its high key (the
    /// resume point for scans). Faults the leaf in if flash-resident.
    pub(crate) fn snapshot_leaf_for_scan(&self, key: &[u8]) -> Result<LeafSnapshot, TreeError> {
        let guard = dcs_ebr::pin();
        let mut pid = self.find_leaf(key, &guard);
        let mut spins = 0usize;
        loop {
            spins += 1;
            assert!(spins < 1_000_000, "scan snapshot livelock");
            let head = self.mapping.load(pid);
            if head.is_null() {
                pid = self.find_leaf(key, &guard);
                continue;
            }
            // SAFETY: guard held since before the load.
            unsafe {
                if let Some(r) = leaf_route(head, key) {
                    pid = r;
                    continue;
                }
                match merge_leaf_chain(head) {
                    Some(m) => {
                        self.mapping.touch(pid, self.vtime());
                        return Ok((m.entries, m.high_key));
                    }
                    None => {
                        // Flash-resident: fault the base in and retry.
                        if let LeafChainInfo::FlashBase { durable_token, .. } =
                            analyze_leaf_chain(head)
                        {
                            self.fetch_install(pid, head, durable_token, &guard)?;
                            bump!(self.stats, ss_ops);
                        }
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for BwTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BwTree")
            .field("root", &self.root_pid())
            .field("pages", &self.mapping.high_water())
            .field("stats", &self.stats())
            .finish()
    }
}

enum ParentSearch {
    Parent(PageId),
    AlreadyPosted,
    SplitPageIsRoot,
}

// ----------------------------------------------------------------------
// Chain analysis helpers (free functions; all require a held guard)
// ----------------------------------------------------------------------

/// If `key` is fenced out of this leaf, the sibling to chase.
///
/// # Safety: live chain under a guard.
unsafe fn leaf_route(head: *const Node, key: &[u8]) -> Option<PageId> {
    // SAFETY: forwarding this function's own contract — `head` is a live
    // chain protected by the caller's guard.
    for node in unsafe { chain_iter(head) } {
        match node {
            Node::RemoveNode { left, .. } => return Some(*left),
            Node::Absorb {
                high_key, right, ..
            } => {
                if let (Some(hk), Some(r)) = (high_key, right) {
                    if key >= hk.as_ref() {
                        return Some(*r);
                    }
                }
                // Absorb supersedes the fences below it.
                return None;
            }
            Node::LeafSplit { sep, right, .. } if key >= sep.as_ref() => {
                return Some(*right);
            }
            Node::LeafBase(b) => {
                if let (Some(hk), Some(r)) = (&b.high_key, b.right) {
                    if key >= hk.as_ref() {
                        return Some(r);
                    }
                }
                return None;
            }
            Node::FlashBase {
                high_key, right, ..
            } => {
                if let (Some(hk), Some(r)) = (high_key, right) {
                    if key >= hk.as_ref() {
                        return Some(*r);
                    }
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

/// Search a leaf chain for `key`.
///
/// # Safety: live chain under a guard.
unsafe fn search_leaf(head: *const Node, key: &[u8]) -> LeafSearch {
    let mut passed_marker = false;
    let mut first_answer: Option<(bool, Option<Bytes>)> = None;
    let mut first_marker_token: Option<u64> = None;
    // SAFETY: forwarding this function's own contract — `head` is a live
    // chain protected by the caller's guard.
    for node in unsafe { chain_iter(head) } {
        match node {
            Node::Put { key: k, value, .. } => {
                if first_answer.is_none() && k.as_ref() == key {
                    first_answer = Some((passed_marker, Some(value.clone())));
                }
            }
            Node::Del { key: k, .. } => {
                if first_answer.is_none() && k.as_ref() == key {
                    first_answer = Some((passed_marker, None));
                }
            }
            Node::LeafSplit { sep, right, .. } => {
                if key >= sep.as_ref() {
                    return LeafSearch::GoRight(*right);
                }
            }
            Node::FlushMarker { token, .. } => {
                passed_marker = true;
                if first_marker_token.is_none() {
                    first_marker_token = Some(*token);
                }
            }
            Node::RemoveNode { left, .. } => {
                // Page is being merged away; its contents now (or shortly)
                // live at the left sibling.
                return LeafSearch::GoRight(*left);
            }
            Node::Absorb {
                sep,
                entries,
                high_key,
                right,
                ..
            } => {
                if let Some((_, answer)) = first_answer {
                    return match answer {
                        Some(v) => LeafSearch::Found {
                            value: v,
                            from_delta_over_flash: false,
                        },
                        None => LeafSearch::Deleted,
                    };
                }
                if let (Some(hk), Some(r)) = (high_key, right) {
                    if key >= hk.as_ref() {
                        return LeafSearch::GoRight(*r);
                    }
                }
                if key >= sep.as_ref() {
                    // The absorbed range is fully materialized here.
                    return match entries.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                        Ok(i) => LeafSearch::Found {
                            value: entries[i].1.clone(),
                            from_delta_over_flash: false,
                        },
                        Err(_) => LeafSearch::Missing,
                    };
                }
                // Below the absorbed range: keep walking, but the fence of
                // nodes further down is stale (superseded by this absorb).
            }
            Node::LeafBase(b) => {
                if let Some((_, answer)) = first_answer {
                    return match answer {
                        Some(v) => LeafSearch::Found {
                            value: v,
                            from_delta_over_flash: false,
                        },
                        None => LeafSearch::Deleted,
                    };
                }
                if let (Some(hk), Some(r)) = (&b.high_key, b.right) {
                    if key >= hk.as_ref() {
                        return LeafSearch::GoRight(r);
                    }
                }
                return match b.entries.binary_search_by(|(k, _)| k.as_ref().cmp(key)) {
                    Ok(i) => LeafSearch::Found {
                        value: b.entries[i].1.clone(),
                        from_delta_over_flash: false,
                    },
                    Err(_) => LeafSearch::Missing,
                };
            }
            Node::FlashBase {
                token,
                high_key,
                right,
            } => {
                if let Some((_, answer)) = first_answer {
                    // Answered from the in-memory record cache (§6.3).
                    return match answer {
                        Some(v) => LeafSearch::Found {
                            value: v,
                            from_delta_over_flash: true,
                        },
                        None => LeafSearch::Deleted,
                    };
                }
                if let (Some(hk), Some(r)) = (high_key, right) {
                    if key >= hk.as_ref() {
                        return LeafSearch::GoRight(*r);
                    }
                }
                return LeafSearch::NeedFetch {
                    token: first_marker_token.unwrap_or(*token),
                };
            }
            Node::IndexInsert { .. }
            | Node::IndexDelete { .. }
            | Node::InnerSplit { .. }
            | Node::InnerBase(_) => {
                unreachable!("inner node in leaf chain")
            }
        }
    }
    LeafSearch::Missing
}

struct MergedLeaf {
    entries: Vec<(Bytes, Bytes)>,
    high_key: Option<Bytes>,
    right: Option<PageId>,
    deltas: usize,
}

/// Fold a leaf chain into its logical record set. `None` if the base is on
/// flash (cannot merge without it).
///
/// # Safety: live chain under a guard.
unsafe fn merge_leaf_chain(head: *const Node) -> Option<MergedLeaf> {
    // SAFETY: forwarding this function's own contract — `head` is a live
    // chain protected by the caller's guard.
    let nodes: Vec<&Node> = unsafe { chain_iter(head) }.collect();
    if nodes.iter().any(|n| matches!(n, Node::RemoveNode { .. })) {
        return None; // frozen for merging; do not consolidate
    }
    let base = match nodes.last()? {
        Node::LeafBase(b) => b,
        _ => return None,
    };
    let mut entries = base.entries.clone();
    let mut high_key = base.high_key.clone();
    let mut right = base.right;
    let mut deltas = 0usize;
    // Apply deltas oldest → newest.
    for node in nodes[..nodes.len() - 1].iter().rev() {
        deltas += 1;
        match node {
            Node::Put { key, value, .. } => match entries.binary_search_by(|(k, _)| k.cmp(key)) {
                Ok(i) => entries[i].1 = value.clone(),
                Err(i) => entries.insert(i, (key.clone(), value.clone())),
            },
            Node::Del { key, .. } => {
                if let Ok(i) = entries.binary_search_by(|(k, _)| k.cmp(key)) {
                    entries.remove(i);
                }
            }
            Node::LeafSplit { sep, right: r, .. } => {
                let cut = entries.partition_point(|(k, _)| k < sep);
                entries.truncate(cut);
                high_key = Some(sep.clone());
                right = Some(*r);
            }
            Node::FlushMarker { .. } => {
                deltas -= 1; // markers are bookkeeping, not state
            }
            Node::Absorb {
                entries: absorbed,
                high_key: hk,
                right: r,
                ..
            } => {
                // All absorbed keys lie at/above the old fence, hence above
                // every existing entry.
                debug_assert!(entries
                    .last()
                    .zip(absorbed.first())
                    .map(|((a, _), (b, _))| a < b)
                    .unwrap_or(true));
                entries.extend(absorbed.iter().cloned());
                high_key = hk.clone();
                right = *r;
            }
            _ => unreachable!("inner node in leaf chain"),
        }
    }
    Some(MergedLeaf {
        entries,
        high_key,
        right,
        deltas,
    })
}

struct MergedInner {
    first_child: PageId,
    entries: Vec<(Bytes, PageId)>,
    high_key: Option<Bytes>,
    right: Option<PageId>,
}

/// Fold an inner chain into its routing table.
///
/// # Safety: live chain under a guard.
unsafe fn merge_inner_chain(head: *const Node) -> Option<MergedInner> {
    // SAFETY: forwarding this function's own contract — `head` is a live
    // chain protected by the caller's guard.
    let nodes: Vec<&Node> = unsafe { chain_iter(head) }.collect();
    let base = match nodes.last()? {
        Node::InnerBase(b) => b,
        _ => return None,
    };
    let mut entries = base.entries.clone();
    let mut high_key = base.high_key.clone();
    let mut right = base.right;
    // Oldest → newest so later decisions win.
    for node in nodes[..nodes.len() - 1].iter().rev() {
        match node {
            Node::IndexInsert { sep, child, .. } => {
                match entries.binary_search_by(|(k, _)| k.cmp(sep)) {
                    Ok(i) => entries[i].1 = *child,
                    Err(i) => entries.insert(i, (sep.clone(), *child)),
                }
            }
            Node::IndexDelete { sep, .. } => {
                if let Ok(i) = entries.binary_search_by(|(k, _)| k.cmp(sep)) {
                    entries.remove(i);
                }
            }
            Node::InnerSplit { sep, right: r, .. } => {
                let cut = entries.partition_point(|(k, _)| k < sep);
                entries.truncate(cut);
                high_key = Some(sep.clone());
                right = Some(*r);
            }
            _ => unreachable!("leaf node in inner chain"),
        }
    }
    Some(MergedInner {
        first_child: base.first_child,
        entries,
        high_key,
        right,
    })
}

enum LeafChainInfo {
    /// Base page in memory.
    MemBase {
        deltas: usize,
        has_split: bool,
        stored: Option<u64>,
    },
    /// The page is frozen by an in-flight merge (RemoveNode on top).
    Frozen,
    /// Base on flash; `unflushed` = record deltas above the topmost marker.
    FlashBase {
        durable_token: u64,
        unflushed: usize,
        high_key: Option<Bytes>,
        right: Option<PageId>,
    },
}

/// Classify a leaf chain for the flush paths.
///
/// # Safety: live chain under a guard.
unsafe fn analyze_leaf_chain(head: *const Node) -> LeafChainInfo {
    let mut deltas = 0usize;
    let mut has_split = false;
    let mut unflushed = 0usize;
    let mut seen_marker: Option<u64> = None;
    // SAFETY: forwarding this function's own contract — `head` is a live
    // chain protected by the caller's guard.
    for node in unsafe { chain_iter(head) } {
        match node {
            Node::Put { .. } | Node::Del { .. } => {
                deltas += 1;
                if seen_marker.is_none() {
                    unflushed += 1;
                }
            }
            Node::LeafSplit { .. } => {
                deltas += 1;
                has_split = true;
            }
            Node::Absorb { .. } => {
                deltas += 1;
                has_split = true; // structural: flush must be a full image
            }
            Node::RemoveNode { .. } => return LeafChainInfo::Frozen,
            Node::FlushMarker { token, .. } => {
                if seen_marker.is_none() {
                    seen_marker = Some(*token);
                }
            }
            Node::LeafBase(b) => {
                return LeafChainInfo::MemBase {
                    deltas,
                    has_split,
                    stored: b.stored,
                };
            }
            Node::FlashBase {
                token,
                high_key,
                right,
            } => {
                return LeafChainInfo::FlashBase {
                    durable_token: seen_marker.unwrap_or(*token),
                    unflushed,
                    high_key: high_key.clone(),
                    right: *right,
                };
            }
            _ => unreachable!("inner node in leaf chain"),
        }
    }
    unreachable!("leaf chain without a base");
}

/// Collect record ops above the topmost flush marker (or the whole delta
/// section if no marker), newest first — the payload of an incremental flush.
///
/// # Safety: live chain under a guard.
unsafe fn collect_unflushed_ops(head: *const Node) -> Vec<DeltaOp> {
    let mut ops = Vec::new();
    // SAFETY: forwarding this function's own contract — `head` is a live
    // chain protected by the caller's guard.
    for node in unsafe { chain_iter(head) } {
        match node {
            Node::Put { key, value, .. } => {
                ops.push(DeltaOp::Put(key.clone(), value.clone()));
            }
            Node::Del { key, .. } => ops.push(DeltaOp::Del(key.clone())),
            Node::FlushMarker { .. } | Node::LeafBase(_) | Node::FlashBase { .. } => break,
            Node::LeafSplit { .. } => {}
            _ => unreachable!("inner node in leaf chain"),
        }
    }
    ops
}

/// Collect the nodes above the topmost marker (exclusive).
///
/// # Safety: live chain under a guard; references valid while guard held.
unsafe fn collect_nodes_above_marker<'g>(head: *const Node) -> Vec<&'g Node> {
    let mut out = Vec::new();
    // SAFETY: forwarding this function's own contract — `head` is a live
    // chain protected by the caller's guard.
    for node in unsafe { chain_iter(head) } {
        match node {
            Node::FlushMarker { .. } | Node::LeafBase(_) | Node::FlashBase { .. } => break,
            n => out.push(n),
        }
    }
    out
}

/// Clone a delta node onto a new `next` pointer.
fn clone_delta(node: &Node, next: *mut Node) -> *mut Node {
    let cloned = match node {
        Node::Put { key, value, .. } => Node::Put {
            key: key.clone(),
            value: value.clone(),
            next,
        },
        Node::Del { key, .. } => Node::Del {
            key: key.clone(),
            next,
        },
        Node::LeafSplit { sep, right, .. } => Node::LeafSplit {
            sep: sep.clone(),
            right: *right,
            next,
        },
        Node::FlushMarker { token, .. } => Node::FlushMarker {
            token: *token,
            next,
        },
        _ => unreachable!("only leaf deltas are cloned"),
    };
    cloned.into_raw()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_owned())
    }

    fn kv(i: u32) -> (Bytes, Bytes) {
        (
            Bytes::from(format!("key{i:06}")),
            Bytes::from(format!("value-{i}")),
        )
    }

    #[test]
    fn empty_tree_misses() {
        let t = BwTree::in_memory(BwTreeConfig::default());
        assert_eq!(t.get(b"nothing"), None);
    }

    #[test]
    fn put_get_roundtrip() {
        let t = BwTree::in_memory(BwTreeConfig::default());
        t.put(b("a"), b("1"));
        t.put(b("b"), b("2"));
        assert_eq!(t.get(b"a"), Some(b("1")));
        assert_eq!(t.get(b"b"), Some(b("2")));
        assert_eq!(t.get(b"c"), None);
    }

    #[test]
    fn overwrite_takes_latest() {
        let t = BwTree::in_memory(BwTreeConfig::default());
        t.put(b("k"), b("v1"));
        t.put(b("k"), b("v2"));
        assert_eq!(t.get(b"k"), Some(b("v2")));
    }

    #[test]
    fn delete_tombstones() {
        let t = BwTree::in_memory(BwTreeConfig::default());
        t.put(b("k"), b("v"));
        t.delete(b("k"));
        assert_eq!(t.get(b"k"), None);
        // Deleting a missing key is fine (blind).
        t.delete(b("never"));
        assert_eq!(t.get(b"never"), None);
    }

    #[test]
    fn consolidation_preserves_data() {
        let cfg = BwTreeConfig {
            consolidate_threshold: 4,
            ..BwTreeConfig::default()
        };
        let t = BwTree::in_memory(cfg);
        for i in 0..50u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        assert!(t.stats().consolidations > 0, "no consolidation happened");
        for i in 0..50u32 {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k), Some(v), "key {i} lost");
        }
    }

    #[test]
    fn splits_build_multilevel_tree() {
        let t = BwTree::in_memory(BwTreeConfig::small_pages());
        let n = 2000u32;
        for i in 0..n {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let stats = t.stats();
        assert!(stats.leaf_splits > 10, "leaf splits: {}", stats.leaf_splits);
        assert!(
            stats.inner_splits > 0,
            "inner splits: {}",
            stats.inner_splits
        );
        for i in 0..n {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k), Some(v), "key {i} lost after splits");
        }
        // Unknown keys still miss.
        assert_eq!(t.get(b"zzz"), None);
        assert_eq!(t.get(b"key999999x"), None);
    }

    #[test]
    fn reverse_insert_order() {
        let t = BwTree::in_memory(BwTreeConfig::small_pages());
        for i in (0..1000u32).rev() {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k), Some(v));
        }
    }

    #[test]
    fn random_order_with_deletes() {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut ids: Vec<u32> = (0..1500).collect();
        ids.shuffle(&mut rng);
        let t = BwTree::in_memory(BwTreeConfig::small_pages());
        for &i in &ids {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        // Delete every third key.
        for i in (0..1500u32).step_by(3) {
            t.delete(kv(i).0);
        }
        for i in 0..1500u32 {
            let (k, v) = kv(i);
            if i % 3 == 0 {
                assert_eq!(t.get(&k), None, "key {i} should be deleted");
            } else {
                assert_eq!(t.get(&k), Some(v), "key {i} lost");
            }
        }
    }

    #[test]
    fn flush_only_keeps_page_readable_without_io() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store.clone());
        for i in 0..20u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        // Find the (single) leaf and flush it in place.
        let leaf = t
            .pages()
            .into_iter()
            .find(|p| p.is_leaf)
            .expect("a leaf exists");
        let token = t.flush_page(leaf.pid, FlushKind::FlushOnly).unwrap();
        assert_eq!(store.parts_written(), 1);
        let before = t.stats().fetches;
        for i in 0..20u32 {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k), Some(v));
        }
        assert_eq!(t.stats().fetches, before, "flush-only must not cause I/O");
        // A second flush of a clean page is free.
        let token2 = t.flush_page(leaf.pid, FlushKind::FlushOnly).unwrap();
        assert_eq!(token, token2);
        assert_eq!(store.parts_written(), 1);
    }

    #[test]
    fn evict_and_fetch_roundtrip() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store);
        for i in 0..20u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        t.evict_page(leaf.pid).unwrap();
        assert_eq!(
            t.page_info(leaf.pid).unwrap().residency,
            ResidencyState::Evicted
        );
        // Reads fault the page back in.
        for i in 0..20u32 {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k), Some(v));
        }
        assert_eq!(t.stats().fetches, 1, "one swap-in should serve all reads");
        assert_eq!(
            t.page_info(leaf.pid).unwrap().residency,
            ResidencyState::Resident
        );
        assert!(t.stats().ss_ops >= 1);
    }

    #[test]
    fn async_get_roundtrip_matches_sync_counts() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store.clone());
        for i in 0..20u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        t.evict_page(leaf.pid).unwrap();

        // Resident-path probe is a plain hit.
        let (k3, v3) = kv(3);
        let probe = t.try_get_async(&k3);
        let TryGetAsync::NeedFetch { pid, token } = probe else {
            panic!("evicted page must need a fetch, got {probe:?}");
        };
        assert_eq!(pid, leaf.pid);
        // Caller-side fetch + install, then resume.
        let img = store.fetch(pid, token).unwrap();
        assert!(t.install_fetched(pid, token, img));
        assert_eq!(t.resume_get(&k3), TryGetAsync::Hit(Some(v3)));

        // One logical get, one fetch, one secondary-storage op, no
        // main-memory op — exactly what the blocking miss path counts.
        let s = t.stats();
        assert_eq!(s.gets, 1);
        assert_eq!(s.fetches, 1);
        assert_eq!(s.ss_ops, 1);
        assert_eq!(s.mm_ops - 20, 0, "only the 20 loading puts");

        // Now resident: the async probe hits directly.
        let (k4, v4) = kv(4);
        assert_eq!(t.try_get_async(&k4), TryGetAsync::Hit(Some(v4)));
        assert_eq!(t.stats().mm_ops - 20, 1);
    }

    #[test]
    fn install_fetched_rejects_stale_token() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store.clone());
        for i in 0..10u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        t.evict_page(leaf.pid).unwrap();
        let TryGetAsync::NeedFetch { pid, token } = t.try_get_async(&kv(2).0) else {
            panic!("expected fetch");
        };
        let img = store.fetch(pid, token).unwrap();
        // A concurrent writer dirties and re-flushes the page, superseding
        // the token before our install lands.
        t.blind_update(kv(2).0, b("newer"));
        let token2 = t.flush_page(pid, FlushKind::EvictAll).unwrap();
        assert_ne!(token, token2);
        assert!(!t.install_fetched(pid, token, img), "stale install refused");
        // Resume sees the page still flash-resident at the new token.
        let TryGetAsync::NeedFetch { token: t3, .. } = t.resume_get(&kv(2).0) else {
            panic!("still evicted");
        };
        assert_eq!(t3, token2);
        let img2 = store.fetch(pid, token2).unwrap();
        assert!(t.install_fetched(pid, token2, img2));
        assert_eq!(t.resume_get(&kv(2).0), TryGetAsync::Hit(Some(b("newer"))));
    }

    #[test]
    fn blind_update_to_evicted_page_is_io_free() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store);
        for i in 0..10u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        t.evict_page(leaf.pid).unwrap();
        let fetches_before = t.stats().fetches;
        t.blind_update(kv(3).0, b("fresh"));
        assert_eq!(
            t.stats().fetches,
            fetches_before,
            "blind update must not fetch"
        );
        assert_eq!(
            t.page_info(leaf.pid).unwrap().residency,
            ResidencyState::Partial
        );
        // The blind value is readable from the record cache without I/O.
        assert_eq!(t.get(&kv(3).0), Some(b("fresh")));
        assert_eq!(t.stats().fetches, fetches_before);
        assert!(t.stats().record_cache_hits >= 1);
        // Other keys on the page require the fetch.
        assert_eq!(t.get(&kv(4).0), Some(kv(4).1));
        assert_eq!(t.stats().fetches, fetches_before + 1);
    }

    #[test]
    fn evict_base_keep_deltas_serves_from_record_cache() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store);
        for i in 0..10u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        // Create some fresh deltas on a flushed page.
        t.flush_page(leaf.pid, FlushKind::FlushOnly).unwrap();
        t.put(kv(1).0, b("new1"));
        t.put(kv(2).0, b("new2"));
        t.flush_page(leaf.pid, FlushKind::EvictBaseKeepDeltas)
            .unwrap();
        assert_eq!(
            t.page_info(leaf.pid).unwrap().residency,
            ResidencyState::Partial
        );
        let fetches = t.stats().fetches;
        assert_eq!(t.get(&kv(1).0), Some(b("new1")));
        assert_eq!(t.get(&kv(2).0), Some(b("new2")));
        assert_eq!(t.stats().fetches, fetches, "record cache should hit");
        assert!(t.stats().record_cache_hits >= 2);
    }

    #[test]
    fn incremental_flush_writes_only_deltas() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store.clone());
        for i in 0..50u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        t.flush_page(leaf.pid, FlushKind::FlushOnly).unwrap();
        let full_flushes = t.stats().full_flushes;
        // A couple of updates, then flush again: must be incremental.
        t.put(kv(7).0, b("x7"));
        t.put(kv(9).0, b("x9"));
        t.flush_page(leaf.pid, FlushKind::FlushOnly).unwrap();
        let s = t.stats();
        assert_eq!(
            s.full_flushes, full_flushes,
            "second flush must not be full"
        );
        assert_eq!(s.incremental_flushes, 1);
        // Evict; fetch must fold base + increments.
        t.evict_page(leaf.pid).unwrap();
        assert_eq!(t.get(&kv(7).0), Some(b("x7")));
        assert_eq!(t.get(&kv(9).0), Some(b("x9")));
        assert_eq!(t.get(&kv(8).0), Some(kv(8).1));
    }

    #[test]
    fn eviction_of_inner_pages_refused() {
        let t = BwTree::in_memory(BwTreeConfig::small_pages());
        for i in 0..500u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let inner = t
            .pages()
            .into_iter()
            .find(|p| !p.is_leaf)
            .expect("tree has inner pages");
        assert!(matches!(
            t.flush_page(inner.pid, FlushKind::EvictAll),
            Err(TreeError::InnerPageNotEvictable(_))
        ));
    }

    #[test]
    fn evicted_page_split_state_survives() {
        // Fill enough to split, evict all leaves, and verify reads.
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::small_pages(), store);
        for i in 0..800u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        for p in t.pages() {
            if p.is_leaf {
                t.evict_page(p.pid).unwrap();
            }
        }
        for i in 0..800u32 {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k), Some(v), "key {i} lost after mass eviction");
        }
    }

    #[test]
    fn mm_vs_ss_accounting() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::default(), store);
        for i in 0..10u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let s0 = t.stats();
        t.get(&kv(0).0);
        let s1 = t.stats();
        assert_eq!(s1.mm_ops - s0.mm_ops, 1);
        assert_eq!(s1.ss_ops, s0.ss_ops);
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        t.evict_page(leaf.pid).unwrap();
        t.get(&kv(0).0);
        let s2 = t.stats();
        assert_eq!(s2.ss_ops - s1.ss_ops, 1, "post-evict read is an SS op");
    }

    #[test]
    fn vtime_stamps_page_access() {
        let t = BwTree::in_memory(BwTreeConfig::default());
        t.put(b("k"), b("v"));
        t.set_vtime(123_456);
        t.get(b"k");
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        assert_eq!(leaf.last_access, 123_456);
    }

    #[test]
    fn footprint_grows_with_data() {
        let t = BwTree::in_memory(BwTreeConfig::default());
        let f0 = t.footprint_bytes();
        for i in 0..100u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        assert!(t.footprint_bytes() > f0);
    }

    #[test]
    fn mass_deletion_triggers_merges_and_preserves_data() {
        let t = BwTree::in_memory(BwTreeConfig::small_pages());
        let n = 2000u32;
        for i in 0..n {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaves_before = t.pages().iter().filter(|p| p.is_leaf).count();
        // Delete 90% of the keys; surviving keys every 10th.
        for i in 0..n {
            if i % 10 != 0 {
                t.delete(kv(i).0);
            }
        }
        // Touch the tree to drive consolidations over the deletion deltas.
        for i in (0..n).step_by(10) {
            let (k, v) = kv(i);
            t.put(k.clone(), v);
        }
        let stats = t.stats();
        assert!(stats.leaf_merges > 0, "no merges after mass deletion");
        let leaves_after = t.pages().iter().filter(|p| p.is_leaf).count();
        assert!(
            leaves_after < leaves_before,
            "leaf count should shrink: {leaves_before} -> {leaves_after}"
        );
        for i in 0..n {
            let (k, v) = kv(i);
            if i % 10 == 0 {
                assert_eq!(t.get(&k), Some(v), "survivor {i} lost");
            } else {
                assert_eq!(t.get(&k), None, "deleted {i} returned");
            }
        }
        // Scans agree too.
        assert_eq!(t.count_entries(), (n as usize).div_ceil(10));
    }

    #[test]
    fn merged_tree_scans_in_order() {
        let t = BwTree::in_memory(BwTreeConfig::small_pages());
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        for i in 0..1000u32 {
            if i % 7 != 0 {
                t.delete(kv(i).0);
            }
        }
        for i in (0..1000u32).step_by(7) {
            t.put(kv(i).0, kv(i).1); // drive consolidation + merges
        }
        let all: Vec<_> = t.range(b"", None).map(|r| r.unwrap()).collect();
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "unsorted scan");
        assert_eq!(all.len(), 1000usize.div_ceil(7));
    }

    #[test]
    fn merges_with_store_and_eviction() {
        let store = Arc::new(MemStore::new());
        let t = BwTree::with_store(BwTreeConfig::small_pages(), store);
        for i in 0..1500u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        for i in 0..1500u32 {
            if i % 5 != 0 {
                t.delete(kv(i).0);
            }
        }
        for i in (0..1500u32).step_by(5) {
            t.put(kv(i).0, kv(i).1);
        }
        assert!(t.stats().leaf_merges > 0);
        // Evict everything, read everything back.
        for p in t.pages() {
            if p.is_leaf {
                let _ = t.evict_page(p.pid);
            }
        }
        for i in 0..1500u32 {
            let (k, v) = kv(i);
            if i % 5 == 0 {
                assert_eq!(t.get(&k), Some(v), "survivor {i}");
            } else {
                assert_eq!(t.get(&k), None, "deleted {i}");
            }
        }
    }

    #[test]
    fn concurrent_deletes_inserts_reads_with_merges() {
        let t = Arc::new(BwTree::in_memory(BwTreeConfig::small_pages()));
        for i in 0..2000u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let mut handles = Vec::new();
        // Deleters sweep ranges (shrinking pages), inserters refill others,
        // readers hammer everywhere.
        for tid in 0..3u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in (tid * 600..(tid + 1) * 600).step_by(1) {
                    t.delete(kv(i).0);
                }
            }));
        }
        {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..3u32 {
                    for i in 0..600u32 {
                        t.put(kv(i).0, Bytes::from(format!("re{round}-{i}")));
                    }
                }
            }));
        }
        for tid in 0..3u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                let mut x = 99u64 + tid as u64;
                for _ in 0..5000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    std::hint::black_box(t.get(&kv((x % 2000) as u32).0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Keys 1800..2000 were never touched after load.
        for i in 1800..2000u32 {
            let (k, v) = kv(i);
            assert_eq!(t.get(&k), Some(v), "untouched key {i} disturbed");
        }
        // Final re-inserted values are from the inserter.
        for i in 0..600u32 {
            if let Some(v) = t.get(&kv(i).0) {
                let s = String::from_utf8(v.to_vec()).unwrap();
                assert!(s.starts_with("re"), "corrupt value {s}");
            }
        }
    }

    #[test]
    fn partial_chain_heals_at_threshold() {
        let store = Arc::new(MemStore::new());
        let cfg = BwTreeConfig {
            max_partial_deltas: 8,
            ..BwTreeConfig::default()
        };
        let t = BwTree::with_store(cfg, store);
        for i in 0..10u32 {
            let (k, v) = kv(i);
            t.put(k, v);
        }
        let leaf = t.pages().into_iter().find(|p| p.is_leaf).unwrap();
        t.evict_page(leaf.pid).unwrap();
        // Pile blind updates onto the evicted page: the chain must not grow
        // past the healing threshold.
        for round in 0..100u32 {
            t.blind_update(kv(round % 10).0, Bytes::from(format!("r{round}")));
            let info = t.page_info(leaf.pid).unwrap();
            assert!(
                info.chain_len <= 8 + 1,
                "chain grew unboundedly: {} at round {round}",
                info.chain_len
            );
        }
        assert!(t.stats().fetches >= 1, "healing should have fetched");
        // Values correct after healing.
        assert_eq!(t.get(&kv(9).0), Some(Bytes::from("r99")));
    }

    #[test]
    fn concurrent_inserts_and_reads() {
        let t = Arc::new(BwTree::in_memory(BwTreeConfig::small_pages()));
        const THREADS: u32 = 8;
        const PER: u32 = 500;
        let mut handles = Vec::new();
        for tid in 0..THREADS {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER {
                    let id = tid * PER + i;
                    let (k, v) = (
                        Bytes::from(format!("ckey{id:08}")),
                        Bytes::from(format!("cval{id}")),
                    );
                    t.put(k.clone(), v.clone());
                    assert_eq!(t.get(&k), Some(v), "own write lost: {id}");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for id in 0..THREADS * PER {
            let k = format!("ckey{id:08}");
            assert_eq!(
                t.get(k.as_bytes()),
                Some(Bytes::from(format!("cval{id}"))),
                "key {id} lost"
            );
        }
    }

    #[test]
    fn concurrent_mixed_same_keys() {
        // Hammer a small key set from many threads; verify final values are
        // ones some thread wrote (no corruption / phantom values).
        let t = Arc::new(BwTree::in_memory(BwTreeConfig::small_pages()));
        const KEYS: u32 = 50;
        let mut handles = Vec::new();
        for tid in 0..8u32 {
            let t = t.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200u32 {
                    let k = Bytes::from(format!("hot{:03}", (tid * 7 + round) % KEYS));
                    if round % 5 == 0 {
                        t.delete(k);
                    } else {
                        t.put(k, Bytes::from(format!("t{tid}r{round}")));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..KEYS {
            let k = format!("hot{i:03}");
            if let Some(v) = t.get(k.as_bytes()) {
                let s = String::from_utf8(v.to_vec()).unwrap();
                assert!(s.starts_with('t'), "corrupt value {s}");
            }
        }
    }
}
